"""Sharded multi-engine execution: partitioned navigators with
deterministic cross-shard messaging.

The paper's engine model — and ours through PR 6 — is one navigation
loop.  :class:`ShardedEngine` splits the live instance population
across N engine **shards**: each shard is a full
:class:`~repro.wfms.distributed.WorkflowNode` (its own Navigator,
WorklistManager, AuditTrail, DurableStore/Journal, logical clock and
metrics labels), and a *root* instance lives on the shard selected by
a stable hash of its instance id (:func:`shard_of`).  Subtrees stay
with their root: blocks and subprocesses of an instance execute on the
owning shard, so the partition unit is the whole instance tree —
exactly the projection-stability contract of the distributed-execution
model in PAPERS.md (each shard's local view is the projection of the
global process onto the instances it owns).

**Cross-shard traffic rides the existing MessageBus envelopes.**  A
definition that needs work on another shard uses an ordinary remote
activity whose target node is the :data:`ANY_SHARD` sentinel; the
sending shard resolves the sentinel to ``shard_of(request_id)`` at
send time, so the same request id always lands on the same shard —
after a requester crash/replay the re-sent request is deduplicated by
the server exactly as in a `WorkflowNode` cluster.  Nack/redelivery,
dead-lettering, per-queue stats and span-context headers are all
unchanged; sharding multiplies queues, not mechanisms.

**Determinism.**  Pumping is a seeded round-robin: each
:meth:`ShardedEngine.pump_round` shuffles the shard visit order with a
private ``random.Random(seed)`` and gives every live shard a bounded
step slice plus one message pump.  With a shared
:class:`~repro.resilience.faults.FaultInjector`, fault decisions are
consumed in that deterministic order, so chaos traces are bit-identical
across runs — the same contract the single-engine chaos suite enforces.

**Per-shard recovery.**  ``crash_shard(i)`` tears one shard's volatile
state (in-flight bus messages recover for redelivery);
``recover_shard(i)`` rebuilds only that shard's engine from *its own*
journal/store directory and replays only its instances.  Healthy
shards keep their engines — one shard's torn state never forces a
whole-cluster replay.  Shared services (e.g. the ``tx_scopes`` scope
manager) are re-installed *after* replay and only the crashed shard's
open scopes are rolled back, so a healthy shard's scopes survive a
neighbour's recovery.

**Phase 2 (multi-core).**  :class:`MultiprocessShardPool` runs one
engine per OS process behind a small pipe protocol — same partitioned
model, real parallelism on multi-core hosts.  It is opt-in, carries
shard-local workloads only (cross-shard requests need the in-process
backend) and is excluded from chaos determinism assertions.
"""

from __future__ import annotations

import os
import random
import zlib
from typing import Any, Callable

from repro.errors import NavigationError, WorkflowError
from repro.wfms.distributed import (
    WorkflowNode,
    _advance_to_timers,
    _inbox,
    _reply_queue,
)
from repro.wfms.messaging import MessageBus
from repro.wfms.model import ProcessDefinition
from repro.wfms.organization import Organization

#: Remote-activity target meaning "whichever shard owns the request id".
ANY_SHARD = "any-shard"


def shard_of(key: str, num_shards: int) -> int:
    """Stable partition rule: crc32 of the key, modulo the shard count.

    Unsalted and version-independent on purpose — the same key maps to
    the same shard across processes, restarts and recoveries, which is
    what makes re-sent (deduplicated) cross-shard requests land on the
    shard that already served them.
    """
    if num_shards < 1:
        raise WorkflowError("num_shards must be >= 1")
    return zlib.crc32(key.encode("utf-8")) % num_shards


class ShardNode(WorkflowNode):
    """One shard: a WorkflowNode whose outgoing remote requests may
    target :data:`ANY_SHARD`, resolved through the cluster's partition
    rule at send time (after a crash/replay the re-sent request
    resolves identically, preserving server-side deduplication)."""

    def __init__(self, cluster: "ShardedEngine", name: str, bus, **kwargs):
        super().__init__(name, bus, **kwargs)
        self._cluster = cluster

    def _send_request(self, ctx, request_id, node, process, inputs) -> None:
        if node == ANY_SHARD:
            node = self._cluster.shard_name_for_key(request_id)
        super()._send_request(ctx, request_id, node, process, inputs)


class ShardedEngine:
    """N in-process engine shards behind one Engine-like facade.

    ``journal_dir``/``store_dir`` select per-shard durability: each
    shard journals to its own file (``<journal_dir>/<shard>.jsonl``) or
    owns its own :class:`~repro.store.DurableStore` directory
    (``<store_dir>/<shard>/`` — segments, checkpoints and archive are
    all per shard), so one shard's recovery replays only its slice of
    history.  ``store_options`` are keyword arguments forwarded to each
    per-shard DurableStore.

    Registration goes through :meth:`configure` (or the
    ``register_program``/``register_definition``/``serve``
    conveniences): the callback runs on every shard now and is
    *recorded*, so :meth:`recover_shard` can replay the same
    configuration into a rebuilt engine.

    ``seed`` drives the deterministic scheduler;
    ``fault_injector`` is shared by every shard and the bus.
    """

    def __init__(
        self,
        num_shards: int,
        *,
        journal_dir: str | os.PathLike[str] | None = None,
        store_dir: str | os.PathLike[str] | None = None,
        store_options: dict[str, Any] | None = None,
        organization: Organization | None = None,
        observability=None,
        fault_injector=None,
        bus: MessageBus | None = None,
        seed: int = 0,
        steps_per_slice: int = 25,
        max_deliveries: int = 5,
        request_timeout: float | None = None,
        request_retries: int = 0,
        poll_interval: float = 1.0,
    ):
        if num_shards < 1:
            raise WorkflowError("num_shards must be >= 1")
        if steps_per_slice < 1:
            raise WorkflowError("steps_per_slice must be >= 1")
        if journal_dir is not None and store_dir is not None:
            raise WorkflowError(
                "journal_dir and store_dir are mutually exclusive"
            )
        self.num_shards = num_shards
        self.seed = seed
        self.bus = bus if bus is not None else MessageBus()
        self._injector = fault_injector
        if fault_injector is not None:
            self.bus.install_injector(fault_injector)
        self._steps_per_slice = steps_per_slice
        self._rng = random.Random(seed)
        self._sequence = 0
        self._configurers: list[Callable[[WorkflowNode], None]] = []
        self._services: dict[str, Any] = {}
        self.shards: list[ShardNode] = []
        for index in range(num_shards):
            name = "shard-%d" % index
            journal_path = None
            store_factory = None
            if journal_dir is not None:
                os.makedirs(os.fspath(journal_dir), exist_ok=True)
                journal_path = os.path.join(
                    os.fspath(journal_dir), "%s.jsonl" % name
                )
            elif store_dir is not None:
                shard_dir = os.path.join(os.fspath(store_dir), name)
                options = dict(store_options or {})

                def store_factory(path=shard_dir, options=options):
                    from repro.store.durable import DurableStore

                    return DurableStore(path, **options)

            self.shards.append(
                ShardNode(
                    self,
                    name,
                    self.bus,
                    journal_path=journal_path,
                    store_factory=store_factory,
                    organization=organization,
                    observability=observability,
                    max_deliveries=max_deliveries,
                    request_timeout=request_timeout,
                    request_retries=request_retries,
                    poll_interval=poll_interval,
                    fault_injector=fault_injector,
                )
            )

    # -- partitioning ------------------------------------------------------

    def shard_name_for_key(self, key: str) -> str:
        return "shard-%d" % shard_of(key, self.num_shards)

    def shard_index_for_root(self, root_id: str) -> int:
        """The shard owning a *root* instance id.  Served cross-shard
        instances (``req/<request_id>``) hash by the request id — the
        same rule :class:`ShardNode` used to route the request."""
        if root_id.startswith("req/"):
            return shard_of(root_id[len("req/"):], self.num_shards)
        return shard_of(root_id, self.num_shards)

    # -- configuration -----------------------------------------------------

    def configure(self, fn: Callable[[WorkflowNode], None]) -> None:
        """Apply ``fn(node)`` to every shard now, and record it so a
        rebuilt shard replays the same registrations before recovery."""
        self._configurers.append(fn)
        for node in self.shards:
            fn(node)

    def register_program(self, name: str, program, description: str = "",
                         **kwargs) -> None:
        self.configure(
            lambda node: node.engine.register_program(
                name, program, description, **kwargs
            )
        )

    def register_definition(self, definition: ProcessDefinition) -> None:
        def register(node):
            if definition.name not in node.engine.definitions():
                node.engine.register_definition(definition)

        self.configure(register)

    def serve(self, definition: ProcessDefinition) -> None:
        """Make ``definition`` invokable cross-shard (via remote
        activities targeting :data:`ANY_SHARD` or a shard name)."""
        self.configure(lambda node: node.serve(definition))

    def install_service(self, name: str, service: Any) -> None:
        """Share one engine service (e.g. a ``tx_scopes``
        ScopeManager) across every shard.  Re-installed *after* a
        shard's replay so global service recovery never runs inside a
        single-shard rebuild."""
        self._services[name] = service
        for node in self.shards:
            node.engine.services[name] = service

    # -- running -----------------------------------------------------------

    def start_process(
        self,
        name: str,
        input_values: dict[str, Any] | None = None,
        *,
        starter: str = "",
    ) -> str:
        """Start a root instance on its hash-selected shard; returns
        the cluster-unique instance id."""
        self._sequence += 1
        instance_id = "pi-%06d" % self._sequence
        node = self.shards[shard_of(instance_id, self.num_shards)]
        node.engine.start_process(
            name, input_values, starter=starter, instance_id=instance_id
        )
        return instance_id

    def pump_round(self) -> bool:
        """One deterministic scheduler round: visit every live shard in
        seeded-shuffled order, give each a bounded step slice and one
        message pump.  True when any shard made progress.

        An injected pump crash (:class:`InjectedCrash`) or journal
        failure propagates to the caller after the shard has crashed
        itself; the caller recovers that shard and keeps pumping — the
        RNG stream is not rewound, so recovery runs are replayable.
        """
        order = list(range(self.num_shards))
        self._rng.shuffle(order)
        progressed = False
        for index in order:
            node = self.shards[index]
            if node.engine.crashed:
                continue
            for __ in range(self._steps_per_slice):
                if not node.engine.step():
                    break
                progressed = True
            if node.pump():
                progressed = True
        return progressed

    def run(self, max_rounds: int = 10_000) -> int:
        """Pump all shards to quiescence; returns rounds taken.

        A round with no progress first advances each shard's logical
        clock to its earliest due timer (poll intervals, retry
        backoff); when no timers remain either, the cluster is idle.
        """
        for round_number in range(1, max_rounds + 1):
            if all(node.engine.crashed for node in self.shards):
                raise WorkflowError(
                    "every shard is crashed; recover before running"
                )
            progressed = self.pump_round()
            if not progressed and not _advance_to_timers(self.shards):
                return round_number
        raise WorkflowError(
            "sharded engine did not converge within %d rounds" % max_rounds
        )

    def advance_clock(self, delta: float) -> None:
        for node in self.shards:
            if not node.engine.crashed:
                node.engine.advance_clock(delta)

    @property
    def clocks(self) -> list[float]:
        return [node.engine.navigator.clock for node in self.shards]

    # -- queries -----------------------------------------------------------

    def _owner(self, instance_id: str):
        """The live engine holding ``instance_id``.  The hash-primary
        shard is probed first; descendants of served instances embed
        ``/`` both as tree separator and inside the request id, so a
        miss falls back to scanning the (few) remaining shards."""
        guesses: list[int] = []
        if instance_id.startswith("req/"):
            parts = instance_id.split("/")
            if len(parts) >= 4:
                guesses.append(
                    shard_of("/".join(parts[1:4]), self.num_shards)
                )
        else:
            guesses.append(
                shard_of(instance_id.split("/", 1)[0], self.num_shards)
            )
        order = guesses + [
            index for index in range(self.num_shards) if index not in guesses
        ]
        for index in order:
            engine = self.shards[index].engine
            if engine.crashed:
                continue
            try:
                engine.instance_state(instance_id)
                return engine
            except NavigationError:
                continue
        raise NavigationError(
            "unknown process instance %r (searched %d shards)"
            % (instance_id, self.num_shards)
        )

    def instance_state(self, instance_id: str) -> str:
        return self._owner(instance_id).instance_state(instance_id)

    def output(self, instance_id: str) -> dict[str, Any]:
        return self._owner(instance_id).output(instance_id)

    def result(self, instance_id: str):
        return self._owner(instance_id).result(instance_id)

    def monitor(self, instance_id: str) -> dict[str, Any]:
        return self._owner(instance_id).monitor(instance_id)

    def account(self, instance_id: str, **kwargs) -> dict[str, Any]:
        return self._owner(instance_id).account(instance_id, **kwargs)

    def process_list(self, **kwargs) -> list[dict[str, Any]]:
        """Merged summary rows across live shards (per-shard walks are
        index-backed, so a filter stays O(matching) cluster-wide)."""
        rows: list[dict[str, Any]] = []
        for node in self.shards:
            if not node.engine.crashed:
                rows.extend(node.engine.process_list(**kwargs))
        rows.sort(key=lambda r: (r["parent"], r["instance"]))
        return rows

    def snapshot(self) -> dict[str, Any]:
        """Monitoring view: one row per shard (live instances, queue
        depths, scheduler depths, clock, store/checkpoint status) plus
        bus stats — rendered by ``repro.tools.monitor``'s SHARDS view."""
        shard_rows = []
        for index, node in enumerate(self.shards):
            engine = node.engine
            navigator = engine.navigator
            shard_rows.append(
                {
                    "name": node.name,
                    "index": index,
                    "crashed": engine.crashed,
                    "clock": navigator.clock,
                    "live_instances": navigator.live_instance_count(),
                    "queues": {
                        "inbox": self.bus.depth(_inbox(node.name)),
                        "replies": self.bus.depth(_reply_queue(node.name)),
                        "dlq": (
                            self.bus.depth("dlq:%s" % _inbox(node.name))
                            + self.bus.depth("dlq:%s" % _reply_queue(node.name))
                        ),
                    },
                    "scheduler": navigator.queue_depths(),
                    "store": engine.store_status(),
                }
            )
        return {
            "num_shards": self.num_shards,
            "seed": self.seed,
            "shards": shard_rows,
            "bus": self.bus.stats(),
        }

    # -- crash / recovery --------------------------------------------------

    def crash_shard(self, index: int) -> None:
        """Tear one shard's volatile state; its journal/store and the
        bus survive (in-flight messages recover for redelivery)."""
        self.shards[index].crash()

    def crash(self) -> None:
        for index in range(self.num_shards):
            if not self.shards[index].engine.crashed:
                self.crash_shard(index)

    def crashed_shards(self) -> list[int]:
        return [
            index
            for index in range(self.num_shards)
            if self.shards[index].engine.crashed
        ]

    def recover_shard(self, index: int) -> None:
        """Rebuild one crashed shard from its own journal/store.

        Healthy shards are untouched — no whole-cluster replay.  The
        recorded configuration replays first, then the journal; shared
        services are re-installed *after* replay (so
        ``Engine.recover``'s global service recovery does not run), and
        only this shard's open transaction scopes are rolled back.
        """
        node = self.shards[index]
        if not node.engine.crashed:
            return

        def replay_configuration(n):
            for fn in self._configurers:
                fn(n)

        node.rebuild(replay_configuration)
        for name, service in self._services.items():
            node.engine.services[name] = service
        scopes = self._services.get("tx_scopes")
        if scopes is not None:
            # Targeted teardown: scopes opened by this shard's roots
            # were torn by the crash; neighbours' scopes stay open.
            for root_id in [
                scope.root_id for scope in scopes.open_scopes()
            ]:
                if self.shard_index_for_root(root_id) == index:
                    scopes.rollback_open_for(
                        root_id, "shard %s recovered" % node.name
                    )

    def recover(self) -> list[int]:
        """Recover every crashed shard; returns their indexes."""
        crashed = self.crashed_shards()
        for index in crashed:
            self.recover_shard(index)
        return crashed

    def close(self) -> None:
        for node in self.shards:
            if not node.engine.crashed:
                node.engine.close()


# ----------------------------------------------------------------------
# multiprocessing pump backend (phase 2, opt-in)
# ----------------------------------------------------------------------


def _shard_worker(connection, index: int, num_shards: int, factory) -> None:
    """Worker-process loop: build the shard engine via
    ``factory(index, num_shards)`` and serve pipe commands until
    ``close``/EOF.  Errors are reported, never crash the worker."""
    engine = factory(index, num_shards)
    sequence = 0
    try:
        while True:
            try:
                command = connection.recv()
            except EOFError:
                break
            op = command[0]
            try:
                if op == "start_batch":
                    __, process, count, input_values, starter = command
                    for __i in range(count):
                        sequence += 1
                        engine.start_process(
                            process,
                            input_values,
                            starter=starter,
                            instance_id="pi-s%02d-%06d" % (index, sequence),
                        )
                    connection.send(("ok", count))
                elif op == "run":
                    connection.send(("ok", engine.run()))
                elif op == "drain":
                    connection.send(("ok", engine.drain()))
                elif op == "finished_roots":
                    finished = engine.navigator.instance_ids(
                        state="finished"
                    )
                    connection.send(
                        ("ok", sum(1 for iid in finished if "/" not in iid))
                    )
                elif op == "instance_state":
                    connection.send(("ok", engine.instance_state(command[1])))
                elif op == "close":
                    connection.send(("ok", None))
                    break
                else:
                    connection.send(("error", "unknown command %r" % (op,)))
            except Exception as exc:  # reported to the parent
                connection.send(
                    ("error", "%s: %s" % (type(exc).__name__, exc))
                )
    finally:
        try:
            engine.close()
        except Exception:
            pass
        connection.close()


#: Live pools, weakly held: an abandoned (never closed) pool must not
#: be kept alive by the registry, but one that is still reachable at
#: interpreter exit gets its workers terminated by the atexit sweep —
#: otherwise an aborted test run strands child processes.
_LIVE_POOLS: Any = None


def _register_pool(pool: "MultiprocessShardPool") -> None:
    global _LIVE_POOLS
    if _LIVE_POOLS is None:
        import atexit
        import weakref

        _LIVE_POOLS = weakref.WeakSet()
        atexit.register(_terminate_live_pools)
    _LIVE_POOLS.add(pool)


def _terminate_live_pools() -> None:
    if _LIVE_POOLS is None:
        return
    for pool in list(_LIVE_POOLS):
        pool.terminate()


class MultiprocessShardPool:
    """The multi-core pump backend: one engine per OS process.

    Same partitioned-engines model as :class:`ShardedEngine`, with the
    scheduler replaced by real parallelism — every broadcast command
    is pipelined (sent to all workers, then collected), so shards
    execute their slices concurrently.  ``factory(index, num_shards)``
    must be a picklable top-level callable returning a fully
    registered :class:`~repro.wfms.engine.Engine`.

    Phase-2 scope: shard-local workloads only (cross-shard remote
    activities need the in-process backend) and excluded from chaos
    determinism assertions — wall-clock interleaving across OS
    processes is inherently non-deterministic.
    """

    def __init__(self, num_shards: int, engine_factory, *, start_method=None):
        import multiprocessing

        if num_shards < 1:
            raise WorkflowError("num_shards must be >= 1")
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else methods[0]
        context = multiprocessing.get_context(start_method)
        self.num_shards = num_shards
        self._closed = False
        self._connections = []
        self._processes = []
        for index in range(num_shards):
            parent_end, child_end = context.Pipe()
            process = context.Process(
                target=_shard_worker,
                args=(child_end, index, num_shards, engine_factory),
                daemon=True,
            )
            process.start()
            child_end.close()
            self._connections.append(parent_end)
            self._processes.append(process)
        _register_pool(self)

    def _collect(self, indexes) -> list[Any]:
        results = []
        for index in indexes:
            kind, payload = self._connections[index].recv()
            if kind == "error":
                raise WorkflowError("shard %d: %s" % (index, payload))
            results.append(payload)
        return results

    def broadcast(self, *command) -> list[Any]:
        """Send one command to every shard, then collect all replies —
        the pipelining that lets shards run concurrently."""
        for connection in self._connections:
            connection.send(command)
        return self._collect(range(self.num_shards))

    def start_batch(
        self,
        process: str,
        total: int,
        input_values: dict[str, Any] | None = None,
        *,
        starter: str = "",
    ) -> int:
        """Partition ``total`` root starts across shards (deterministic
        near-even split) and start them all."""
        base, extra = divmod(total, self.num_shards)
        started = 0
        for index in range(self.num_shards):
            count = base + (1 if index < extra else 0)
            self._connections[index].send(
                ("start_batch", process, count, input_values, starter)
            )
        for count in self._collect(range(self.num_shards)):
            started += count
        return started

    def run(self) -> int:
        return sum(self.broadcast("run"))

    def drain(self) -> int:
        return sum(self.broadcast("drain"))

    def finished_roots(self) -> int:
        return sum(self.broadcast("finished_roots"))

    def instance_state(self, index: int, instance_id: str) -> str:
        self._connections[index].send(("instance_state", instance_id))
        return self._collect([index])[0]

    def close(self) -> None:
        """Orderly shutdown: ask every worker to exit, join, escalate
        to terminate only for stragglers.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        _LIVE_POOLS.discard(self)
        for connection in self._connections:
            try:
                connection.send(("close",))
            except (BrokenPipeError, OSError):
                continue
        for connection in self._connections:
            try:
                connection.recv()
            except (EOFError, OSError):
                pass
            connection.close()
        for process in self._processes:
            process.join(timeout=10)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)

    def terminate(self) -> None:
        """Hard teardown: kill every worker without the close
        handshake — the abnormal-exit path (atexit, test teardown
        after a pipe wedged).  Idempotent, never raises."""
        self._closed = True
        _LIVE_POOLS.discard(self)
        for connection in self._connections:
            try:
                connection.close()
            except OSError:
                pass
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():
                process.kill()
                process.join(timeout=5)

    def alive_workers(self) -> int:
        """How many worker processes are still running (0 after a
        clean close or terminate) — the leak check."""
        return sum(1 for process in self._processes if process.is_alive())

    def __enter__(self) -> "MultiprocessShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
