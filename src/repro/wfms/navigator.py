"""The navigator: FlowMark's run-time state machine (§3.2).

Responsibilities:

* start process instances and set their starting activities ready,
* execute ready activities (programs, blocks, subprocesses),
* evaluate exit conditions, rescheduling activities whose exit
  condition is false (loops),
* evaluate outgoing control connectors on termination,
* decide start conditions (AND/OR joins) and perform **dead-path
  elimination** — "if an activity will never be executed because its
  start condition evaluates to false, the activity is marked as
  terminated and all the outgoing control connectors from that activity
  are evaluated to false",
* declare a process finished "when all its activities are in the
  terminated state",
* journal every non-deterministic decision, and consume a replay
  cursor instead of invoking programs during forward recovery.

Execution is single-threaded and deterministic: ready automatic
activities are queued and dispatched in (priority, arrival) order.

The ready queue is a binary heap keyed on ``(-priority, arrival_seq)``
with lazy invalidation: slots whose activity left the READY state (or
whose instance stopped RUNNING) stay in the heap and are discarded when
they surface, so a pop is O(log n) amortised instead of the former
O(n) scan.  Re-queueing — loop reschedules, ``resume``, post-replay
deferral — is a fresh arrival, which keeps the dispatch order exactly
"priority first, then first-queued first".

Navigation steps run against the **compiled navigation plan** of each
definition (:mod:`repro.wfms.plan`), obtained from the definition
registry's plan cache: connector adjacency, compiled transition/exit
conditions and container prototypes are all precomputed per template,
so per-step work never rescans the :class:`ProcessDefinition`.

Observability (:mod:`repro.obs`) hangs off the navigator as cached
instruments and two span maps.  Every instrumentation block is gated
on ``self._obs_on`` — a plain bool attribute — so with the default
disabled handle the per-step cost is a handful of attribute reads
(the zero-overhead-when-off guarantee, enforced by the perf gate).
Spans: one per process instance (parented into the creating
activity's span for blocks/subprocesses, or into a remote trace
context carried in message headers), one per activity invocation
*attempt*.  The journal's ``process_started`` record carries the
instance's trace linkage so a recovered engine resumes the same
trace instead of starting a second one.
"""

from __future__ import annotations

import heapq
import time
from typing import Any

from repro.errors import (
    NavigationError,
    ProgramError,
    StaffResolutionError,
    WorkflowError,
)
from repro.wfms.audit import AuditEvent, AuditTrail
from repro.wfms.containers import Container
from repro.wfms.instance import (
    ActivityInstance,
    ActivityState,
    ProcessInstance,
    ProcessState,
    connector_key,
)
from repro.wfms.journal import Journal, ReplayCursor
from repro.wfms.model import (
    PROCESS_INPUT,
    ActivityKind,
    ProcessDefinition,
)
from repro.obs import (
    ActivityCompleted,
    ActivityEscalated,
    NavigatorDispatched,
    ProcessFinished,
    RetryScheduled,
    resolve_observability,
)
from repro.obs.tracing import Span, SpanContext
from repro.wfms.organization import Organization
from repro.wfms.programs import InvocationContext, ProgramRegistry
from repro.wfms.worklist import WorklistManager


def _NULL_RESOLVER(_path: str) -> None:
    """Resolver for activities with no output container (dead paths,
    never-executed activities); hoisted so no per-call lambda is built."""
    return None


class Navigator:
    """Drives all process instances of one engine."""

    def __init__(
        self,
        definitions,
        programs: ProgramRegistry,
        organization: Organization,
        worklists: WorklistManager,
        audit: AuditTrail,
        journal: Journal | None = None,
        services: dict[str, Any] | None = None,
        obs=None,
        injector=None,
        store=None,
    ):
        self._definitions = definitions
        self._programs = programs
        self._organization = organization
        self._worklists = worklists
        self._audit = audit
        self._journal = journal
        #: DurableStore (repro.store) or None: drives post-step
        #: checkpointing and finished-root archiving.
        self._store = store
        self._services = services if services is not None else {}
        self.obs = obs = resolve_observability(obs)
        self._obs_on = obs.enabled
        self._tracer = obs.tracer
        self._hooks = obs.hooks
        metrics = obs.metrics
        self._c_proc_started = metrics.counter(
            "wfms_processes_started_total",
            "Process instances started",
            labels=("definition",),
        )
        self._c_proc_finished = metrics.counter(
            "wfms_processes_finished_total",
            "Process instances finished",
            labels=("definition",),
        )
        self._g_running = metrics.gauge(
            "wfms_instances_running", "Process instances not yet finished"
        )
        self._c_dispatched = metrics.counter(
            "wfms_activities_dispatched_total",
            "Automatic activities popped off the ready queue",
        )
        completions = metrics.counter(
            "wfms_activity_completions_total",
            "Activity completions by outcome",
            labels=("outcome",),
        )
        self._c_terminated = completions.labels("terminated")
        self._c_rescheduled = completions.labels("rescheduled")
        self._c_dead = completions.labels("dead")
        self._c_forced = completions.labels("forced")
        self._h_activity_seconds = metrics.histogram(
            "wfms_activity_seconds",
            "Wall-clock seconds per program invocation",
        )
        self._c_connectors = metrics.counter(
            "wfms_connector_evaluations_total",
            "Control connectors evaluated",
        )
        #: open spans: instance_id -> instance span,
        #: (instance_id, activity) -> current attempt span.
        self._instance_spans: dict[str, Span] = {}
        self._activity_spans: dict[tuple[str, str], Span] = {}
        self._instances: dict[str, ProcessInstance] = {}
        #: secondary indexes kept in lockstep with ``_instances`` so
        #: monitoring queries (``Engine.process_list`` filters) answer
        #: in O(matching) instead of walking every live instance.
        #: state value -> instance ids, definition name -> instance ids.
        self._state_index: dict[str, set[str]] = {}
        self._definition_index: dict[str, set[str]] = {}
        #: ready-queue heap of (-priority, arrival_seq, instance, activity);
        #: stale slots are invalidated lazily in :meth:`_pop_ready`.
        self._ready_heap: list[tuple[int, int, str, str]] = []
        self._arrivals = 0
        self._sequence = 0
        self._replay: ReplayCursor | None = None
        #: work discovered during replay that has no recorded outcome;
        #: it is executed live once replay ends.
        self._deferred: list[tuple[str, str]] = []
        self.clock = 0.0
        # -- resilience (repro.resilience) --------------------------------
        #: fault injector consulted before program invocations, or None.
        self._injector = injector
        #: program name -> RetryPolicy / Timeout / reschedule delay.
        self._retry_policies: dict[str, Any] = {}
        self._timeouts: dict[str, Any] = {}
        self._reschedule_delays: dict[str, float] = {}
        #: (instance, activity) -> consecutive failed invocations.
        self._retries: dict[tuple[str, str], int] = {}
        #: (instance, activity) -> clock at first invocation (timeouts).
        self._started_at: dict[tuple[str, str], float] = {}
        #: min-heap of (due, arrival_seq, instance, activity): READY
        #: slots waiting out a backoff or poll delay; released into the
        #: ready heap by :meth:`release_due` as the clock advances.
        self._delayed: list[tuple[float, int, str, str]] = []
        self._c_retries = metrics.counter(
            "wfms_activity_retries_total",
            "Failed invocations scheduled for retry",
        )
        self._c_escalated = metrics.counter(
            "wfms_activity_escalations_total",
            "Activities finished by policy escalation",
            labels=("reason",),
        )

    # ------------------------------------------------------------------
    # instance management
    # ------------------------------------------------------------------

    def instance(self, instance_id: str) -> ProcessInstance:
        try:
            return self._instances[instance_id]
        except KeyError:
            raise NavigationError(
                "unknown process instance %r" % instance_id
            ) from None

    def instances(self) -> list[ProcessInstance]:
        return list(self._instances.values())

    def live_instance_count(self) -> int:
        return len(self._instances)

    def queue_depths(self) -> dict[str, int]:
        """Scheduler queue sizes (heap slots, including stale ones)."""
        return {"ready": len(self._ready_heap), "delayed": len(self._delayed)}

    def instance_ids(
        self, *, state: str | None = None, definition: str | None = None
    ) -> list[str]:
        """Live instance ids, optionally filtered by state value and/or
        definition name via the secondary indexes — O(matching), not
        O(all live instances)."""
        if state is None and definition is None:
            return list(self._instances)
        if state is not None:
            matched = self._state_index.get(state, set())
            if definition is not None:
                matched = matched & self._definition_index.get(
                    definition, set()
                )
        else:
            matched = self._definition_index.get(definition, set())
        return sorted(matched)

    def _index_instance(self, instance: ProcessInstance) -> None:
        self._state_index.setdefault(instance.state.value, set()).add(
            instance.instance_id
        )
        self._definition_index.setdefault(
            instance.definition.name, set()
        ).add(instance.instance_id)

    def _move_state(
        self, instance: ProcessInstance, new_state: ProcessState
    ) -> None:
        """The only way instance.state may change once indexed."""
        ids = self._state_index.get(instance.state.value)
        if ids is not None:
            ids.discard(instance.instance_id)
        instance.state = new_state
        self._state_index.setdefault(new_state.value, set()).add(
            instance.instance_id
        )

    def set_sequence(self, value: int) -> None:
        self._sequence = max(self._sequence, value)

    def start_process(
        self,
        definition_name: str,
        input_values: dict[str, Any] | None = None,
        *,
        starter: str = "",
        instance_id: str = "",
        version: str | None = None,
        trace_parent: "SpanContext | dict[str, str] | None" = None,
    ) -> str:
        """Start a new top-level instance; returns its id.

        ``version`` pins a definition version; the default is the
        latest registered one.  ``trace_parent`` joins an existing
        trace — either a :class:`SpanContext` or the header dict a
        remote node attached to its request — so cross-node work forms
        one trace.
        """
        definition = self._definition(definition_name, version)
        if not instance_id:
            self._sequence += 1
            instance_id = "pi-%04d" % self._sequence
        if trace_parent is not None and not isinstance(
            trace_parent, SpanContext
        ):
            trace_parent = self._tracer.extract(trace_parent)
        return self._create_instance(
            definition,
            instance_id,
            input_values or {},
            starter=starter,
            parent_instance="",
            parent_activity="",
            trace_parent=trace_parent,
        )

    def _definition(
        self, name: str, version: str | None = None
    ) -> ProcessDefinition:
        from repro.errors import DefinitionError

        try:
            return self._definitions.get(name, version)
        except DefinitionError as exc:
            raise NavigationError(str(exc)) from exc

    def _create_instance(
        self,
        definition: ProcessDefinition,
        instance_id: str,
        input_values: dict[str, Any],
        *,
        starter: str,
        parent_instance: str,
        parent_activity: str,
        trace_parent: "SpanContext | None" = None,
    ) -> str:
        if instance_id in self._instances:
            raise NavigationError(
                "instance id %r is already in use" % instance_id
            )
        plan = self._definitions.plan_for(definition)
        instance = ProcessInstance(
            instance_id,
            definition,
            starter=starter,
            parent_instance=parent_instance,
            parent_activity=parent_activity,
            plan=plan,
        )
        instance.input.load_dict(input_values)
        self._instances[instance_id] = instance
        self._index_instance(instance)
        span = None
        if self._obs_on:
            self._c_proc_started.labels(definition.name).inc()
            self._g_running.inc()
            if self._tracer.enabled:
                span = self._start_instance_span(
                    instance, parent_instance, parent_activity, trace_parent
                )
        self._audit.record(
            self.clock,
            AuditEvent.PROCESS_STARTED,
            instance_id,
            detail={"definition": definition.name, "starter": starter},
        )
        if self._journal is not None and self._replay is None:
            # The record dict (with its input snapshot) is only built
            # when a journal will actually persist it.
            record = {
                "type": "process_started",
                "instance": instance_id,
                "definition": definition.name,
                "version": definition.version,
                "input": instance.input.to_dict(),
                "starter": starter,
                "parent_instance": parent_instance,
                "parent_activity": parent_activity,
            }
            if span is not None:
                # Trace linkage survives a crash: replay re-parents the
                # recovered instance into the same trace instead of
                # starting a second one.
                record["trace"] = {
                    "trace_id": span.trace_id,
                    "parent_span_id": span.parent_id,
                }
            self._journal.append(record)
        for name in plan.starting:
            self._make_ready(instance, name)
        return instance_id

    def _start_instance_span(
        self,
        instance: ProcessInstance,
        parent_instance: str,
        parent_activity: str,
        trace_parent: "SpanContext | None",
    ) -> Span:
        """Open the instance span: child instances hang under the
        block/subprocess activity span that created them, remote or
        recovered instances under the propagated context."""
        parent: "Span | SpanContext | None" = None
        if parent_instance:
            parent = self._activity_spans.get(
                (parent_instance, parent_activity)
            ) or self._instance_spans.get(parent_instance)
        if parent is None:
            parent = trace_parent
        span = self._tracer.start_span(
            "process %s" % instance.definition.name,
            parent=parent,
            kind="process",
            attributes={
                "instance_id": instance.instance_id,
                "definition": instance.definition.name,
            },
        )
        self._instance_spans[instance.instance_id] = span
        return span

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute one queued automatic activity; False when idle.

        Stale heap slots are discarded inside :meth:`_pop_ready`, so a
        True return always means one activity actually executed.
        """
        slot = self._pop_ready()
        if slot is None:
            return False
        instance_id, activity_name = slot
        instance = self._instances[instance_id]
        ai = instance.activity(activity_name)
        if self._obs_on:
            self._c_dispatched.inc()
            hooks = self._hooks
            if hooks.wants(NavigatorDispatched):
                hooks.publish(
                    NavigatorDispatched(
                        instance_id,
                        activity_name,
                        ai.attempt + 1,
                        ai.activity.priority,
                        self.clock,
                    )
                )
        self._execute(instance, ai)
        if self._store is not None and self._replay is None:
            # Post-step is the store's consistency point: _execute has
            # fully cascaded, so the only RUNNING activities are
            # block/subprocess parents (whose children are captured
            # with them).
            self._store.maybe_checkpoint(self)
        return True

    def run(self, max_steps: int = 1_000_000) -> int:
        """Run until no automatic work remains; returns steps taken.

        Only steps that execute an activity count towards
        ``max_steps`` — stale queue slots (suspended instances, forced
        or killed activities) are skipped for free, so a tight limit
        cannot falsely report non-quiescence on a queue of dead slots.
        """
        steps = 0
        while self.step():
            steps += 1
            if steps >= max_steps and self.has_ready_work():
                raise NavigationError(
                    "navigator did not quiesce within %d steps" % max_steps
                )
        return steps

    def has_ready_work(self) -> bool:
        heap = self._ready_heap
        while heap:
            __, __, instance_id, activity = heap[0]
            if self._is_live_slot(instance_id, activity):
                return True
            heapq.heappop(heap)  # lazily drop the stale slot
        return False

    def _is_live_slot(self, instance_id: str, activity: str) -> bool:
        instance = self._instances.get(instance_id)
        if instance is None or instance.state is not ProcessState.RUNNING:
            return False
        return instance.activity(activity).state is ActivityState.READY

    def _enqueue(self, instance: ProcessInstance, name: str) -> None:
        """Queue an activity for automatic dispatch (a fresh arrival)."""
        self._arrivals += 1
        priority = instance.activity(name).activity.priority
        heapq.heappush(
            self._ready_heap,
            (-priority, self._arrivals, instance.instance_id, name),
        )

    def _pop_ready(self) -> tuple[str, str] | None:
        heap = self._ready_heap
        while heap:
            __, __, instance_id, activity = heapq.heappop(heap)
            if self._is_live_slot(instance_id, activity):
                return instance_id, activity
        return None

    # ------------------------------------------------------------------
    # resilience policies (repro.resilience)
    # ------------------------------------------------------------------

    def set_retry(self, program: str, policy) -> None:
        """Retry failed invocations of ``program`` under ``policy``
        (None removes)."""
        if policy is None:
            self._retry_policies.pop(program, None)
        else:
            self._retry_policies[program] = policy

    def set_timeout(self, program: str, timeout) -> None:
        """Give activities running ``program`` a logical-clock budget;
        expiry escalates with the timeout's return code (None removes)."""
        if timeout is None:
            self._timeouts.pop(program, None)
        else:
            self._timeouts[program] = timeout

    def set_reschedule_delay(self, program: str, delay: float) -> None:
        """Space out exit-condition reschedules of ``program`` by
        ``delay`` logical seconds (polling loops) instead of spinning."""
        if delay < 0:
            raise WorkflowError("reschedule delay must be >= 0")
        if delay == 0:
            self._reschedule_delays.pop(program, None)
        else:
            self._reschedule_delays[program] = delay

    def _defer_ready(
        self, instance: ProcessInstance, name: str, due: float
    ) -> None:
        """Mark READY but park on the delayed heap until ``due``."""
        ai = instance.activity(name)
        ai.state = ActivityState.READY
        self._audit.record(
            self.clock, AuditEvent.ACTIVITY_READY, instance.instance_id, name
        )
        self._arrivals += 1
        heapq.heappush(
            self._delayed, (due, self._arrivals, instance.instance_id, name)
        )

    def release_due(self, now: float) -> int:
        """Move delayed slots whose due time has arrived onto the
        ready heap; returns how many were released."""
        released = 0
        heap = self._delayed
        while heap and heap[0][0] <= now:
            __, __, instance_id, name = heapq.heappop(heap)
            if self._is_live_slot(instance_id, name):
                self._enqueue(self._instances[instance_id], name)
                released += 1
        return released

    def next_delayed_due(self) -> float | None:
        """Due time of the earliest live delayed slot, or None."""
        heap = self._delayed
        while heap:
            due, __, instance_id, name = heap[0]
            if self._is_live_slot(instance_id, name):
                return due
            heapq.heappop(heap)
        return None

    # ------------------------------------------------------------------
    # state transitions
    # ------------------------------------------------------------------

    def _make_ready(self, instance: ProcessInstance, name: str) -> None:
        ai = instance.activity(name)
        ai.state = ActivityState.READY
        self._audit.record(
            self.clock, AuditEvent.ACTIVITY_READY, instance.instance_id, name
        )
        if ai.activity.is_manual and self._replay is None:
            self._offer(instance, ai)
        elif ai.activity.is_manual:
            # During replay, manual completions come from the journal;
            # only re-offer when no recorded completion remains.
            if self._replay.take_peek(instance.instance_id, name, ai.attempt + 1):
                self._enqueue(instance, name)
            else:
                self._offer(instance, ai)
        else:
            self._enqueue(instance, name)

    def _offer(self, instance: ProcessInstance, ai: ActivityInstance) -> None:
        try:
            eligible = self._organization.resolve(
                ai.activity.staff, starter=instance.starter
            )
        except StaffResolutionError:
            if instance.starter:
                raise
            # No organization configured and no starter: run it
            # automatically rather than stall (engines used purely for
            # transaction-model execution have no users).
            self._enqueue(instance, ai.name)
            return
        item = self._worklists.offer(
            instance.instance_id,
            ai.name,
            instance.definition.name,
            eligible,
            self.clock,
            priority=ai.activity.priority,
            notify_after=ai.activity.staff.notify_after,
            notify_role=ai.activity.staff.notify_role,
        )
        self._audit.record(
            self.clock,
            AuditEvent.ITEM_OFFERED,
            instance.instance_id,
            ai.name,
            item=item.item_id,
            eligible=list(eligible),
        )

    def start_manual(self, item_id: str) -> None:
        """Execute the activity behind a *claimed* work item."""
        item = self._worklists.item(item_id)
        if not item.claimed_by:
            raise WorkflowError("work item %s must be claimed first" % item_id)
        instance = self.instance(item.instance_id)
        ai = instance.activity(item.activity)
        if ai.state is not ActivityState.READY:
            raise NavigationError(
                "activity %s is %s, not ready" % (ai.name, ai.state.value)
            )
        ai.claimed_by = item.claimed_by
        self._audit.record(
            self.clock,
            AuditEvent.ITEM_CLAIMED,
            instance.instance_id,
            ai.name,
            item=item_id,
            user=item.claimed_by,
        )
        self._execute(instance, ai, user=item.claimed_by)
        if item.state.value == "claimed":
            self._worklists.complete(item_id)

    def force_finish(
        self,
        instance_id: str,
        activity: str,
        *,
        return_code: int = 0,
        output_values: dict[str, Any] | None = None,
        user: str = "",
    ) -> None:
        """§3.3: a user may "force [an activity] to finish"."""
        instance = self.instance(instance_id)
        ai = instance.activity(activity)
        if ai.state not in (ActivityState.READY, ActivityState.RUNNING):
            raise NavigationError(
                "cannot force-finish %s from state %s"
                % (activity, ai.state.value)
            )
        ai.attempt += 1
        ai.forced = True
        ai.output = instance.plan.output_container(ai.name)
        if output_values:
            ai.output.load_dict(output_values)
        ai.output.return_code = return_code
        self._worklists.withdraw(instance_id, activity)
        self._audit.record(
            self.clock,
            AuditEvent.ACTIVITY_FORCED,
            instance_id,
            activity,
            user=user,
            rc=return_code,
        )
        self._finish(instance, ai, forced=True, user=user)

    def activity_span(self, instance_id: str, activity: str):
        """The live span of a RUNNING activity, or None.

        Services invoked from inside a program (e.g. the flow runtime)
        use it to parent their own spans under the activity's span
        without reaching into navigator internals."""
        return self._activity_spans.get((instance_id, activity))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _execute(
        self, instance: ProcessInstance, ai: ActivityInstance, user: str = ""
    ) -> None:
        ai.attempt += 1
        ai.state = ActivityState.RUNNING
        ai.input = self._build_input(instance, ai)
        if self._obs_on and self._tracer.enabled:
            self._activity_spans[
                (instance.instance_id, ai.name)
            ] = self._tracer.start_span(
                "activity %s" % ai.name,
                parent=self._instance_spans.get(instance.instance_id),
                kind=ai.activity.kind.value,
                attributes={
                    "instance_id": instance.instance_id,
                    "attempt": ai.attempt,
                },
            )
        self._audit.record(
            self.clock,
            AuditEvent.ACTIVITY_STARTED,
            instance.instance_id,
            ai.name,
            attempt=ai.attempt,
            user=user,
        )
        if ai.activity.kind is not ActivityKind.PROGRAM:
            if self._replay is not None:
                # A block/subprocess completion is *derived* from its
                # child's execution; consume (and discard) the parent
                # record — replaying the child recomputes it exactly.
                self._replay.take(instance.instance_id, ai.name, ai.attempt)
            self._start_child(instance, ai)
            return
        recorded = None
        if self._replay is not None:
            recorded = self._replay.take(
                instance.instance_id, ai.name, ai.attempt
            )
            if recorded is None:
                # Crash interrupted this execution: the paper's rule is
                # that the activity "will be rescheduled to be executed
                # from the beginning" — defer it to after replay.
                ai.state = ActivityState.READY
                ai.attempt -= 1
                self._deferred.append((instance.instance_id, ai.name))
                span = self._activity_spans.pop(
                    (instance.instance_id, ai.name), None
                )
                if span is not None:
                    span.finish(status="interrupted")
                return
        if recorded is not None:
            ai.output = instance.plan.output_container(ai.name)
            ai.output.load_dict(recorded["output"])
            ai.forced = bool(recorded.get("forced"))
            self._finish(
                instance,
                ai,
                replayed=True,
                user=recorded.get("user", ""),
                escalated=bool(recorded.get("escalated")),
            )
            return
        self._run_program(instance, ai, user)

    def _build_input(
        self, instance: ProcessInstance, ai: ActivityInstance
    ) -> Container:
        plan = instance.plan
        container = plan.input_container(ai.name)
        for connector in plan.data_into.get(ai.name, ()):
            if connector.source == PROCESS_INPUT:
                source = instance.input
            elif connector.source == ai.name:
                # Loop-carried self connector: feed the previous
                # attempt's output into this attempt's input.  The
                # generic branch below would always skip it — a
                # rescheduled activity is READY/RUNNING, never
                # ``executed`` — so the iteration case reads the
                # retained output directly.  First attempt: nothing
                # to carry yet, keep the declared defaults.
                if ai.attempt <= 1 or ai.output is None:
                    continue
                source = ai.output
            else:
                source_ai = instance.activity(connector.source)
                if not source_ai.executed or source_ai.output is None:
                    continue  # source never ran: leave defaults
                source = source_ai.output
            container.update_from(source, connector.mappings)
        return container

    def _run_program(
        self, instance: ProcessInstance, ai: ActivityInstance, user: str
    ) -> None:
        assert ai.input is not None
        ai.output = instance.plan.output_container(ai.name)
        ctx = InvocationContext(
            activity=ai.name,
            process=instance.definition.name,
            instance_id=instance.instance_id,
            input=ai.input,
            output=ai.output,
            user=user,
            attempt=ai.attempt,
            services=self._services,
        )
        if self._timeouts and ai.activity.program in self._timeouts:
            self._started_at.setdefault(
                (instance.instance_id, ai.name), self.clock
            )
        try:
            if self._injector is not None:
                self._injector.before_program(
                    instance.instance_id, ai.name, ai.activity.program
                )
            if self._obs_on:
                started = time.perf_counter()
                self._programs.invoke(ai.activity.program, ctx)
                self._h_activity_seconds.observe(time.perf_counter() - started)
            else:
                self._programs.invoke(ai.activity.program, ctx)
        except ProgramError as exc:
            if self._maybe_retry(instance, ai, exc):
                return
            raise
        self._finish(instance, ai, user=user)

    def _maybe_retry(
        self,
        instance: ProcessInstance,
        ai: ActivityInstance,
        exc: ProgramError,
    ) -> bool:
        """Handle a failed invocation under the program's retry policy.

        Returns True when the failure was absorbed — either a retry was
        scheduled, or the policy escalated (the activity finished with
        the escalation return code).  False re-raises the original
        failure (no policy, or exhaustion without an escalation rc).
        """
        policy = self._retry_policies.get(ai.activity.program)
        if policy is None:
            return False
        key = (instance.instance_id, ai.name)
        retry = self._retries.get(key, 0) + 1
        timeout = self._timeouts.get(ai.activity.program)
        started = self._started_at.get(key, self.clock)
        timed_out = timeout is not None and timeout.expired(
            started, self.clock
        )
        if timed_out or not policy.allows(retry):
            if timed_out:
                reason, rc = "timeout", timeout.escalate_rc
            elif policy.escalate_rc is not None:
                reason, rc = "retries_exhausted", policy.escalate_rc
            else:
                self._retries.pop(key, None)
                self._started_at.pop(key, None)
                return False
            self._escalate(instance, ai, reason, rc, str(exc))
            return True
        self._retries[key] = retry
        # The attempt did not complete: give its number back so the
        # journaled completion keyed (instance, activity, attempt)
        # matches replay's re-count of *completed* attempts.
        ai.attempt -= 1
        delay = policy.delay(retry)
        self._audit.record(
            self.clock,
            AuditEvent.ACTIVITY_RETRY,
            instance.instance_id,
            ai.name,
            retry=retry,
            delay=delay,
            error=str(exc),
        )
        if self._obs_on:
            self._c_retries.inc()
            span = self._activity_spans.pop(
                (instance.instance_id, ai.name), None
            )
            if span is not None:
                span.finish(status="retrying")
            hooks = self._hooks
            if hooks.wants(RetryScheduled):
                hooks.publish(
                    RetryScheduled(
                        instance.instance_id,
                        ai.name,
                        retry,
                        delay,
                        str(exc),
                        self.clock,
                    )
                )
        if delay > 0:
            self._defer_ready(instance, ai.name, self.clock + delay)
        else:
            ai.state = ActivityState.READY
            self._audit.record(
                self.clock,
                AuditEvent.ACTIVITY_READY,
                instance.instance_id,
                ai.name,
            )
            self._enqueue(instance, ai.name)
        return True

    def _escalate(
        self,
        instance: ProcessInstance,
        ai: ActivityInstance,
        reason: str,
        rc: int,
        error: str,
    ) -> None:
        """Give up on an activity: finish it with the escalation
        return code so the process's own transition conditions route
        control (compensation block, alternative path).  The journaled
        completion carries ``escalated`` so replay repeats the
        decision without re-evaluating the exit condition."""
        key = (instance.instance_id, ai.name)
        self._retries.pop(key, None)
        self._started_at.pop(key, None)
        ai.output = instance.plan.output_container(ai.name)
        ai.output.return_code = rc
        self._audit.record(
            self.clock,
            AuditEvent.ACTIVITY_ESCALATED,
            instance.instance_id,
            ai.name,
            reason=reason,
            rc=rc,
            error=error,
        )
        if self._obs_on:
            self._c_escalated.labels(reason).inc()
            hooks = self._hooks
            if hooks.wants(ActivityEscalated):
                hooks.publish(
                    ActivityEscalated(
                        instance.instance_id, ai.name, reason, rc, self.clock
                    )
                )
        self._finish(instance, ai, escalated=True)

    def _start_child(
        self, instance: ProcessInstance, ai: ActivityInstance
    ) -> None:
        if ai.activity.kind is ActivityKind.BLOCK:
            definition = ai.activity.block
            assert definition is not None
        else:
            definition = self._definition(ai.activity.subprocess)
        child_id = "%s/%s@%d" % (instance.instance_id, ai.name, ai.attempt)
        ai.child_instance = child_id
        assert ai.input is not None
        child_input_names = self._definitions.plan_for(definition).input_names
        input_values = {
            name: ai.input.get(name)
            for name in ai.input.members()
            if name in child_input_names
        }
        self._create_instance(
            definition,
            child_id,
            input_values,
            starter=instance.starter,
            parent_instance=instance.instance_id,
            parent_activity=ai.name,
        )
        # If the child has no automatic work at all (degenerate), the
        # queue drains and _check_finished fires from its last activity.

    def _on_child_finished(self, child: ProcessInstance) -> None:
        parent = self.instance(child.parent_instance)
        ai = parent.activity(child.parent_activity)
        if ai.state is not ActivityState.RUNNING:
            raise NavigationError(
                "child %s finished but parent activity %s is %s"
                % (child.instance_id, ai.name, ai.state.value)
            )
        ai.output = parent.plan.output_container(ai.name)
        for name in ai.output.members():
            if child.output.has(name):
                ai.output.set(name, child.output.get(name))
        self._finish(parent, ai)

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------

    def _finish(
        self,
        instance: ProcessInstance,
        ai: ActivityInstance,
        *,
        forced: bool = False,
        replayed: bool = False,
        user: str = "",
        escalated: bool = False,
    ) -> None:
        assert ai.output is not None
        ai.state = ActivityState.FINISHED
        self._audit.record(
            self.clock,
            AuditEvent.ACTIVITY_FINISHED,
            instance.instance_id,
            ai.name,
            rc=ai.output.return_code,
            attempt=ai.attempt,
        )
        # Exit condition first: an escalated completion (retry/timeout
        # policy gave up) terminates regardless of it, and the decision
        # must be known before journaling so replay can repeat it.
        if escalated:
            exit_ok = True
        else:
            exit_evaluate = instance.plan.exit_conditions[ai.name]
            exit_ok = (
                True
                if exit_evaluate is None
                else exit_evaluate(ai.output.resolver)
            )
            if not exit_ok and self._timeouts and self._replay is None:
                # A polling loop (exit condition still false) may have
                # run out its clock budget: escalate instead of
                # rescheduling forever against a dead counterpart.
                timeout = self._timeouts.get(ai.activity.program)
                if timeout is not None:
                    key = (instance.instance_id, ai.name)
                    started = self._started_at.get(key)
                    if started is not None and timeout.expired(
                        started, self.clock
                    ):
                        escalated = exit_ok = True
                        ai.output.return_code = timeout.escalate_rc
                        self._retries.pop(key, None)
                        self._started_at.pop(key, None)
                        self._audit.record(
                            self.clock,
                            AuditEvent.ACTIVITY_ESCALATED,
                            instance.instance_id,
                            ai.name,
                            reason="timeout",
                            rc=timeout.escalate_rc,
                        )
                        if self._obs_on:
                            self._c_escalated.labels("timeout").inc()
                            hooks = self._hooks
                            if hooks.wants(ActivityEscalated):
                                hooks.publish(
                                    ActivityEscalated(
                                        instance.instance_id,
                                        ai.name,
                                        "timeout",
                                        timeout.escalate_rc,
                                        self.clock,
                                    )
                                )
        if (
            not replayed
            and self._journal is not None
            and self._replay is None
        ):
            record = {
                "type": "activity_completed",
                "instance": instance.instance_id,
                "activity": ai.name,
                "attempt": ai.attempt,
                "output": ai.output.to_dict(),
                "forced": forced or ai.forced,
                "user": user,
            }
            if escalated:
                record["escalated"] = True
            self._journal.append(record)
        if self._obs_on:
            self._observe_completion(instance, ai, exit_ok, forced)
        if not exit_ok:
            limit = ai.activity.max_iterations
            if limit and ai.attempt >= limit:
                raise NavigationError(
                    "activity %s exceeded %d iterations without satisfying "
                    "its exit condition %r"
                    % (ai.name, limit, ai.activity.exit_condition.source)
                )
            self._audit.record(
                self.clock,
                AuditEvent.ACTIVITY_RESCHEDULED,
                instance.instance_id,
                ai.name,
                attempt=ai.attempt,
            )
            delay = (
                self._reschedule_delays.get(ai.activity.program, 0.0)
                if self._reschedule_delays
                else 0.0
            )
            if delay and self._replay is None and not ai.activity.is_manual:
                self._defer_ready(instance, ai.name, self.clock + delay)
            else:
                self._make_ready(instance, ai.name)
            return
        if self._retries or self._started_at:
            key = (instance.instance_id, ai.name)
            self._retries.pop(key, None)
            self._started_at.pop(key, None)
        self._terminate(instance, ai)

    def _observe_completion(
        self,
        instance: ProcessInstance,
        ai: ActivityInstance,
        exit_ok: bool,
        forced: bool,
    ) -> None:
        """Metrics/span/hook bookkeeping for one completed attempt."""
        outcome = "terminated" if exit_ok else "rescheduled"
        if forced or ai.forced:
            self._c_forced.inc()
        (self._c_terminated if exit_ok else self._c_rescheduled).inc()
        span = self._activity_spans.pop((instance.instance_id, ai.name), None)
        if span is not None:
            span.set_attribute("rc", ai.output.return_code)
            span.set_attribute("outcome", outcome)
            span.finish()
        hooks = self._hooks
        if hooks.wants(ActivityCompleted):
            hooks.publish(
                ActivityCompleted(
                    instance.instance_id,
                    ai.name,
                    ai.attempt,
                    ai.output.return_code,
                    outcome,
                    self.clock,
                )
            )

    def _terminate(
        self, instance: ProcessInstance, ai: ActivityInstance
    ) -> None:
        ai.state = ActivityState.TERMINATED
        self._audit.record(
            self.clock,
            AuditEvent.ACTIVITY_TERMINATED,
            instance.instance_id,
            ai.name,
            rc=ai.output.return_code if ai.output is not None else 0,
        )
        self._push_process_output(instance, ai)
        resolver = ai.output.resolver if ai.output is not None else _NULL_RESOLVER
        outgoing = instance.plan.outgoing[ai.name]
        if self._obs_on and outgoing:
            self._c_connectors.inc(len(outgoing))
        for connector in outgoing:
            evaluate = connector.evaluate
            value = True if evaluate is None else bool(evaluate(resolver))
            self._connector_evaluated(instance, connector.source, connector.target, value)
        self._check_finished(instance)

    def _push_process_output(
        self, instance: ProcessInstance, ai: ActivityInstance
    ) -> None:
        if ai.output is None:
            return
        for connector in instance.plan.output_mappings.get(ai.name, ()):
            instance.output.update_from(ai.output, connector.mappings)

    def _connector_evaluated(
        self, instance: ProcessInstance, source: str, target: str, value: bool
    ) -> None:
        self._audit.record(
            self.clock,
            AuditEvent.CONNECTOR_EVALUATED,
            instance.instance_id,
            target,
            source=source,
            value=value,
        )
        ai = instance.activity(target)
        ai.incoming[connector_key(source, target)] = value
        if ai.state is not ActivityState.WAITING:
            return  # decision already made (e.g. OR-join already fired)
        if ai.start_condition_met():
            self._make_ready(instance, target)
        elif ai.start_condition_dead():
            self._kill(instance, ai)

    def _kill(self, instance: ProcessInstance, ai: ActivityInstance) -> None:
        """Dead-path elimination (§3.2)."""
        ai.state = ActivityState.TERMINATED
        ai.dead = True
        self._worklists.withdraw(instance.instance_id, ai.name)
        if self._obs_on:
            self._c_dead.inc()
        self._audit.record(
            self.clock, AuditEvent.ACTIVITY_DEAD, instance.instance_id, ai.name
        )
        for connector in instance.plan.outgoing[ai.name]:
            self._connector_evaluated(
                instance, connector.source, connector.target, False
            )
        self._check_finished(instance)

    def _check_finished(self, instance: ProcessInstance) -> None:
        if instance.state is not ProcessState.RUNNING:
            return
        if not instance.all_terminated():
            return
        self._move_state(instance, ProcessState.FINISHED)
        if self._obs_on:
            self._c_proc_finished.labels(instance.definition.name).inc()
            self._g_running.dec()
            span = self._instance_spans.pop(instance.instance_id, None)
            if span is not None:
                span.finish()
            hooks = self._hooks
            if hooks.wants(ProcessFinished):
                hooks.publish(
                    ProcessFinished(
                        instance.instance_id,
                        instance.definition.name,
                        self.clock,
                    )
                )
        self._audit.record(
            self.clock, AuditEvent.PROCESS_FINISHED, instance.instance_id
        )
        self._journal_write(
            {"type": "process_finished", "instance": instance.instance_id}
        )
        if not instance.is_root:
            self._on_child_finished(instance)
            return
        scopes = self._services.get("tx_scopes")
        if scopes is not None:
            # Safety net: a workflow that finishes with a scope still
            # open (bad routing, escalated past its rollback activity)
            # must not leak the scope's transaction and locks.
            scopes.rollback_open_for(
                instance.instance_id, "root instance finished"
            )
        if self._store is not None:
            # Archive-and-evict runs during replay too: a root whose
            # finish record was durable but whose archive append was
            # lost in a crash gets re-archived here (the append is
            # idempotent by root id).
            self._store.archive_finished(self, instance)

    # ------------------------------------------------------------------
    # suspension (§3.3: "The user can stop an activity, restart it ...")
    # ------------------------------------------------------------------

    def suspend(self, instance_id: str) -> None:
        instance = self.instance(instance_id)
        if instance.state is not ProcessState.RUNNING:
            raise NavigationError(
                "cannot suspend instance in state %s" % instance.state.value
            )
        self._move_state(instance, ProcessState.SUSPENDED)
        self._audit.record(
            self.clock, AuditEvent.PROCESS_SUSPENDED, instance_id
        )
        self._journal_write(
            {"type": "process_suspended", "instance": instance_id}
        )

    def resume(self, instance_id: str) -> None:
        instance = self.instance(instance_id)
        if instance.state is not ProcessState.SUSPENDED:
            raise NavigationError(
                "cannot resume instance in state %s" % instance.state.value
            )
        self._move_state(instance, ProcessState.RUNNING)
        self._audit.record(self.clock, AuditEvent.PROCESS_RESUMED, instance_id)
        self._journal_write(
            {"type": "process_resumed", "instance": instance_id}
        )
        # Re-queue activities left ready while suspended (their heap
        # slots were lazily invalidated; this is a fresh arrival).
        for ai in instance.activities.values():
            if ai.state is ActivityState.READY and not ai.activity.is_manual:
                self._enqueue(instance, ai.name)

    # ------------------------------------------------------------------
    # journaling / replay plumbing
    # ------------------------------------------------------------------

    def _journal_write(self, record: dict[str, Any]) -> None:
        if self._journal is not None and self._replay is None:
            self._journal.append(record)

    # ------------------------------------------------------------------
    # observability plumbing
    # ------------------------------------------------------------------

    def trace_headers(
        self, instance_id: str, activity: str = ""
    ) -> dict[str, str]:
        """Message-bus headers carrying this work's trace context:
        the running activity's attempt span if one is open, else the
        instance span.  Empty when tracing is off."""
        tracer = self._tracer
        if not tracer.enabled:
            return {}
        span = None
        if activity:
            span = self._activity_spans.get((instance_id, activity))
        if span is None:
            span = self._instance_spans.get(instance_id)
        if span is None:
            return {}
        return tracer.inject(span)

    def begin_replay(self, cursor: ReplayCursor) -> None:
        self._replay = cursor
        self._deferred = []

    def end_replay(self) -> None:
        self._replay = None
        # Interrupted work is rescheduled "from the beginning": each
        # deferred slot re-enters the heap in its discovery order.
        for instance_id, name in self._deferred:
            self._enqueue(self._instances[instance_id], name)
        self._deferred = []

    # ------------------------------------------------------------------
    # durable-store plumbing (repro.store)
    # ------------------------------------------------------------------

    def evict_instances(self, instance_ids) -> None:
        """Drop archived instances from live memory (their durable
        state now lives in the store's archive)."""
        for instance_id in instance_ids:
            instance = self._instances.pop(instance_id, None)
            self._instance_spans.pop(instance_id, None)
            if instance is not None:
                ids = self._state_index.get(instance.state.value)
                if ids is not None:
                    ids.discard(instance_id)
                ids = self._definition_index.get(instance.definition.name)
                if ids is not None:
                    ids.discard(instance_id)

    def requeue_after_restore(self, cursor: ReplayCursor) -> None:
        """Re-schedule restored instances' READY work (checkpoint
        restore path; the navigator is mid-replay on ``cursor``).

        The ready heap is volatile, so every READY activity of a
        RUNNING restored instance re-enters it as a fresh arrival —
        the same rule ``resume`` and post-replay deferral follow.
        Manual activities whose completion sits in the replay suffix
        are enqueued for cursor consumption (mirroring
        ``_make_ready``'s replay branch); the rest are re-offered
        (work items are volatile too).  Instances suspended at
        checkpoint time but resumed in the suffix go back to RUNNING
        first, exactly as full replay nets the suspend/resume pair out
        to running.
        """
        for instance in list(self._instances.values()):
            if (
                instance.state is ProcessState.SUSPENDED
                and instance.instance_id in cursor.resumed
            ):
                self._move_state(instance, ProcessState.RUNNING)
            if instance.state is not ProcessState.RUNNING:
                continue
            for ai in instance.activities.values():
                if ai.state is not ActivityState.READY:
                    continue
                if not ai.activity.is_manual:
                    self._enqueue(instance, ai.name)
                elif cursor.take_peek(
                    instance.instance_id, ai.name, ai.attempt + 1
                ):
                    self._enqueue(instance, ai.name)
                else:
                    self._offer(instance, ai)
