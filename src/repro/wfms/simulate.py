"""Process simulation (§3.3 lists *simulation* among the workflow
features transaction models lack).

:func:`simulate` runs a discrete-event simulation of a process
definition without executing any programs: each activity gets a
:class:`ActivityProfile` (duration and success probability), parallel
branches overlap (completion is critical-path, not sum), AND/OR joins
and dead-path elimination follow the navigator's semantics, and
activities with an exit condition retry with fresh samples until they
succeed (geometric, capped).  Monte Carlo over seeds yields makespan
percentiles and completion rates — the "how long will this process
take, and how often does it reach the happy path?" questions a
workflow designer asks before deployment.

Approximations (documented, deliberate): transition conditions that
reference the predefined return code are treated as success-gated; any
other condition is treated as true with the probability supplied in
``branch_probabilities`` (keyed by ``(source, target)``; default 1.0 —
pass 1.0/0.0 pairs to model deterministic if-then-else branches, or
intermediate values for data-dependent routing rates).  Blocks and
subprocesses are simulated as single activities using their own
profile.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from statistics import mean

from repro.errors import DefinitionError
from repro.wfms.model import ProcessDefinition, StartCondition


@dataclass(frozen=True)
class ActivityProfile:
    """Simulation parameters of one activity."""

    duration: float = 1.0
    success_probability: float = 1.0
    #: Retry cap for activities whose exit condition loops on failure.
    max_retries: int = 25

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise DefinitionError("duration must be >= 0")
        if not 0.0 <= self.success_probability <= 1.0:
            raise DefinitionError("success probability must be in [0, 1]")


@dataclass
class RunResult:
    makespan: float
    executed: int
    dead: int
    failed: int  # activities that finished unsuccessfully
    succeeded_all: bool


@dataclass
class SimulationReport:
    """Aggregate over all Monte Carlo runs."""

    runs: list[RunResult] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.runs)

    @property
    def mean_makespan(self) -> float:
        return mean(r.makespan for r in self.runs)

    def percentile_makespan(self, q: float) -> float:
        ordered = sorted(r.makespan for r in self.runs)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    @property
    def completion_rate(self) -> float:
        """Fraction of runs in which every activity succeeded."""
        return sum(1 for r in self.runs if r.succeeded_all) / len(self.runs)

    @property
    def mean_executed(self) -> float:
        return mean(r.executed for r in self.runs)


def _is_success_gated(condition_source: str) -> bool:
    variables_of_interest = ("RC", "_RC")
    return any(v in condition_source for v in variables_of_interest)


def simulate(
    definition: ProcessDefinition,
    profiles: dict[str, ActivityProfile] | None = None,
    *,
    runs: int = 100,
    seed: int = 0,
    default_profile: ActivityProfile = ActivityProfile(),
    branch_probabilities: dict[tuple[str, str], float] | None = None,
) -> SimulationReport:
    """Monte Carlo simulation of ``definition``.

    ``branch_probabilities[(source, target)]`` gives the probability
    that a *data-dependent* transition condition on that connector
    evaluates true (ignored for success-gated connectors).
    """
    if runs < 1:
        raise DefinitionError("runs must be >= 1")
    profiles = profiles or {}
    branches = dict(branch_probabilities or {})
    for (source, target), probability in branches.items():
        if not 0.0 <= probability <= 1.0:
            raise DefinitionError(
                "branch probability for %s -> %s must be in [0, 1]"
                % (source, target)
            )
    report = SimulationReport()
    for run_index in range(runs):
        rng = random.Random((seed * 1_000_003) + run_index)
        report.runs.append(
            _single_run(definition, profiles, default_profile, branches, rng)
        )
    return report


def _single_run(
    definition: ProcessDefinition,
    profiles: dict[str, ActivityProfile],
    default: ActivityProfile,
    branches: dict[tuple[str, str], float],
    rng: random.Random,
) -> RunResult:
    # Event queue of (finish_time, sequence, activity, succeeded).
    events: list[tuple[float, int, str, bool]] = []
    sequence = 0
    incoming_values: dict[str, dict[str, bool | None]] = {
        name: {
            c.source: None for c in definition.incoming(name)
        }
        for name in definition.activities
    }
    state: dict[str, str] = {
        name: "waiting" for name in definition.activities
    }
    executed = dead = failed = 0
    clock = 0.0

    def profile_of(name: str) -> ActivityProfile:
        return profiles.get(name, default)

    def sample_run(name: str, start: float) -> tuple[float, bool]:
        """Total duration (with exit-condition retries) and success."""
        activity = definition.activity(name)
        profile = profile_of(name)
        total = profile.duration
        success = rng.random() < profile.success_probability
        if activity.exit_condition.source != "TRUE":
            retries = 0
            while not success and retries < profile.max_retries:
                retries += 1
                total += profile.duration
                success = rng.random() < profile.success_probability
        return start + total, success

    def start_activity(name: str, at: float) -> None:
        nonlocal sequence
        state[name] = "running"
        finish, success = sample_run(name, at)
        sequence += 1
        heapq.heappush(events, (finish, sequence, name, success))

    def kill(name: str, at: float) -> None:
        nonlocal dead
        if state[name] in ("dead", "terminated"):
            return
        state[name] = "dead"
        dead += 1
        for connector in definition.outgoing(name):
            signal(connector.target, name, False, at)

    def signal(target: str, source: str, value: bool, at: float) -> None:
        incoming = incoming_values[target]
        incoming[source] = value
        if state[target] != "waiting":
            return
        activity = definition.activity(target)
        values = list(incoming.values())
        if activity.start_condition is StartCondition.ANY:
            if value:
                start_activity(target, at)
            elif all(v is False for v in values):
                kill(target, at)
        else:
            if value is False:
                kill(target, at)
            elif all(v is True for v in values):
                start_activity(target, at)

    for name in definition.starting_activities():
        start_activity(name, 0.0)

    while events:
        finish, __, name, success = heapq.heappop(events)
        clock = max(clock, finish)
        state[name] = "terminated"
        executed += 1
        if not success:
            failed += 1
        for connector in definition.outgoing(name):
            if _is_success_gated(connector.condition.source):
                value = success
            else:
                probability = branches.get(
                    (connector.source, connector.target), 1.0
                )
                value = rng.random() < probability
            signal(connector.target, name, value, finish)

    return RunResult(
        makespan=clock,
        executed=executed,
        dead=dead,
        failed=failed,
        succeeded_all=failed == 0,
    )
