"""Persistent message queues (after Exotica/FMQM [AAE+95]).

The paper's group built distributed workflow on *persistent messages*:
nodes exchange navigation information through durable queues, so a
node crash loses no work — messages survive and are redelivered.

:class:`MessageBus` simulates that substrate: named queues with
at-least-once delivery (receive marks a message in-flight; ``ack``
removes it, ``nack`` or a redelivery sweep returns it to the queue).
The bus itself plays the role of stable storage: engines crash and are
rebuilt around it, the bus persists.

Messages carry optional **headers** separate from the body — the
channel trace contexts (:mod:`repro.obs.tracing`) travel on, so a
request/reply chain across nodes forms one distributed trace without
polluting the application payload.  Headers are durable like the body
and survive redelivery.  The bus also keeps per-queue delivery
counters (``stats``) for the monitor.

Two resilience extensions (:mod:`repro.resilience`):

* an installed :class:`~repro.resilience.faults.FaultInjector` is
  consulted on every ``send`` and may **drop** the message (id is
  returned but nothing is enqueued — a lost datagram), **duplicate**
  it (two envelopes, distinct ids), or **delay** it (the envelope
  sits out N receive sweeps).  Without an injector the cost is one
  ``None`` test.
* :meth:`~MessageBus.dead_letter` moves a poisoned in-flight message
  to the queue's dead-letter queue (``dlq:<queue>``) with the failure
  reason in its headers, ending the redelivery loop while keeping the
  message inspectable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import WorkflowError


#: Stat counters every queue bucket carries.  ``overflowed`` and
#: ``shed`` are written by the admission control of the socket broker
#: (:mod:`repro.net.server`): an overflowed send was rejected and
#: dead-lettered, a shed send was rejected by the breaker outright.
_STAT_KEYS = (
    "sent",
    "delivered",
    "acked",
    "nacked",
    "redelivered",
    "dropped",
    "duplicated",
    "delayed",
    "dead_lettered",
    "overflowed",
    "shed",
)

#: Dead-letter queue name for a queue.
DLQ_PREFIX = "dlq:"


def dlq_name(queue: str) -> str:
    return DLQ_PREFIX + queue


@dataclass
class _Envelope:
    msg_id: str
    body: dict[str, Any]
    headers: dict[str, str] = field(default_factory=dict)
    in_flight: bool = False
    deliveries: int = 0
    hold: int = 0  # receive sweeps left to sit out (injected delay)


@dataclass
class MessageBus:
    """Named durable queues with ack/nack semantics."""

    _queues: dict[str, list[_Envelope]] = field(default_factory=dict)
    #: message-id sequence — a plain int so a durable broker can
    #: checkpoint and restore it (an ``itertools.count`` cannot be
    #: serialized, let alone rewound to a replayed position).
    _counter: int = 0
    #: queue -> counter bucket (see ``_STAT_KEYS``) — cheap always-on
    #: accounting for the monitor.
    _stats: dict[str, dict[str, int]] = field(default_factory=dict)
    _injector: Any = None

    def install_injector(self, injector: Any) -> None:
        """Install a :class:`~repro.resilience.faults.FaultInjector`
        consulted on every send (``None`` uninstalls)."""
        self._injector = injector

    def _stat(self, queue: str, key: str, amount: int = 1) -> None:
        bucket = self._stats.get(queue)
        if bucket is None:
            bucket = self._stats[queue] = dict.fromkeys(_STAT_KEYS, 0)
        bucket[key] += amount

    def _next_id(self) -> str:
        msg_id = "m%06d" % self._counter
        self._counter += 1
        return msg_id

    def send(
        self,
        queue: str,
        body: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> str:
        """Append a message; returns its id.  ``headers`` ride along
        out-of-band (trace context propagation)."""
        msg_id, __, __ = self.send_detailed(queue, body, headers)
        return msg_id

    def send_detailed(
        self,
        queue: str,
        body: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> tuple[str, str, list[dict[str, Any]]]:
        """:meth:`send`, but reporting what actually happened.

        Returns ``(msg_id, effect, entries)`` where ``effect`` is one
        of ``enqueued | dropped | duplicated | delayed`` (the injector's
        decision, ``enqueued`` for a clean send) and ``entries`` lists
        every envelope that joined the queue as ``{msg_id, body,
        headers, hold}`` — empty for a drop, two rows for a duplicate.
        The durable broker journals these *effects*, so replay never
        re-consults the injector's RNG."""
        if not queue:
            raise WorkflowError("queue name must be non-empty")
        envelope = _Envelope(
            self._next_id(),
            dict(body),
            dict(headers) if headers else {},
        )
        self._stat(queue, "sent")
        effect = "enqueued"
        entries: list[_Envelope] = [envelope]
        if self._injector is not None:
            rule = self._injector.on_send(queue)
            if rule is not None:
                if rule.action == "drop":
                    # Lost datagram: the sender got an id, the network
                    # ate the message.
                    self._stat(queue, "dropped")
                    return envelope.msg_id, "dropped", []
                if rule.action == "duplicate":
                    twin = _Envelope(
                        self._next_id(),
                        dict(envelope.body),
                        dict(envelope.headers),
                    )
                    self._queues.setdefault(queue, []).append(twin)
                    self._stat(queue, "duplicated")
                    effect = "duplicated"
                    entries.insert(0, twin)
                elif rule.action == "delay":
                    envelope.hold = rule.delay
                    self._stat(queue, "delayed")
                    effect = "delayed"
        self._queues.setdefault(queue, []).append(envelope)
        return (
            envelope.msg_id,
            effect,
            [
                {
                    "msg_id": entry.msg_id,
                    "body": dict(entry.body),
                    "headers": dict(entry.headers),
                    "hold": entry.hold,
                }
                for entry in entries
            ],
        )

    def receive(self, queue: str) -> tuple[str, dict[str, Any]] | None:
        """Take the oldest available message (marks it in-flight)."""
        taken = self.receive_with_headers(queue)
        if taken is None:
            return None
        msg_id, body, __ = taken
        return msg_id, body

    def receive_with_headers(
        self, queue: str
    ) -> tuple[str, dict[str, Any], dict[str, str]] | None:
        """Like :meth:`receive`, but also returns the headers.

        A delayed envelope (injected fault) sits out ``hold`` receive
        sweeps: each scan that would otherwise deliver it decrements
        the hold instead, so later messages overtake it."""
        for envelope in self._queues.get(queue, []):
            if not envelope.in_flight:
                if envelope.hold:
                    envelope.hold -= 1
                    continue
                envelope.in_flight = True
                envelope.deliveries += 1
                self._stat(queue, "delivered")
                if envelope.deliveries > 1:
                    self._stat(queue, "redelivered")
                return envelope.msg_id, dict(envelope.body), dict(
                    envelope.headers
                )
        return None

    def dead_letter(self, queue: str, msg_id: str, reason: str) -> str:
        """Move a poisoned in-flight message to ``dlq:<queue>``.

        The message keeps its id, body, and headers (plus a
        ``dead-letter-reason`` header) but its redelivery life on the
        original queue ends.  Returns the DLQ name."""
        envelopes = self._queues.get(queue, [])
        for index, envelope in enumerate(envelopes):
            if envelope.msg_id == msg_id:
                if not envelope.in_flight:
                    raise WorkflowError(
                        "message %s was not in flight" % msg_id
                    )
                del envelopes[index]
                target = dlq_name(queue)
                envelope.in_flight = False
                envelope.headers["dead-letter-reason"] = reason
                self._queues.setdefault(target, []).append(envelope)
                self._stat(queue, "dead_lettered")
                self._stat(target, "sent")
                return target
        raise WorkflowError("unknown message %s on %s" % (msg_id, queue))

    def reject(
        self,
        queue: str,
        body: dict[str, Any],
        headers: dict[str, str] | None,
        reason: str,
    ) -> str:
        """Refuse a message at admission: instead of joining ``queue``
        it lands directly on ``dlq:<queue>`` with the rejection reason
        in its headers — the nack-on-overflow path of the socket
        broker's bounded queues.  Returns the message id."""
        envelope = _Envelope(
            self._next_id(),
            dict(body),
            dict(headers) if headers else {},
        )
        envelope.headers["dead-letter-reason"] = reason
        target = dlq_name(queue)
        self._queues.setdefault(target, []).append(envelope)
        self._stat(queue, "overflowed")
        self._stat(target, "sent")
        return envelope.msg_id

    def dlq_entries(
        self, queue: str | None = None
    ) -> list[dict[str, Any]]:
        """Inspect dead-letter queues without consuming anything.

        ``queue`` names the *original* queue (``None`` walks every
        DLQ); each row carries the message id, original queue, body,
        headers (including ``dead-letter-reason``) and deliveries."""
        if queue is not None:
            names = [dlq_name(queue)]
        else:
            names = [n for n in sorted(self._queues) if n.startswith(DLQ_PREFIX)]
        rows: list[dict[str, Any]] = []
        for name in names:
            for envelope in self._queues.get(name, []):
                rows.append(
                    {
                        "msg_id": envelope.msg_id,
                        "queue": name[len(DLQ_PREFIX):],
                        "body": dict(envelope.body),
                        "headers": dict(envelope.headers),
                        "deliveries": envelope.deliveries,
                    }
                )
        return rows

    def dlq_drain(self, queue: str, *, requeue: bool = True) -> int:
        """Empty ``dlq:<queue>``; returns how many messages moved.

        With ``requeue`` (the operator's replay) every dead message
        returns to the original queue as a fresh deliverable envelope —
        the ``dead-letter-reason`` header is removed and the delivery
        count reset, so the redelivery cap starts over.  Without it the
        messages are purged."""
        source = dlq_name(queue)
        envelopes = self._queues.get(source, [])
        drained = len(envelopes)
        if not drained:
            return 0
        self._queues[source] = []
        if requeue:
            for envelope in envelopes:
                envelope.in_flight = False
                envelope.deliveries = 0
                envelope.hold = 0
                envelope.headers.pop("dead-letter-reason", None)
                self._queues.setdefault(queue, []).append(envelope)
                self._stat(queue, "sent")
        return drained

    def ack(self, queue: str, msg_id: str) -> None:
        """Remove a delivered message permanently."""
        envelopes = self._queues.get(queue, [])
        for index, envelope in enumerate(envelopes):
            if envelope.msg_id == msg_id:
                if not envelope.in_flight:
                    raise WorkflowError(
                        "message %s was not in flight" % msg_id
                    )
                del envelopes[index]
                self._stat(queue, "acked")
                return
        raise WorkflowError("unknown message %s on %s" % (msg_id, queue))

    def nack(self, queue: str, msg_id: str) -> None:
        """Return an in-flight message to the queue (redelivery)."""
        for envelope in self._queues.get(queue, []):
            if envelope.msg_id == msg_id:
                envelope.in_flight = False
                self._stat(queue, "nacked")
                return
        raise WorkflowError("unknown message %s on %s" % (msg_id, queue))

    def mark_in_flight(self, queue: str, msg_id: str) -> bool:
        """Re-reserve a deliverable message (session resume): a
        consumer that held ``msg_id`` in flight when the broker
        restarted re-registers its claim, so nobody else receives the
        message while the original consumer finishes.  Returns whether
        the message was found deliverable; already-in-flight or
        unknown ids are a no-op (the call is idempotent)."""
        for envelope in self._queues.get(queue, []):
            if envelope.msg_id == msg_id and not envelope.in_flight:
                envelope.in_flight = True
                return True
        return False

    def recover_in_flight(self, queue: str | None = None) -> int:
        """Mark every in-flight message deliverable again — what the
        queue manager does when a consumer crashes mid-processing."""
        recovered = 0
        queues = [queue] if queue else list(self._queues)
        for name in queues:
            for envelope in self._queues.get(name, []):
                if envelope.in_flight:
                    envelope.in_flight = False
                    recovered += 1
        return recovered

    def depth(self, queue: str) -> int:
        return len(self._queues.get(queue, []))

    def deliveries(self, queue: str, msg_id: str) -> int:
        for envelope in self._queues.get(queue, []):
            if envelope.msg_id == msg_id:
                return envelope.deliveries
        return 0

    def queues(self) -> list[str]:
        return sorted(self._queues)

    def stats(self, queue: str | None = None) -> dict[str, Any]:
        """Delivery counters — one queue's, or all queues keyed by name."""
        if queue is not None:
            bucket = self._stats.get(queue)
            if bucket is None:
                return dict.fromkeys(_STAT_KEYS, 0)
            return dict(bucket)
        return {name: dict(bucket) for name, bucket in sorted(self._stats.items())}

    # -- durable-broker state transfer ---------------------------------

    def export_state(self) -> dict[str, Any]:
        """The bus as a JSON-native state dict (checkpoint capture).

        In-flight flags are *not* exported: a broker restart severs
        every consumer connection, so on restore each message must be
        deliverable again (consumers re-reserve theirs via
        :meth:`mark_in_flight` on session resume)."""
        return {
            "counter": self._counter,
            "queues": {
                name: [
                    {
                        "msg_id": envelope.msg_id,
                        "body": dict(envelope.body),
                        "headers": dict(envelope.headers),
                        "deliveries": envelope.deliveries,
                        "hold": envelope.hold,
                    }
                    for envelope in envelopes
                ]
                for name, envelopes in self._queues.items()
            },
            "stats": {
                name: dict(bucket) for name, bucket in self._stats.items()
            },
        }

    def restore_state(self, state: dict[str, Any]) -> int:
        """Rebuild queues, stats and the id sequence from
        :meth:`export_state` output; returns the number of messages
        restored.  The bus must be empty (fresh broker start)."""
        if self._queues or self._stats:
            raise WorkflowError(
                "restore_state needs an empty bus (%d queues live)"
                % len(self._queues)
            )
        self._counter = int(state.get("counter", 0))
        restored = 0
        for name, rows in state.get("queues", {}).items():
            envelopes = self._queues[name] = []
            for row in rows:
                envelopes.append(
                    _Envelope(
                        row["msg_id"],
                        dict(row.get("body") or {}),
                        dict(row.get("headers") or {}),
                        deliveries=int(row.get("deliveries", 0)),
                        hold=int(row.get("hold", 0)),
                    )
                )
                restored += 1
        for name, bucket in state.get("stats", {}).items():
            merged = dict.fromkeys(_STAT_KEYS, 0)
            merged.update(bucket)
            self._stats[name] = merged
        return restored
