"""Persistent message queues (after Exotica/FMQM [AAE+95]).

The paper's group built distributed workflow on *persistent messages*:
nodes exchange navigation information through durable queues, so a
node crash loses no work — messages survive and are redelivered.

:class:`MessageBus` simulates that substrate: named queues with
at-least-once delivery (receive marks a message in-flight; ``ack``
removes it, ``nack`` or a redelivery sweep returns it to the queue).
The bus itself plays the role of stable storage: engines crash and are
rebuilt around it, the bus persists.

Messages carry optional **headers** separate from the body — the
channel trace contexts (:mod:`repro.obs.tracing`) travel on, so a
request/reply chain across nodes forms one distributed trace without
polluting the application payload.  Headers are durable like the body
and survive redelivery.  The bus also keeps per-queue delivery
counters (``stats``) for the monitor.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.errors import WorkflowError


@dataclass
class _Envelope:
    msg_id: str
    body: dict[str, Any]
    headers: dict[str, str] = field(default_factory=dict)
    in_flight: bool = False
    deliveries: int = 0


@dataclass
class MessageBus:
    """Named durable queues with ack/nack semantics."""

    _queues: dict[str, list[_Envelope]] = field(default_factory=dict)
    _counter: itertools.count = field(default_factory=itertools.count)
    #: queue -> {"sent": n, "delivered": n, "acked": n, "nacked": n,
    #: "redelivered": n} — cheap always-on accounting for the monitor.
    _stats: dict[str, dict[str, int]] = field(default_factory=dict)

    def _stat(self, queue: str, key: str, amount: int = 1) -> None:
        bucket = self._stats.get(queue)
        if bucket is None:
            bucket = self._stats[queue] = {
                "sent": 0,
                "delivered": 0,
                "acked": 0,
                "nacked": 0,
                "redelivered": 0,
            }
        bucket[key] += amount

    def send(
        self,
        queue: str,
        body: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> str:
        """Append a message; returns its id.  ``headers`` ride along
        out-of-band (trace context propagation)."""
        if not queue:
            raise WorkflowError("queue name must be non-empty")
        envelope = _Envelope(
            "m%06d" % next(self._counter),
            dict(body),
            dict(headers) if headers else {},
        )
        self._queues.setdefault(queue, []).append(envelope)
        self._stat(queue, "sent")
        return envelope.msg_id

    def receive(self, queue: str) -> tuple[str, dict[str, Any]] | None:
        """Take the oldest available message (marks it in-flight)."""
        taken = self.receive_with_headers(queue)
        if taken is None:
            return None
        msg_id, body, __ = taken
        return msg_id, body

    def receive_with_headers(
        self, queue: str
    ) -> tuple[str, dict[str, Any], dict[str, str]] | None:
        """Like :meth:`receive`, but also returns the headers."""
        for envelope in self._queues.get(queue, []):
            if not envelope.in_flight:
                envelope.in_flight = True
                envelope.deliveries += 1
                self._stat(queue, "delivered")
                if envelope.deliveries > 1:
                    self._stat(queue, "redelivered")
                return envelope.msg_id, dict(envelope.body), dict(
                    envelope.headers
                )
        return None

    def ack(self, queue: str, msg_id: str) -> None:
        """Remove a delivered message permanently."""
        envelopes = self._queues.get(queue, [])
        for index, envelope in enumerate(envelopes):
            if envelope.msg_id == msg_id:
                if not envelope.in_flight:
                    raise WorkflowError(
                        "message %s was not in flight" % msg_id
                    )
                del envelopes[index]
                self._stat(queue, "acked")
                return
        raise WorkflowError("unknown message %s on %s" % (msg_id, queue))

    def nack(self, queue: str, msg_id: str) -> None:
        """Return an in-flight message to the queue (redelivery)."""
        for envelope in self._queues.get(queue, []):
            if envelope.msg_id == msg_id:
                envelope.in_flight = False
                self._stat(queue, "nacked")
                return
        raise WorkflowError("unknown message %s on %s" % (msg_id, queue))

    def recover_in_flight(self, queue: str | None = None) -> int:
        """Mark every in-flight message deliverable again — what the
        queue manager does when a consumer crashes mid-processing."""
        recovered = 0
        queues = [queue] if queue else list(self._queues)
        for name in queues:
            for envelope in self._queues.get(name, []):
                if envelope.in_flight:
                    envelope.in_flight = False
                    recovered += 1
        return recovered

    def depth(self, queue: str) -> int:
        return len(self._queues.get(queue, []))

    def deliveries(self, queue: str, msg_id: str) -> int:
        for envelope in self._queues.get(queue, []):
            if envelope.msg_id == msg_id:
                return envelope.deliveries
        return 0

    def queues(self) -> list[str]:
        return sorted(self._queues)

    def stats(self, queue: str | None = None) -> dict[str, Any]:
        """Delivery counters — one queue's, or all queues keyed by name."""
        if queue is not None:
            return dict(
                self._stats.get(
                    queue,
                    {
                        "sent": 0,
                        "delivered": 0,
                        "acked": 0,
                        "nacked": 0,
                        "redelivered": 0,
                    },
                )
            )
        return {name: dict(bucket) for name, bucket in sorted(self._stats.items())}
