"""Persistent execution journal.

"In most WFMSs the execution of a process is persistent in the sense
that forward recovery is always guaranteed" (§3.3).  The engine records
every *non-deterministic decision* — process starts with their inputs,
activity completions with their outputs — as JSON records.  Navigation
itself is deterministic, so replaying these records through the same
navigator reconstructs the exact pre-crash state; see
:mod:`repro.wfms.recovery`.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Iterable, Iterator

from repro.errors import RecoveryError
from repro.obs import JournalSynced, resolve_observability

RECORD_TYPES = {
    "process_started",
    "activity_completed",
    "process_finished",
    "process_suspended",
    "process_resumed",
}

#: Legal values for the ``sync`` policy.
SYNC_POLICIES = ("always", "batch", "never")


class Journal:
    """Append-only record store, file-backed or in-memory.

    File backing writes one JSON object per line.  *When* a record
    becomes durable is governed by the ``sync`` policy:

    * ``"always"`` (default) — flush + fsync after every append.  This
      is the durability point the §3.3 forward-recovery guarantee
      needs: a crash never loses an appended record.
    * ``"batch"`` — **group commit**: appends are buffered in memory
      and committed (written, flushed, fsynced) together once
      ``batch_size`` records accumulate or ``batch_interval`` seconds
      pass since the first buffered record.  A crash loses at most the
      unflushed suffix; :meth:`flush` is the explicit durability
      barrier (called by ``Engine.crash()``/``close()`` and the
      recovery path).
    * ``"never"`` — records are handed to the OS on every append but
      never explicitly fsynced outside :meth:`flush`/:meth:`close`;
      fastest, with durability left to the operating system.

    In-memory state (:meth:`records`) always reflects every append
    regardless of policy — it is volatile by definition.  A record is
    only added to memory *after* the file write succeeded, so a failing
    disk write cannot leave memory claiming a record that was never
    durable.

    Subclasses journaling a different domain override two class
    attributes: ``record_types`` (the legal ``type`` values) and
    ``fault_scope`` (the injector site family — the engine journal
    consults ``journal.append``/``journal.fsync``, the broker's bus
    log ``buslog.append``/``buslog.fsync``).
    """

    record_types = RECORD_TYPES
    fault_scope = "journal"

    def __init__(
        self,
        path: str | os.PathLike[str] | None = None,
        *,
        sync: str = "always",
        batch_size: int = 64,
        batch_interval: float = 0.05,
        obs=None,
        injector=None,
    ):
        if sync not in SYNC_POLICIES:
            raise ValueError(
                "unknown journal sync policy %r (choose from %s)"
                % (sync, ", ".join(SYNC_POLICIES))
            )
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self._path = os.fspath(path) if path is not None else None
        self._sync = sync
        self._batch_size = batch_size
        self._batch_interval = batch_interval
        self._injector = injector
        self._memory: list[dict[str, Any]] = []
        #: serialized-but-uncommitted lines (batch policy only)
        self._buffer: list[str] = []
        self._buffer_since: float | None = None
        self._file = None
        obs = resolve_observability(obs)
        self._obs_on = obs.enabled
        self._hooks = obs.hooks
        self._tracer = obs.tracer
        self._c_appends = obs.metrics.counter(
            "wfms_journal_appends_total", "Journal records appended"
        )
        self._c_commits = obs.metrics.counter(
            "wfms_journal_commits_total",
            "Durability points (write + fsync) by trigger",
            labels=("reason",),
        )
        self._h_commit_seconds = obs.metrics.histogram(
            "wfms_journal_commit_seconds", "Seconds per durability point"
        )
        self._g_unflushed = obs.metrics.gauge(
            "wfms_journal_unflushed", "Appended records not yet durable"
        )
        if self._path is not None:
            # Load any existing records, then open for appending (a
            # torn tail is trimmed so appends never concatenate to it).
            if os.path.exists(self._path):
                self._memory = list(_read_file(self._path))
                trim_torn_tail(self._path)
            self._file = open(self._path, "a", encoding="utf-8")

    @property
    def path(self) -> str | None:
        return self._path

    @property
    def sync(self) -> str:
        return self._sync

    def append(self, record: dict[str, Any]) -> None:
        if record.get("type") not in self.record_types:
            raise RecoveryError(
                "illegal journal record type %r" % record.get("type")
            )
        if self._injector is not None:
            # A failing disk surfaces before anything is written, so
            # neither file nor memory claims the record
            # (write-then-record stays honest under injection).
            self._injector.on_journal(
                "append", str(record.get("type")), self.fault_scope
            )
        if self._file is not None:
            line = json.dumps(record, sort_keys=True)
            if self._sync == "always":
                self._file.write(line)
                self._file.write("\n")
                if self._obs_on:
                    started = time.perf_counter()
                    self._file.flush()
                    self._fsync("append")
                    self._observe_commit(
                        1, "append", time.perf_counter() - started
                    )
                else:
                    self._file.flush()
                    self._fsync("append")
            elif self._sync == "never":
                self._file.write(line)
                self._file.write("\n")
            else:  # batch: group commit
                self._buffer.append(line)
                now = time.monotonic()
                if self._buffer_since is None:
                    self._buffer_since = now
                if len(self._buffer) >= self._batch_size:
                    self._commit("batch_full")
                elif now - self._buffer_since >= self._batch_interval:
                    self._commit("batch_interval")
                elif self._obs_on:
                    self._g_unflushed.set(len(self._buffer))
        # Write-then-append: memory only claims records whose file
        # write (or buffering) succeeded.
        self._memory.append(record)
        if self._obs_on:
            self._c_appends.inc()

    def _fsync(self, reason: str) -> None:
        """One durability point; the injector may turn it into a
        :class:`~repro.errors.JournalError` (disk failure)."""
        if self._injector is not None:
            self._injector.on_journal("fsync", reason, self.fault_scope)
        os.fsync(self._file.fileno())

    def _commit(self, reason: str = "flush") -> None:
        """Write the buffered suffix and make the file durable."""
        assert self._file is not None
        committed = len(self._buffer)
        if not self._obs_on:
            if self._buffer:
                self._file.write("\n".join(self._buffer))
                self._file.write("\n")
                self._buffer.clear()
                self._buffer_since = None
            self._file.flush()
            self._fsync(reason)
            return
        span = None
        if committed and self._tracer.enabled:
            span = self._tracer.start_span(
                "journal.commit",
                kind="journal",
                attributes={"records": committed, "reason": reason},
            )
        started = time.perf_counter()
        if self._buffer:
            self._file.write("\n".join(self._buffer))
            self._file.write("\n")
            self._buffer.clear()
            self._buffer_since = None
        self._file.flush()
        self._fsync(reason)
        elapsed = time.perf_counter() - started
        if span is not None:
            span.finish()
        self._observe_commit(committed, reason, elapsed)

    def _observe_commit(
        self, records: int, reason: str, seconds: float
    ) -> None:
        self._c_commits.labels(reason).inc()
        self._h_commit_seconds.observe(seconds)
        self._g_unflushed.set(len(self._buffer))
        hooks = self._hooks
        if hooks.wants(JournalSynced):
            hooks.publish(JournalSynced(records, reason, seconds))

    def flush(self) -> None:
        """Durability barrier: every appended record is on disk after
        this returns, whatever the sync policy."""
        if self._file is not None:
            self._commit("flush")

    def unflushed(self) -> int:
        """Number of appended records not yet committed to disk."""
        return len(self._buffer)

    def records(self) -> list[dict[str, Any]]:
        return list(self._memory)

    def __len__(self) -> int:
        return len(self._memory)

    def close(self) -> None:
        if self._file is not None:
            self._commit()
            self._file.close()
            self._file = None

    def abandon(self) -> None:
        """Release the backing file *without* a final commit — used
        when the disk itself is failing and a flush would only raise
        again.  The durable prefix on disk stays replayable; buffered
        records are lost (exactly the crash semantics of ``batch``)."""
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        self._buffer.clear()
        self._buffer_since = None

    def reopen(self) -> None:
        """Reopen the backing file after :meth:`close` (crash restart)."""
        if self._path is not None and self._file is None:
            trim_torn_tail(self._path)
            self._file = open(self._path, "a", encoding="utf-8")

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_json_lines(
    path: str, *, tolerate_torn_tail: bool = True
) -> Iterator[tuple[int, Any]]:
    """Yield ``(lineno, parsed_object)`` per non-empty JSON line.

    A decode error is only tolerated (the line is skipped) when it is
    the *last* non-empty line of the file and ``tolerate_torn_tail`` is
    true — that is the normal signature of a crash mid-append, and the
    decision on the torn line was never durable.  A decode error on any
    earlier line means durable records follow corrupt bytes: that is
    data loss, never a clean crash, and raises :class:`RecoveryError`.
    Sealed journal segments are read with ``tolerate_torn_tail=False``
    (they were fsynced whole, so even a torn tail is corruption).
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    last_nonempty = 0
    for lineno, line in enumerate(lines, start=1):
        if line.strip():
            last_nonempty = lineno
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            parsed = json.loads(line)
        except json.JSONDecodeError:
            if tolerate_torn_tail and lineno == last_nonempty:
                continue
            raise RecoveryError(
                "%s:%d: corrupt journal record followed by durable data "
                "(only a torn final line of the active file is a clean "
                "crash signature)" % (path, lineno)
            ) from None
        yield lineno, parsed


def trim_torn_tail(path: str | os.PathLike[str]) -> bool:
    """Truncate a torn final line (crash mid-append) off ``path``.

    Opening a torn file in append mode would concatenate the next
    record onto the torn bytes, turning a clean crash signature into
    mid-file corruption on the *next* recovery — so every append-mode
    open of a tolerant-tail file trims first.  Returns True when
    something was trimmed.  Earlier corrupt lines are left alone (the
    reader raises on them; truncating would destroy evidence).
    """
    path = os.fspath(path)
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError:
        return False
    stripped = data.rstrip()
    if not stripped:
        return False
    start = stripped.rfind(b"\n") + 1
    try:
        json.loads(stripped[start:].decode("utf-8"))
        return False
    except (UnicodeDecodeError, ValueError):
        pass
    with open(path, "r+b") as handle:
        handle.truncate(start)
    return True


def _read_file(
    path: str, *, tolerate_torn_tail: bool = True
) -> Iterator[dict[str, Any]]:
    for lineno, record in read_json_lines(
        path, tolerate_torn_tail=tolerate_torn_tail
    ):
        if not isinstance(record, dict) or "type" not in record:
            raise RecoveryError(
                "%s:%d: malformed journal record" % (path, lineno)
            )
        yield record


def load_journal(path: str | os.PathLike[str]) -> list[dict[str, Any]]:
    """Read all durable records from a journal file."""
    return list(_read_file(os.fspath(path)))


class ReplayCursor:
    """Recorded activity completions, consumed during recovery.

    Keyed by ``(instance_id, activity, attempt)`` so exit-condition
    loops replay each iteration's recorded output.

    ``archived`` (the durable-store recovery path) names instances
    whose final state already lives in the
    :class:`repro.store.archive.InstanceArchive`: every record of an
    archived instance is skipped outright, so finished-and-archived
    processes are never re-navigated during recovery.
    """

    def __init__(
        self,
        records: Iterable[dict[str, Any]],
        *,
        archived: "frozenset[str] | set[str]" = frozenset(),
    ):
        self._completions: dict[tuple[str, str, int], dict[str, Any]] = {}
        self.process_starts: list[dict[str, Any]] = []
        self.finished: set[str] = set()
        self.suspended: set[str] = set()
        #: instances that saw a ``process_resumed`` record — the
        #: checkpoint-restore path uses this to re-run instances that
        #: were suspended at snapshot time but resumed in the suffix.
        self.resumed: set[str] = set()
        for record in records:
            kind = record["type"]
            if archived and record.get("instance") in archived:
                continue
            if kind == "process_started":
                self.process_starts.append(record)
            elif kind == "activity_completed":
                key = (
                    record["instance"],
                    record["activity"],
                    int(record["attempt"]),
                )
                if key in self._completions:
                    raise RecoveryError(
                        "duplicate completion record for %s" % (key,)
                    )
                self._completions[key] = record
            elif kind == "process_finished":
                self.finished.add(record["instance"])
            elif kind == "process_suspended":
                self.suspended.add(record["instance"])
            elif kind == "process_resumed":
                self.suspended.discard(record["instance"])
                self.resumed.add(record["instance"])

    def take(
        self, instance_id: str, activity: str, attempt: int
    ) -> dict[str, Any] | None:
        """Pop the recorded completion for this execution, if any."""
        return self._completions.pop((instance_id, activity, attempt), None)

    def take_peek(self, instance_id: str, activity: str, attempt: int) -> bool:
        """Whether a completion record exists, without consuming it."""
        return (instance_id, activity, attempt) in self._completions

    def pending(self) -> int:
        return len(self._completions)
