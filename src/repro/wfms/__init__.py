"""FlowMark-style workflow management system (the paper's substrate).

This package implements the WfMC/FlowMark metamodel described in §3.2 of
the paper: process definitions made of activities wired by control
connectors (with transition conditions) and data connectors (container
field mappings), typed input/output data containers, AND/OR start
conditions, exit conditions (which give loops), dead-path elimination,
block activities for nesting, an organization model with worklists, a
persistent journal providing forward recovery, and an audit trail.

The public entry point is :class:`repro.wfms.engine.Engine`.
"""

from repro.wfms.datatypes import DataType, StructureType, VariableDecl
from repro.wfms.conditions import Condition, parse_condition
from repro.wfms.model import (
    Activity,
    ActivityKind,
    ControlConnector,
    DataConnector,
    ProcessDefinition,
    StartMode,
    StartCondition,
)
from repro.wfms.containers import Container
from repro.wfms.instance import ActivityState, ProcessState
from repro.wfms.programs import ProgramRegistry, program_from_callable
from repro.wfms.organization import Organization, Person, Role
from repro.wfms.engine import Engine
from repro.wfms.messaging import MessageBus
from repro.wfms.distributed import WorkflowNode, run_cluster
from repro.wfms.sharding import (
    ANY_SHARD,
    MultiprocessShardPool,
    ShardedEngine,
    ShardNode,
    shard_of,
)
from repro.wfms.simulate import ActivityProfile, SimulationReport, simulate
from repro.wfms.registry import DefinitionRegistry

__all__ = [
    "ANY_SHARD",
    "Activity",
    "ActivityKind",
    "ActivityProfile",
    "ActivityState",
    "Condition",
    "Container",
    "ControlConnector",
    "DataConnector",
    "DataType",
    "DefinitionRegistry",
    "Engine",
    "MessageBus",
    "MultiprocessShardPool",
    "ShardNode",
    "ShardedEngine",
    "SimulationReport",
    "WorkflowNode",
    "run_cluster",
    "shard_of",
    "simulate",
    "Organization",
    "Person",
    "ProcessDefinition",
    "ProcessState",
    "ProgramRegistry",
    "Role",
    "StartCondition",
    "StartMode",
    "StructureType",
    "VariableDecl",
    "parse_condition",
    "program_from_callable",
]
