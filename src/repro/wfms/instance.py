"""Run-time instances of processes and activities.

State machine (§3.2): an activity is *ready*, *running*, *finished*
(execution completed) or *terminated* (execution completed and the exit
condition held).  We add *waiting* for activities whose start condition
is not yet decided, and flag dead-path terminations with ``dead`` —
the paper folds those into "terminated" but the distinction is what the
experiments assert on.
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING

from repro.errors import NavigationError
from repro.wfms.containers import Container
from repro.wfms.model import Activity, ProcessDefinition, StartCondition

if TYPE_CHECKING:
    from repro.wfms.plan import NavigationPlan


class ActivityState(Enum):
    WAITING = "waiting"
    READY = "ready"
    RUNNING = "running"
    FINISHED = "finished"
    TERMINATED = "terminated"


class ProcessState(Enum):
    RUNNING = "running"
    SUSPENDED = "suspended"
    FINISHED = "finished"


def connector_key(source: str, target: str) -> str:
    return "%s->%s" % (source, target)


class ActivityInstance:
    """Run-time state of one activity within one process instance.

    ``state`` is a property: transitions into/out of ``TERMINATED``
    maintain the owning :class:`ProcessInstance`'s live-activity
    counter, which makes :meth:`ProcessInstance.all_terminated` O(1)
    instead of an O(activities) scan per termination.
    """

    __slots__ = (
        "activity",
        "_state",
        "dead",
        "attempt",
        "input",
        "output",
        "incoming",
        "claimed_by",
        "forced",
        "child_instance",
        "owner",
    )

    def __init__(
        self,
        activity: Activity,
        owner: "ProcessInstance | None" = None,
    ):
        self.activity = activity
        self._state = ActivityState.WAITING
        self.dead = False
        self.attempt = 0              # how many times execution started
        self.input: Container | None = None
        self.output: Container | None = None
        #: connector key -> evaluated truth value (None = not yet evaluated)
        self.incoming: dict[str, bool | None] = {}
        self.claimed_by = ""
        self.forced = False
        #: instance id of the currently running child (BLOCK/PROCESS kinds)
        self.child_instance = ""
        self.owner = owner

    @property
    def state(self) -> ActivityState:
        return self._state

    @state.setter
    def state(self, value: ActivityState) -> None:
        old = self._state
        if value is old:
            return
        self._state = value
        owner = self.owner
        if owner is not None:
            if value is ActivityState.TERMINATED:
                owner._live -= 1
            elif old is ActivityState.TERMINATED:
                owner._live += 1

    @property
    def name(self) -> str:
        return self.activity.name

    @property
    def executed(self) -> bool:
        """Terminated by actually running (not by dead-path)."""
        return self.state is ActivityState.TERMINATED and not self.dead

    def all_incoming_evaluated(self) -> bool:
        return all(v is not None for v in self.incoming.values())

    def any_incoming_true(self) -> bool:
        return any(v is True for v in self.incoming.values())

    def all_incoming_true(self) -> bool:
        return all(v is True for v in self.incoming.values())

    def start_condition_met(self) -> bool:
        if self.activity.start_condition is StartCondition.ANY:
            return self.any_incoming_true()
        return self.all_incoming_evaluated() and self.all_incoming_true()

    def start_condition_dead(self) -> bool:
        """True when the start condition can never become true."""
        if self.activity.start_condition is StartCondition.ANY:
            return self.all_incoming_evaluated() and not self.any_incoming_true()
        return any(v is False for v in self.incoming.values())


class ProcessInstance:
    """Run-time state of one process execution."""

    def __init__(
        self,
        instance_id: str,
        definition: ProcessDefinition,
        *,
        starter: str = "",
        parent_instance: str = "",
        parent_activity: str = "",
        plan: "NavigationPlan | None" = None,
    ):
        self.instance_id = instance_id
        self.definition = definition
        self.state = ProcessState.RUNNING
        self.starter = starter
        self.parent_instance = parent_instance
        self.parent_activity = parent_activity
        #: compiled navigation plan (set by the navigator; direct
        #: constructions — unit tests — carry None and fall back to
        #: definition queries)
        self.plan = plan
        self.activities: dict[str, ActivityInstance] = {}
        #: count of activities not yet TERMINATED, maintained by the
        #: ActivityInstance.state setter
        self._live = len(definition.activities)
        if plan is not None:
            self.input = plan.process_input_container()
            self.output = plan.process_output_container()
            incoming_keys = plan.incoming_keys
            for name, activity in definition.activities.items():
                ai = ActivityInstance(activity, owner=self)
                ai.incoming = dict.fromkeys(incoming_keys[name])
                self.activities[name] = ai
        else:
            self.input = Container(definition.input_spec, definition.types)
            # Process output containers carry a return code so blocks can
            # expose one to the enclosing level (as Figure 2's RC_FB does).
            self.output = Container(
                definition.output_spec, definition.types, output=True
            )
            for name, activity in definition.activities.items():
                ai = ActivityInstance(activity, owner=self)
                for connector in definition.incoming(name):
                    ai.incoming[
                        connector_key(connector.source, connector.target)
                    ] = None
                self.activities[name] = ai

    def activity(self, name: str) -> ActivityInstance:
        try:
            return self.activities[name]
        except KeyError:
            raise NavigationError(
                "instance %s has no activity %r" % (self.instance_id, name)
            ) from None

    @property
    def is_root(self) -> bool:
        return not self.parent_instance

    def all_terminated(self) -> bool:
        """O(1): the live counter is maintained on every activity state
        transition into/out of TERMINATED."""
        return self._live == 0

    def states(self) -> dict[str, str]:
        """activity -> state string (with dead-path marked)."""
        out: dict[str, str] = {}
        for name, ai in self.activities.items():
            out[name] = "dead" if ai.dead else ai.state.value
        return out

    def __repr__(self) -> str:
        return "ProcessInstance(%s, %s, %s)" % (
            self.instance_id,
            self.definition.name,
            self.state.value,
        )
