"""Run-time instances of processes and activities.

State machine (§3.2): an activity is *ready*, *running*, *finished*
(execution completed) or *terminated* (execution completed and the exit
condition held).  We add *waiting* for activities whose start condition
is not yet decided, and flag dead-path terminations with ``dead`` —
the paper folds those into "terminated" but the distinction is what the
experiments assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import NavigationError
from repro.wfms.containers import Container
from repro.wfms.model import Activity, ProcessDefinition, StartCondition


class ActivityState(Enum):
    WAITING = "waiting"
    READY = "ready"
    RUNNING = "running"
    FINISHED = "finished"
    TERMINATED = "terminated"


class ProcessState(Enum):
    RUNNING = "running"
    SUSPENDED = "suspended"
    FINISHED = "finished"


def connector_key(source: str, target: str) -> str:
    return "%s->%s" % (source, target)


@dataclass
class ActivityInstance:
    """Run-time state of one activity within one process instance."""

    activity: Activity
    state: ActivityState = ActivityState.WAITING
    dead: bool = False
    attempt: int = 0              # how many times execution started
    input: Container | None = None
    output: Container | None = None
    #: connector key -> evaluated truth value (None = not yet evaluated)
    incoming: dict[str, bool | None] = field(default_factory=dict)
    claimed_by: str = ""
    forced: bool = False
    #: instance id of the currently running child (BLOCK/PROCESS kinds)
    child_instance: str = ""

    @property
    def name(self) -> str:
        return self.activity.name

    @property
    def executed(self) -> bool:
        """Terminated by actually running (not by dead-path)."""
        return self.state is ActivityState.TERMINATED and not self.dead

    def all_incoming_evaluated(self) -> bool:
        return all(v is not None for v in self.incoming.values())

    def any_incoming_true(self) -> bool:
        return any(v is True for v in self.incoming.values())

    def all_incoming_true(self) -> bool:
        return all(v is True for v in self.incoming.values())

    def start_condition_met(self) -> bool:
        if self.activity.start_condition is StartCondition.ANY:
            return self.any_incoming_true()
        return self.all_incoming_evaluated() and self.all_incoming_true()

    def start_condition_dead(self) -> bool:
        """True when the start condition can never become true."""
        if self.activity.start_condition is StartCondition.ANY:
            return self.all_incoming_evaluated() and not self.any_incoming_true()
        return any(v is False for v in self.incoming.values())


class ProcessInstance:
    """Run-time state of one process execution."""

    def __init__(
        self,
        instance_id: str,
        definition: ProcessDefinition,
        *,
        starter: str = "",
        parent_instance: str = "",
        parent_activity: str = "",
    ):
        self.instance_id = instance_id
        self.definition = definition
        self.state = ProcessState.RUNNING
        self.starter = starter
        self.parent_instance = parent_instance
        self.parent_activity = parent_activity
        self.input = Container(definition.input_spec, definition.types)
        # Process output containers carry a return code so blocks can
        # expose one to the enclosing level (as Figure 2's RC_FB does).
        self.output = Container(
            definition.output_spec, definition.types, output=True
        )
        self.activities: dict[str, ActivityInstance] = {}
        for name, activity in definition.activities.items():
            ai = ActivityInstance(activity)
            for connector in definition.incoming(name):
                ai.incoming[connector_key(connector.source, connector.target)] = None
            self.activities[name] = ai

    def activity(self, name: str) -> ActivityInstance:
        try:
            return self.activities[name]
        except KeyError:
            raise NavigationError(
                "instance %s has no activity %r" % (self.instance_id, name)
            ) from None

    @property
    def is_root(self) -> bool:
        return not self.parent_instance

    def all_terminated(self) -> bool:
        return all(
            ai.state is ActivityState.TERMINATED
            for ai in self.activities.values()
        )

    def states(self) -> dict[str, str]:
        """activity -> state string (with dead-path marked)."""
        out: dict[str, str] = {}
        for name, ai in self.activities.items():
            out[name] = "dead" if ai.dead else ai.state.value
        return out

    def __repr__(self) -> str:
        return "ProcessInstance(%s, %s, %s)" % (
            self.instance_id,
            self.definition.name,
            self.state.value,
        )
