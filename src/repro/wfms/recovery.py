"""Forward recovery (§3.3).

"In case of failures, the process execution will stop.  Once the
failures have been repaired, the process execution is resumed from the
point where the failure occurred."

Recovery replays the journal's recorded decisions through a fresh
navigator: process starts are re-issued with their recorded inputs and
instance ids, and each activity execution consumes its recorded output
instead of invoking the program.  Navigation is deterministic, so the
replayed state is exactly the pre-crash state; work that had started
but produced no durable completion record is rescheduled "from the
beginning", as the paper prescribes for non-failure-atomic activities.

Replay drives the same heap-based ready queue as live execution:
recorded completions are keyed by ``(instance, activity, attempt)``
(order-insensitive), and interrupted work is deferred during replay
and re-enqueued afterwards in discovery order, so the post-recovery
dispatch order is the (priority, arrival) order the live engine would
have used.

Under group commit (``journal_sync="batch"``) the durable journal may
end one batch earlier than the pre-crash engine's volatile memory: a
hard crash loses at most the unflushed suffix.  Replay only ever sees
durable records, so the recovered state is a consistent prefix of the
pre-crash execution and the lost suffix is simply re-executed — the
same rule the paper prescribes for interrupted activities.  The
default ``"always"`` policy fsyncs per record and loses nothing.
Navigation during replay also runs on compiled navigation plans; the
plan cache is rebuilt from the re-registered definitions, so replay
never depends on pre-crash volatile state.
"""

from __future__ import annotations

import re
from typing import Any

from repro.errors import RecoveryError
from repro.store.snapshot import restore_state
from repro.wfms.instance import ProcessState
from repro.wfms.journal import ReplayCursor
from repro.wfms.navigator import Navigator

_ROOT_ID = re.compile(r"^pi-(\d+)$")


def replay(navigator: Navigator, records: list[dict[str, Any]]) -> int:
    """Replay journal ``records`` into ``navigator``.

    Returns the number of activity completions consumed.  After replay
    the navigator holds every pre-crash instance: finished ones are
    finished, interrupted ones are RUNNING with their next activities
    ready, suspended ones are suspended.
    """
    cursor = ReplayCursor(records)
    total = cursor.pending()
    # The replay span joins no prior trace: it is the recovery run
    # itself.  Each replayed instance re-enters its *own* pre-crash
    # trace via the linkage stored in its process_started record.
    span = navigator.obs.tracer.start_span(
        "recovery.replay",
        kind="recovery",
        attributes={"records": len(records), "completions": total},
    )
    navigator.begin_replay(cursor)
    try:
        highest = 0
        for start in cursor.process_starts:
            match = _ROOT_ID.match(start["instance"])
            if match:
                highest = max(highest, int(match.group(1)))
        navigator.set_sequence(highest)
        for start in cursor.process_starts:
            if start.get("parent_instance"):
                continue  # child instances are re-created by their parents
            navigator.start_process(
                start["definition"],
                start.get("input", {}),
                starter=start.get("starter", ""),
                instance_id=start["instance"],
                version=start.get("version"),
                trace_parent=start.get("trace"),
            )
            navigator.run()
        if cursor.pending():
            raise RecoveryError(
                "%d journal completions were never consumed; the journal "
                "does not match the registered definitions" % cursor.pending()
            )
        for instance_id in sorted(cursor.suspended):
            instance = navigator.instance(instance_id)
            if instance.state is ProcessState.RUNNING:
                navigator.suspend(instance_id)
    finally:
        navigator.end_replay()
        replayed = total - cursor.pending()
        span.set_attribute("replayed", replayed)
        span.finish()
    return replayed


def replay_with_store(navigator: Navigator, store) -> int:
    """Checkpointed recovery: restore the latest durable snapshot and
    replay only the journal suffix past its covered offset.

    Equivalence to a full replay rests on three facts (DESIGN.md §11):
    the snapshot *is* the state full replay of records ``[0, offset)``
    produces (navigation is deterministic and the snapshot was taken
    from exactly that navigator state); the suffix is replayed by the
    very same mechanism full replay uses; and archived instances —
    whose records the cursor skips — are finished, so no live record
    can reference them.  A torn or corrupt newest snapshot falls back
    to the previous one with a longer suffix: strictly more replay,
    never different state.

    Returns the number of activity completions consumed, and leaves a
    summary in ``store.last_recovery``.
    """
    checkpoint, skipped = store.latest_checkpoint()
    journal = store.journal
    if checkpoint is not None:
        suffix = journal.suffix(checkpoint.offset)
        offset = checkpoint.offset
    else:
        suffix = journal.records()
        offset = 0
    archived = store.archive.ids()
    cursor = ReplayCursor(suffix, archived=archived)
    total = cursor.pending()
    span = navigator.obs.tracer.start_span(
        "recovery.replay",
        kind="recovery",
        attributes={
            "records": len(suffix),
            "completions": total,
            "checkpointed": checkpoint is not None,
        },
    )
    navigator.begin_replay(cursor)
    restored = 0
    try:
        if checkpoint is not None:
            # Archive wins: an instance captured live in the snapshot
            # may have finished *and archived* within the suffix — its
            # suffix records are skipped (cursor), so restoring the
            # stale live copy would strand it mid-flight and shadow
            # the archived outcome.  Drop it from the restore set.
            state = checkpoint.state
            if archived:
                live = [
                    saved
                    for saved in state["instances"]
                    if saved["instance"] not in archived
                ]
                if len(live) != len(state["instances"]):
                    state = dict(state)
                    state["instances"] = live
                    state["audit"] = [
                        record
                        for record in state["audit"]
                        if record["instance_id"] not in archived
                    ]
            restored = restore_state(navigator, state)
            navigator.requeue_after_restore(cursor)
        highest = checkpoint.sequence if checkpoint is not None else 0
        for start in cursor.process_starts:
            match = _ROOT_ID.match(start["instance"])
            if match:
                highest = max(highest, int(match.group(1)))
        # Roots that started *and* archived within the suffix have no
        # surviving process_started record (the cursor skips them), so
        # the archive must also advance the id sequence or a fresh
        # start_process could reuse an archived root's id.
        for instance_id in archived:
            match = _ROOT_ID.match(instance_id)
            if match:
                highest = max(highest, int(match.group(1)))
        navigator.set_sequence(highest)
        for start in cursor.process_starts:
            if start.get("parent_instance"):
                continue  # child instances are re-created by their parents
            navigator.start_process(
                start["definition"],
                start.get("input", {}),
                starter=start.get("starter", ""),
                instance_id=start["instance"],
                version=start.get("version"),
                trace_parent=start.get("trace"),
            )
            navigator.run()
        # Restored instances may have suffix completions to consume
        # even when the suffix starts no new roots.
        navigator.run()
        if cursor.pending():
            raise RecoveryError(
                "%d journal completions were never consumed; the journal "
                "does not match the registered definitions" % cursor.pending()
            )
        for instance_id in sorted(cursor.suspended):
            instance = navigator.instance(instance_id)
            if instance.state is ProcessState.RUNNING:
                navigator.suspend(instance_id)
    finally:
        navigator.end_replay()
        replayed = total - cursor.pending()
        span.set_attribute("replayed", replayed)
        span.finish()
    store.last_recovery = {
        "checkpoint": checkpoint.path if checkpoint is not None else None,
        "offset": offset,
        "skipped_checkpoints": skipped,
        "suffix_records": len(suffix),
        "archived_skipped": len(archived),
        "restored_instances": restored,
        "replayed": replayed,
    }
    return replayed
