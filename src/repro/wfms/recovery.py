"""Forward recovery (§3.3).

"In case of failures, the process execution will stop.  Once the
failures have been repaired, the process execution is resumed from the
point where the failure occurred."

Recovery replays the journal's recorded decisions through a fresh
navigator: process starts are re-issued with their recorded inputs and
instance ids, and each activity execution consumes its recorded output
instead of invoking the program.  Navigation is deterministic, so the
replayed state is exactly the pre-crash state; work that had started
but produced no durable completion record is rescheduled "from the
beginning", as the paper prescribes for non-failure-atomic activities.

Replay drives the same heap-based ready queue as live execution:
recorded completions are keyed by ``(instance, activity, attempt)``
(order-insensitive), and interrupted work is deferred during replay
and re-enqueued afterwards in discovery order, so the post-recovery
dispatch order is the (priority, arrival) order the live engine would
have used.

Under group commit (``journal_sync="batch"``) the durable journal may
end one batch earlier than the pre-crash engine's volatile memory: a
hard crash loses at most the unflushed suffix.  Replay only ever sees
durable records, so the recovered state is a consistent prefix of the
pre-crash execution and the lost suffix is simply re-executed — the
same rule the paper prescribes for interrupted activities.  The
default ``"always"`` policy fsyncs per record and loses nothing.
Navigation during replay also runs on compiled navigation plans; the
plan cache is rebuilt from the re-registered definitions, so replay
never depends on pre-crash volatile state.
"""

from __future__ import annotations

import re
from typing import Any

from repro.errors import RecoveryError
from repro.wfms.instance import ProcessState
from repro.wfms.journal import ReplayCursor
from repro.wfms.navigator import Navigator

_ROOT_ID = re.compile(r"^pi-(\d+)$")


def replay(navigator: Navigator, records: list[dict[str, Any]]) -> int:
    """Replay journal ``records`` into ``navigator``.

    Returns the number of activity completions consumed.  After replay
    the navigator holds every pre-crash instance: finished ones are
    finished, interrupted ones are RUNNING with their next activities
    ready, suspended ones are suspended.
    """
    cursor = ReplayCursor(records)
    total = cursor.pending()
    # The replay span joins no prior trace: it is the recovery run
    # itself.  Each replayed instance re-enters its *own* pre-crash
    # trace via the linkage stored in its process_started record.
    span = navigator.obs.tracer.start_span(
        "recovery.replay",
        kind="recovery",
        attributes={"records": len(records), "completions": total},
    )
    navigator.begin_replay(cursor)
    try:
        highest = 0
        for start in cursor.process_starts:
            match = _ROOT_ID.match(start["instance"])
            if match:
                highest = max(highest, int(match.group(1)))
        navigator.set_sequence(highest)
        for start in cursor.process_starts:
            if start.get("parent_instance"):
                continue  # child instances are re-created by their parents
            navigator.start_process(
                start["definition"],
                start.get("input", {}),
                starter=start.get("starter", ""),
                instance_id=start["instance"],
                version=start.get("version"),
                trace_parent=start.get("trace"),
            )
            navigator.run()
        if cursor.pending():
            raise RecoveryError(
                "%d journal completions were never consumed; the journal "
                "does not match the registered definitions" % cursor.pending()
            )
        for instance_id in sorted(cursor.suspended):
            instance = navigator.instance(instance_id)
            if instance.state is ProcessState.RUNNING:
                navigator.suspend(instance_id)
    finally:
        navigator.end_replay()
        replayed = total - cursor.pending()
        span.set_attribute("replayed", replayed)
        span.finish()
    return replayed
