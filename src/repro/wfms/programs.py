"""Program registration and invocation (§3.3).

FlowMark executes *registered* programs: "once a program is registered
it can be invoked from any activity.  An API interface is provided so
the programs can access the data containers."  Here a program is any
callable with the signature::

    def program(ctx: InvocationContext) -> int | None

``ctx`` exposes the activity's input and output containers; the return
value (default 0) becomes the predefined ``_RC`` member of the output
container, which transition and exit conditions read.

Programs are deliberately *autonomous*: the engine does not interpret
exceptions as aborts — a raising program is a failed invocation
(:class:`ProgramError`), while a subtransaction that aborts reports it
through its return code, exactly as the paper prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

from repro.errors import ProgramError
from repro.wfms.containers import Container


@dataclass
class InvocationContext:
    """What a program sees when invoked (the FlowMark API surface)."""

    activity: str
    process: str
    instance_id: str
    input: Container
    output: Container
    user: str = ""
    attempt: int = 1
    #: Free-form per-engine services (e.g. the transactional substrate).
    services: dict[str, Any] = field(default_factory=dict)

    def get_input(self, path: str) -> Any:
        return self.input.get(path)

    def set_output(self, path: str, value: Any) -> None:
        self.output.set(path, value)


class Program(Protocol):
    def __call__(self, ctx: InvocationContext) -> int | None: ...


@dataclass
class RegisteredProgram:
    name: str
    callable: Program
    description: str = ""
    #: Whether the external application is failure-atomic.  Non-atomic
    #: programs may have partially executed when a crash interrupts
    #: them (§3.3); the recovery tests use this flag.
    failure_atomic: bool = True


class ProgramRegistry:
    """Name → program mapping shared by an engine."""

    def __init__(self) -> None:
        self._programs: dict[str, RegisteredProgram] = {}

    def register(
        self,
        name: str,
        program: Program,
        description: str = "",
        *,
        failure_atomic: bool = True,
        replace: bool = False,
    ) -> RegisteredProgram:
        if not name:
            raise ProgramError("program name must be non-empty")
        if name in self._programs and not replace:
            raise ProgramError("program %r is already registered" % name)
        registered = RegisteredProgram(name, program, description, failure_atomic)
        self._programs[name] = registered
        return registered

    def get(self, name: str) -> RegisteredProgram:
        try:
            return self._programs[name]
        except KeyError:
            raise ProgramError("program %r is not registered" % name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._programs

    def names(self) -> list[str]:
        return sorted(self._programs)

    def invoke(self, name: str, ctx: InvocationContext) -> int:
        """Invoke ``name``; returns (and stores) the return code."""
        registered = self.get(name)
        try:
            result = registered.callable(ctx)
        except Exception as exc:  # program bug, not a modelled abort
            raise ProgramError(
                "program %r raised %s: %s" % (name, type(exc).__name__, exc)
            ) from exc
        return_code = 0 if result is None else int(result)
        ctx.output.return_code = return_code
        return return_code


def program_from_callable(
    func: Callable[..., int | None]
) -> Program:
    """Adapt a zero-argument or ctx-taking callable into a Program.

    Lets tests register ``lambda: 0`` without boilerplate.
    """
    import inspect

    takes_ctx = bool(inspect.signature(func).parameters)

    def adapter(ctx: InvocationContext) -> int | None:
        return func(ctx) if takes_ctx else func()

    return adapter


def null_program(ctx: InvocationContext) -> int:
    """The NOP activity body used by the saga compensation trigger."""
    return 0
