"""Spans: causally linked timing records across the engine.

A *span* covers one unit of engine work — a process instance, one
activity invocation attempt, a journal group commit, a recovery
replay.  Spans carry a ``trace_id`` shared by everything caused by the
same root request and a ``parent_id`` pointing at the span that caused
them, so a block activity's child instance hangs under the block's
activity span, and a distributed request/reply chain is **one trace**
spanning several nodes (the context travels in
:class:`~repro.wfms.messaging.MessageBus` headers; see
:meth:`Tracer.inject` / :meth:`Tracer.extract`).

Ids are deterministic counters, not random: ``t<T>-<n>`` for traces
and ``s<T>-<n>`` for spans, where ``<T>`` is a per-process tracer
number.  Determinism keeps tests exact; the tracer number keeps ids
from colliding when several engines (distributed nodes) participate
in one trace.

:class:`NullTracer` is the disabled twin: ``enabled`` is False,
``start_span`` returns the shared no-op :data:`NULL_SPAN`, ``inject``
returns ``{}`` and ``extract`` returns ``None`` — instrumented code
guards bulk work behind one ``tracer.enabled`` attribute read.
"""

from __future__ import annotations

import itertools
import time
from typing import Any, NamedTuple

#: Distinguishes tracers within one process so trace/span ids from
#: different engines never collide inside a shared (distributed) trace.
_TRACER_NUMBERS = itertools.count(1)

#: Header keys used for cross-node propagation.
TRACE_ID_HEADER = "trace_id"
PARENT_SPAN_HEADER = "parent_span_id"


class SpanContext(NamedTuple):
    """The portable part of a span: enough to parent remote work."""

    trace_id: str
    span_id: str


class Span:
    """One timed, attributed unit of work."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "kind",
        "start",
        "end",
        "attributes",
        "status",
    )

    is_recording = True

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: str,
        name: str,
        kind: str = "",
        attributes: dict[str, Any] | None = None,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.start = time.perf_counter()
        self.end: float | None = None
        self.attributes: dict[str, Any] = dict(attributes or {})
        self.status = "ok"

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Seconds from start to finish (to *now* while still open)."""
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def finish(self, status: str = "") -> None:
        """Idempotent: the first finish wins."""
        if self.end is None:
            self.end = time.perf_counter()
            if status:
                self.status = status

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "duration": self.duration if self.end is not None else None,
            "status": self.status,
            "attributes": dict(self.attributes),
        }


class NullSpan:
    """The shared do-nothing span."""

    __slots__ = ()

    is_recording = False
    trace_id = ""
    span_id = ""
    parent_id = ""
    name = ""
    kind = ""
    status = "ok"
    attributes: dict[str, Any] = {}
    finished = True
    duration = 0.0

    @property
    def context(self) -> SpanContext:
        return SpanContext("", "")

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def finish(self, status: str = "") -> None:
        pass

    def to_dict(self) -> dict[str, Any]:
        return {}


#: Singleton handed out by :class:`NullTracer`.
NULL_SPAN = NullSpan()


class Tracer:
    """Creates and retains spans for one engine.

    Retention is a bounded ring: once ``max_spans`` *finished* spans
    accumulate, the oldest finished spans are dropped (open spans are
    never dropped — they are still being worked on)."""

    enabled = True

    def __init__(self, max_spans: int = 50_000):
        self._number = next(_TRACER_NUMBERS)
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self._spans: list[Span] = []
        self._max_spans = max(16, int(max_spans))

    def new_trace_id(self) -> str:
        return "t%d-%06d" % (self._number, next(self._trace_ids))

    def start_span(
        self,
        name: str,
        *,
        parent: "Span | SpanContext | None" = None,
        trace_id: str = "",
        kind: str = "",
        attributes: dict[str, Any] | None = None,
    ) -> Span:
        """Open a span.  ``parent`` links causally (and fixes the trace
        id); an explicit ``trace_id`` joins an existing trace without a
        local parent; with neither, a fresh trace begins."""
        parent_id = ""
        if parent is not None:
            parent_id = parent.span_id
            trace_id = parent.trace_id or trace_id
        if not trace_id:
            trace_id = self.new_trace_id()
        span = Span(
            trace_id,
            "s%d-%06d" % (self._number, next(self._span_ids)),
            parent_id,
            name,
            kind,
            attributes,
        )
        self._spans.append(span)
        if len(self._spans) > self._max_spans:
            self._evict()
        return span

    def _evict(self) -> None:
        keep_from = len(self._spans) - self._max_spans
        kept = [s for s in self._spans[:keep_from] if not s.finished]
        self._spans = kept + self._spans[keep_from:]

    # -- queries ---------------------------------------------------------

    def spans(
        self, *, trace_id: str | None = None, name: str | None = None
    ) -> list[Span]:
        out = []
        for span in self._spans:
            if trace_id is not None and span.trace_id != trace_id:
                continue
            if name is not None and span.name != name:
                continue
            out.append(span)
        return out

    def open_spans(self) -> list[Span]:
        return [s for s in self._spans if not s.finished]

    def trace_ids(self) -> list[str]:
        seen: dict[str, None] = {}
        for span in self._spans:
            seen.setdefault(span.trace_id)
        return list(seen)

    def export(self) -> list[dict[str, Any]]:
        return [span.to_dict() for span in self._spans]

    # -- cross-node propagation ------------------------------------------

    def inject(self, span: "Span | NullSpan") -> dict[str, str]:
        """Headers carrying ``span``'s context to another node."""
        if not span.is_recording:
            return {}
        return {
            TRACE_ID_HEADER: span.trace_id,
            PARENT_SPAN_HEADER: span.span_id,
        }

    def extract(self, headers: dict[str, str] | None) -> SpanContext | None:
        """The remote context in ``headers``, if any."""
        if not headers:
            return None
        trace_id = headers.get(TRACE_ID_HEADER, "")
        if not trace_id:
            return None
        return SpanContext(trace_id, headers.get(PARENT_SPAN_HEADER, ""))


class NullTracer:
    """The disabled tracer: one attribute read tells hot paths to skip
    all span bookkeeping; every product is a shared no-op."""

    enabled = False

    def new_trace_id(self) -> str:
        return ""

    def start_span(self, name, **kwargs) -> NullSpan:
        return NULL_SPAN

    def spans(self, **kwargs) -> list[Span]:
        return []

    def open_spans(self) -> list[Span]:
        return []

    def trace_ids(self) -> list[str]:
        return []

    def export(self) -> list[dict[str, Any]]:
        return []

    def inject(self, span) -> dict[str, str]:
        return {}

    def extract(self, headers) -> None:
        return None
