"""Metrics: labeled counters, gauges and fixed-bucket histograms.

The paper's §3.3 lists *monitoring* and *accounting* among the
features a WFMS adds over a bare transaction model.  The
:class:`~repro.wfms.audit.AuditTrail` is the correctness ground truth
— every record matters and is queryable — whereas metrics are cheap
aggregates meant to be scraped continuously: a counter is one float,
not a record per event.

Instruments follow the Prometheus data model:

* :class:`Counter` — monotonically increasing float,
* :class:`Gauge` — float that can go up and down,
* :class:`Histogram` — fixed cumulative buckets plus sum and count.

Each instrument is created once via the :class:`MetricsRegistry` and
may declare label *names*; ``labels(*values)`` returns a cached child
bound to those values, so hot paths hold a direct reference and pay
one method call per update.

**Zero overhead when off**: :class:`NullRegistry` returns the shared
:data:`NULL_INSTRUMENT` from every factory method.  All its mutators
(``inc``/``dec``/``set``/``observe``/``labels``) are no-ops, so
instrumented code keeps its cached instrument references and the
disabled path costs a single attribute call per site.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any

from repro.errors import ObservabilityError

#: Default histogram buckets (seconds), Prometheus-style upper bounds.
DEFAULT_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class _Instrument:
    """Common machinery: identity, label names, cached children."""

    kind = "untyped"

    __slots__ = ("name", "help", "label_names", "_children")

    def __init__(self, name: str, help_text: str, label_names: tuple[str, ...]):
        self.name = name
        self.help = help_text
        self.label_names = label_names
        #: label values tuple -> child instrument
        self._children: dict[tuple[str, ...], Any] = {}

    def labels(self, *values: Any) -> Any:
        """The child instrument bound to these label values (cached)."""
        if len(values) != len(self.label_names):
            raise ObservabilityError(
                "instrument %s takes %d label value(s) %r, got %d"
                % (
                    self.name,
                    len(self.label_names),
                    self.label_names,
                    len(values),
                )
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child()
        return child

    def _make_child(self) -> Any:
        raise NotImplementedError

    def _samples(self):
        """(label values, child) pairs; the unlabeled instrument itself
        counts as the empty-label sample when it was ever touched."""
        return sorted(self._children.items())


class Counter(_Instrument):
    """Monotonically increasing value."""

    kind = "counter"

    __slots__ = ("_value",)

    def __init__(
        self,
        name: str = "",
        help_text: str = "",
        label_names: tuple[str, ...] = (),
    ):
        super().__init__(name, help_text, label_names)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError("counters can only increase")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _make_child(self) -> "Counter":
        return Counter()

    def snapshot(self) -> dict[str, Any]:
        samples = [
            {"labels": dict(zip(self.label_names, key)), "value": child._value}
            for key, child in self._samples()
        ]
        if not self.label_names:
            samples = [{"labels": {}, "value": self._value}]
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "samples": samples,
        }


class Gauge(_Instrument):
    """A value that can move in both directions."""

    kind = "gauge"

    __slots__ = ("_value",)

    def __init__(
        self,
        name: str = "",
        help_text: str = "",
        label_names: tuple[str, ...] = (),
    ):
        super().__init__(name, help_text, label_names)
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def _make_child(self) -> "Gauge":
        return Gauge()

    def snapshot(self) -> dict[str, Any]:
        samples = [
            {"labels": dict(zip(self.label_names, key)), "value": child._value}
            for key, child in self._samples()
        ]
        if not self.label_names:
            samples = [{"labels": {}, "value": self._value}]
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "samples": samples,
        }


class Histogram(_Instrument):
    """Fixed cumulative buckets plus sum and count."""

    kind = "histogram"

    __slots__ = ("buckets", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str = "",
        help_text: str = "",
        label_names: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help_text, label_names)
        if not buckets or list(buckets) != sorted(buckets):
            raise ObservabilityError(
                "histogram buckets must be a non-empty ascending sequence"
            )
        self.buckets = tuple(float(b) for b in buckets)
        #: per-bucket counts (non-cumulative; cumulated on snapshot),
        #: one extra slot for the +Inf overflow bucket.
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        self._counts[bisect_left(self.buckets, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1) from the bucket
        counts, linearly interpolated within the covering bucket —
        the Prometheus ``histogram_quantile`` estimate, computed
        locally so the traffic driver can report p50/p99 without an
        external system.  Values beyond the last finite bucket clamp
        to that bucket's upper bound; an empty histogram reports 0.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError("quantile q must be in [0, 1]")
        if self._count == 0:
            return 0.0
        target = q * self._count
        cumulative = 0
        for index, n in enumerate(self._counts):
            if n == 0:
                continue
            if cumulative + n >= target:
                if index >= len(self.buckets):
                    # +Inf overflow bucket: no finite upper bound to
                    # interpolate toward.
                    return self.buckets[-1]
                lower = self.buckets[index - 1] if index else 0.0
                upper = self.buckets[index]
                fraction = (target - cumulative) / n
                return lower + (upper - lower) * fraction
            cumulative += n
        return self.buckets[-1]

    def _make_child(self) -> "Histogram":
        return Histogram(buckets=self.buckets)

    def _one_sample(self, labels: dict[str, str], child) -> dict[str, Any]:
        cumulative = []
        running = 0
        for upper, n in zip(child.buckets, child._counts):
            running += n
            cumulative.append({"le": upper, "count": running})
        return {
            "labels": labels,
            "buckets": cumulative,
            "sum": child._sum,
            "count": child._count,
        }

    def snapshot(self) -> dict[str, Any]:
        samples = [
            self._one_sample(dict(zip(self.label_names, key)), child)
            for key, child in self._samples()
        ]
        if not self.label_names:
            samples = [self._one_sample({}, self)]
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "samples": samples,
        }


class NullInstrument:
    """The shared do-nothing instrument.

    Every mutator is a no-op and ``labels`` returns the instrument
    itself, so code written against a real instrument runs unchanged —
    and nearly free — when observability is disabled.
    """

    __slots__ = ()

    def labels(self, *values: Any) -> "NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    @property
    def value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0


#: Module-level singleton handed out by :class:`NullRegistry`.
NULL_INSTRUMENT = NullInstrument()

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """All instruments of one engine (or one test).

    Factory methods are idempotent: asking for an existing name returns
    the existing instrument, provided kind and label names match
    (mismatch raises :class:`ObservabilityError` — two call sites
    disagreeing about an instrument is a bug worth failing on).
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}

    def _get_or_create(
        self,
        cls,
        name: str,
        help_text: str,
        labels: tuple[str, ...],
        **kwargs: Any,
    ):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls) or existing.label_names != tuple(
                labels
            ):
                raise ObservabilityError(
                    "instrument %r re-registered as %s%r, but it is %s%r"
                    % (
                        name,
                        cls.kind,
                        tuple(labels),
                        existing.kind,
                        existing.label_names,
                    )
                )
            return existing
        instrument = cls(name, help_text, tuple(labels), **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(
        self, name: str, help_text: str = "", labels: tuple[str, ...] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help_text, labels)

    def gauge(
        self, name: str, help_text: str = "", labels: tuple[str, ...] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, labels, buckets=buckets
        )

    def get(self, name: str) -> _Instrument | None:
        return self._instruments.get(name)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def collect(self) -> list[dict[str, Any]]:
        """Snapshot of every instrument, sorted by name (pure data —
        the exporters in :mod:`repro.obs.export` render this)."""
        return [
            self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        ]


class NullRegistry:
    """The disabled registry: every factory returns the shared no-op
    instrument, so the disabled path costs one attribute call."""

    enabled = False

    def counter(self, name, help_text="", labels=()) -> NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name, help_text="", labels=()) -> NullInstrument:
        return NULL_INSTRUMENT

    def histogram(
        self, name, help_text="", labels=(), buckets=DEFAULT_BUCKETS
    ) -> NullInstrument:
        return NULL_INSTRUMENT

    def get(self, name) -> None:
        return None

    def names(self) -> list[str]:
        return []

    def collect(self) -> list[dict[str, Any]]:
        return []
