"""Exporters: JSON snapshots and Prometheus text format.

Both exporters work on *pure data* — the output of
``MetricsRegistry.collect()`` and ``Tracer.export()`` — so a snapshot
written by one process (``write_snapshot``) can be rendered by
another (``repro/tools/monitor.py``) without importing engine state.
"""

from __future__ import annotations

import json
import os
from typing import Any


def metrics_snapshot(metrics) -> list[dict[str, Any]]:
    """``registry.collect()`` (kept as a function for symmetry)."""
    return metrics.collect()


def spans_snapshot(tracer) -> list[dict[str, Any]]:
    return tracer.export()


def engine_snapshot(engine) -> dict[str, Any]:
    """Everything the monitor needs about one engine, as plain data."""
    obs = engine.obs
    return {
        "clock": engine.clock,
        "observability_enabled": obs.enabled,
        "processes": engine.process_list(),
        "metrics": obs.metrics.collect(),
        "spans": obs.tracer.export(),
        "open_spans": len(obs.tracer.open_spans()),
        "hook_failures": [
            {"subscriber": f.subscriber, "error": repr(f.error)}
            for f in obs.hooks.failures
        ],
        "hook_subscriptions": obs.hooks.subscriptions(),
        "store": engine.store_status(),
    }


def write_snapshot(engine, path: str | os.PathLike[str]) -> dict[str, Any]:
    """Dump :func:`engine_snapshot` as JSON; returns the snapshot."""
    snapshot = engine_snapshot(engine)
    with open(os.fspath(path), "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return snapshot


# ---------------------------------------------------------------------------
# Prometheus text format
# ---------------------------------------------------------------------------

def _format_labels(labels: dict[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        '%s="%s"' % (key, _escape_label(str(value)))
        for key, value in sorted(labels.items())
    )
    return "{%s}" % inner


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == int(value):
        return "%d" % int(value)
    return repr(value)


def to_prometheus_text(metrics) -> str:
    """Render a registry (or a ``collect()`` list) as Prometheus
    exposition text."""
    families = metrics if isinstance(metrics, list) else metrics.collect()
    lines: list[str] = []
    for family in families:
        name = family["name"]
        if family.get("help"):
            lines.append("# HELP %s %s" % (name, family["help"]))
        lines.append("# TYPE %s %s" % (name, family["type"]))
        for sample in family["samples"]:
            labels = sample.get("labels", {})
            if family["type"] == "histogram":
                for bucket in sample["buckets"]:
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(bucket["le"])
                    lines.append(
                        "%s_bucket%s %d"
                        % (name, _format_labels(bucket_labels), bucket["count"])
                    )
                inf_labels = dict(labels)
                inf_labels["le"] = "+Inf"
                lines.append(
                    "%s_bucket%s %d"
                    % (name, _format_labels(inf_labels), sample["count"])
                )
                lines.append(
                    "%s_sum%s %s"
                    % (name, _format_labels(labels), repr(sample["sum"]))
                )
                lines.append(
                    "%s_count%s %d"
                    % (name, _format_labels(labels), sample["count"])
                )
            else:
                lines.append(
                    "%s%s %s"
                    % (
                        name,
                        _format_labels(labels),
                        _format_value(sample["value"]),
                    )
                )
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# span tree rendering (shared by the example and the monitor tool)
# ---------------------------------------------------------------------------

def span_tree_lines(spans: list[dict[str, Any]]) -> list[str]:
    """Render exported spans as one indented tree line per span,
    grouped by trace, children under parents in start order."""
    by_parent: dict[str, list[dict[str, Any]]] = {}
    by_id = {span["span_id"]: span for span in spans}
    roots: list[dict[str, Any]] = []
    for span in spans:
        parent = span.get("parent_id", "")
        if parent and parent in by_id:
            by_parent.setdefault(parent, []).append(span)
        else:
            roots.append(span)

    lines: list[str] = []

    def walk(span: dict[str, Any], depth: int) -> None:
        duration = span.get("duration")
        took = "%.3fms" % (duration * 1e3) if duration is not None else "open"
        label = span["name"]
        if span.get("kind"):
            label += " [%s]" % span["kind"]
        lines.append(
            "%s%s  (%s, trace=%s, span=%s)"
            % ("  " * depth, label, took, span["trace_id"], span["span_id"])
        )
        for child in sorted(
            by_parent.get(span["span_id"], ()), key=lambda s: s["start"]
        ):
            walk(child, depth + 1)

    for root in sorted(roots, key=lambda s: (s["trace_id"], s["start"])):
        walk(root, 0)
    return lines
