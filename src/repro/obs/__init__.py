"""Observability: metrics, spans and event hooks for the engine.

§3.3 of the paper lists monitoring among the features a WFMS adds
over a bare advanced transaction model; a production engine serving
real traffic is unoperatable without it.  This package supplies three
complementary signals, kept deliberately separate from the
:class:`~repro.wfms.audit.AuditTrail` (which is *correctness ground
truth*, not telemetry — see DESIGN.md §9):

* :mod:`repro.obs.metrics` — cheap labeled aggregates (counters,
  gauges, histograms) for dashboards and alerting,
* :mod:`repro.obs.tracing` — spans with parent links for latency
  analysis, including cross-node traces over the message bus,
* :mod:`repro.obs.events` — typed hooks observers subscribe to.

Everything hangs off one :class:`Observability` handle.  The engine
default is the shared :data:`DISABLED` handle whose components are
all null objects — the **zero-overhead-when-off guarantee**: the
disabled hot path costs one attribute call (or one cached no-op
method call) per instrumentation site, gated in CI by
``benchmarks/compare.py`` against ``BENCH_baseline.json``.

Usage::

    from repro.wfms.engine import Engine

    engine = Engine(observability=True)
    engine.run_process("Order")
    print(engine.obs.metrics.counter("wfms_activities_dispatched_total").value)
    for span in engine.obs.tracer.spans():
        print(span.name, span.duration)
"""

from __future__ import annotations

from repro.obs.events import (
    ActivityCompleted,
    ActivityEscalated,
    BreakerTransition,
    EngineCrashed,
    EngineRecovered,
    FlowStepExecuted,
    FlowStepReplayed,
    HookBus,
    HookFailure,
    JournalSynced,
    MessageDeadLettered,
    NavigatorDispatched,
    NullHookBus,
    ProcessFinished,
    RequestTimedOut,
    RetryScheduled,
    WorklistTransition,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullInstrument,
    NullRegistry,
    NULL_INSTRUMENT,
)
from repro.obs.tracing import (
    NULL_SPAN,
    NullSpan,
    NullTracer,
    Span,
    SpanContext,
    Tracer,
)


class Observability:
    """One engine's bundle of metrics, tracer and hook bus.

    ``Observability()`` builds fully enabled components; keyword
    overrides mix real and null parts (e.g. metrics only)::

        Observability(tracer=NullTracer(), hooks=NullHookBus())

    ``enabled`` is True when *any* component is real — hot paths use
    it as the single cheap guard around instrumentation blocks.
    """

    __slots__ = ("metrics", "tracer", "hooks", "enabled")

    def __init__(
        self,
        *,
        metrics: "MetricsRegistry | NullRegistry | None" = None,
        tracer: "Tracer | NullTracer | None" = None,
        hooks: "HookBus | NullHookBus | None" = None,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.hooks = hooks if hooks is not None else HookBus()
        self.enabled = bool(
            self.metrics.enabled or self.tracer.enabled or self.hooks.enabled
        )

    @classmethod
    def disabled(cls) -> "Observability":
        return cls(
            metrics=NullRegistry(), tracer=NullTracer(), hooks=NullHookBus()
        )

    def __repr__(self) -> str:
        return "Observability(enabled=%r)" % self.enabled


#: The shared all-null handle every engine uses by default.
DISABLED = Observability.disabled()


def resolve_observability(
    value: "Observability | bool | None",
) -> Observability:
    """Normalise the ``Engine(observability=...)`` argument.

    ``None``/``False`` → the shared :data:`DISABLED` handle;
    ``True`` → a fresh fully enabled bundle; an :class:`Observability`
    instance passes through (shareable between engines, e.g. the nodes
    of a cluster or an engine rebuilt after a crash).
    """
    if value is None or value is False:
        return DISABLED
    if value is True:
        return Observability()
    if isinstance(value, Observability):
        return value
    raise TypeError(
        "observability must be an Observability, bool or None, not %r"
        % type(value).__name__
    )


__all__ = [
    "ActivityCompleted",
    "ActivityEscalated",
    "BreakerTransition",
    "Counter",
    "DEFAULT_BUCKETS",
    "DISABLED",
    "EngineCrashed",
    "EngineRecovered",
    "FlowStepExecuted",
    "FlowStepReplayed",
    "Gauge",
    "Histogram",
    "HookBus",
    "HookFailure",
    "JournalSynced",
    "MessageDeadLettered",
    "MetricsRegistry",
    "NavigatorDispatched",
    "NullHookBus",
    "NullInstrument",
    "NullRegistry",
    "NullSpan",
    "NullTracer",
    "NULL_INSTRUMENT",
    "NULL_SPAN",
    "Observability",
    "ProcessFinished",
    "RequestTimedOut",
    "RetryScheduled",
    "resolve_observability",
    "Span",
    "SpanContext",
    "Tracer",
    "WorklistTransition",
]
