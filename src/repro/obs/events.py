"""Typed engine event hooks.

Observers subscribe to *event types*; the engine publishes frozen
event dataclasses at well-defined points — navigator dispatch,
worklist transitions, journal group commits, engine crash/recovery.
Hooks are the extension surface (alerting, live dashboards, custom
accounting) that neither the audit trail (ground truth, queried after
the fact) nor metrics (pre-aggregated) provide.

**Isolation semantics**: a subscriber that raises must not corrupt
navigation.  ``publish`` catches the exception, records a
:class:`HookFailure` on ``HookBus.failures`` and logs it through the
``repro.obs`` logger; remaining subscribers still run and the engine
continues.  Observability must never turn into a correctness hazard.

**Zero overhead when off**: publishers guard event construction with
``bus.wants(EventType)`` — on the :class:`NullHookBus` (and on a real
bus with no subscribers for that type) this is one cheap call and no
event object is ever built.  Subscribing on a disabled engine raises
:class:`~repro.errors.ObservabilityError` instead of silently
dropping callbacks.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ObservabilityError

logger = logging.getLogger("repro.obs")


# ---------------------------------------------------------------------------
# event types
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class NavigatorDispatched:
    """An automatic activity was popped off the ready queue."""

    instance_id: str
    activity: str
    attempt: int
    priority: int
    at: float  # engine logical clock


@dataclass(frozen=True)
class ActivityCompleted:
    """An activity finished (program returned / child came back)."""

    instance_id: str
    activity: str
    attempt: int
    return_code: int
    outcome: str  # terminated | rescheduled
    at: float


@dataclass(frozen=True)
class ProcessFinished:
    instance_id: str
    definition: str
    at: float


@dataclass(frozen=True)
class WorklistTransition:
    """A work item changed state (offered/claimed/released/completed/
    withdrawn) or raised a deadline notification ("notified")."""

    item_id: str
    instance_id: str
    activity: str
    transition: str
    user: str
    at: float


@dataclass(frozen=True)
class JournalSynced:
    """A durability point: records were committed (written + fsynced)."""

    records: int
    reason: str  # append | batch_full | batch_interval | flush
    seconds: float


@dataclass(frozen=True)
class EngineCrashed:
    at: float


@dataclass(frozen=True)
class EngineRecovered:
    replayed: int
    at: float


@dataclass(frozen=True)
class RetryScheduled:
    """A failed activity invocation will be retried (resilience)."""

    instance_id: str
    activity: str
    retry: int  # 1-based retry number
    delay: float  # logical-clock backoff before the retry
    error: str
    at: float


@dataclass(frozen=True)
class ActivityEscalated:
    """Retries/timeout exhausted: the activity finished with the
    policy's escalation return code instead of a program result."""

    instance_id: str
    activity: str
    reason: str  # retries_exhausted | timeout
    return_code: int
    at: float


@dataclass(frozen=True)
class RequestTimedOut:
    """A remote activity request exceeded its reply budget."""

    node: str  # requesting node
    remote: str  # node the request was addressed to
    request_id: str
    action: str  # resent | escalated
    at: float


@dataclass(frozen=True)
class BreakerTransition:
    """A per-remote-node circuit breaker changed state."""

    node: str  # node holding the breaker
    remote: str  # guarded remote node
    state: str  # closed | open | half_open
    at: float


@dataclass(frozen=True)
class MessageDeadLettered:
    """A poisoned message was routed to the dead-letter queue."""

    queue: str
    msg_id: str
    reason: str
    deliveries: int


@dataclass(frozen=True)
class FlowStepExecuted:
    """A durable-flow step body ran live (repro.flow)."""

    workflow_uuid: str
    flow: str
    step: str
    function_id: int
    kind: str  # step | transaction
    at: float


@dataclass(frozen=True)
class FlowStepReplayed:
    """A durable-flow step returned its journaled result (no body)."""

    workflow_uuid: str
    flow: str
    step: str
    function_id: int
    mode: str  # loop | resume
    at: float


@dataclass(frozen=True)
class HookFailure:
    """One subscriber exception, isolated and recorded."""

    subscriber: str
    event: Any
    error: Exception = field(compare=False)


# ---------------------------------------------------------------------------
# the bus
# ---------------------------------------------------------------------------

class HookBus:
    """Per-engine subscribe/publish hub, keyed by event type."""

    enabled = True

    def __init__(self) -> None:
        self._subscribers: dict[type, list[Callable[[Any], None]]] = {}
        #: exceptions raised by subscribers, isolated and kept for
        #: inspection (also logged via the ``repro.obs`` logger).
        self.failures: list[HookFailure] = []

    def subscribe(
        self,
        event_type: type,
        callback: Callable[[Any], None] | None = None,
    ) -> Callable[[Any], None]:
        """Register ``callback`` for events of ``event_type``.

        Returns the callback, and with ``callback`` omitted acts as a
        decorator factory: ``@bus.subscribe(ActivityCompleted)``.
        """
        if not isinstance(event_type, type):
            raise ObservabilityError(
                "subscribe takes an event *type*, got %r" % (event_type,)
            )
        if callback is None:
            return lambda fn: self.subscribe(event_type, fn)
        self._subscribers.setdefault(event_type, []).append(callback)
        return callback

    def unsubscribe(
        self, event_type: type, callback: Callable[[Any], None]
    ) -> None:
        bucket = self._subscribers.get(event_type)
        if bucket is None or callback not in bucket:
            raise ObservabilityError(
                "callback was not subscribed to %s" % event_type.__name__
            )
        bucket.remove(callback)
        if not bucket:
            del self._subscribers[event_type]

    def wants(self, event_type: type) -> bool:
        """Whether building an event of this type is worth it."""
        return event_type in self._subscribers

    def publish(self, event: Any) -> None:
        """Deliver to every subscriber; a raising subscriber is
        isolated (recorded + logged), the rest still run."""
        bucket = self._subscribers.get(type(event))
        if not bucket:
            return
        for callback in list(bucket):
            try:
                callback(event)
            except Exception as exc:  # noqa: BLE001 — isolation is the point
                failure = HookFailure(repr(callback), event, exc)
                self.failures.append(failure)
                logger.exception(
                    "observer %s raised on %s; isolated",
                    failure.subscriber,
                    type(event).__name__,
                )

    def subscriptions(self) -> dict[str, int]:
        return {
            event_type.__name__: len(bucket)
            for event_type, bucket in sorted(
                self._subscribers.items(), key=lambda kv: kv[0].__name__
            )
        }


class NullHookBus:
    """The disabled bus: ``wants`` is always False so publishers never
    build events; subscribing is an error, not a silent drop."""

    enabled = False
    failures: list[HookFailure] = []

    def subscribe(self, event_type, callback):
        raise ObservabilityError(
            "cannot subscribe hooks: observability is disabled on this "
            "engine (construct it with observability=True)"
        )

    def unsubscribe(self, event_type, callback) -> None:
        raise ObservabilityError("observability is disabled on this engine")

    def wants(self, event_type) -> bool:
        return False

    def publish(self, event) -> None:
        pass

    def subscriptions(self) -> dict[str, int]:
        return {}
