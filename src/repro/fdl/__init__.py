"""FDL — the FlowMark Definition Language (§5, Figure 5).

Exotica/FMTM emits FDL text; FlowMark's import module parses it,
"checks for inconsistencies in the syntax of the process definition",
and builds the internal representation.  This package reproduces that
stage: a lexer, a recursive-descent parser producing an AST
(:mod:`repro.fdl.ast`), a document validator, an importer turning the
AST into :class:`~repro.wfms.model.ProcessDefinition` objects, and an
exporter serialising definitions back to FDL (round-trip tested).

Dialect summary::

    STRUCTURE 'Address'
      'City': STRING;
      'Zip':  LONG;
    END 'Address'

    PROGRAM 'book_flight'
      DESCRIPTION "books a flight"
    END 'book_flight'

    PROCESS 'Travel'
      INPUT_CONTAINER 'N': LONG; END
      PROGRAM_ACTIVITY 'Book'
        PROGRAM 'book_flight'
        EXIT WHEN "RC = 0"
      END 'Book'
      CONTROL FROM 'Book' TO 'Pay' WHEN "RC = 0"
      DATA FROM SOURCE TO 'Book' MAP 'N' TO 'In'
    END 'Travel'
"""

from repro.fdl.ast import FDLDocument
from repro.fdl.parser import parse_document
from repro.fdl.importer import import_document, import_text
from repro.fdl.exporter import export_definition, export_document

__all__ = [
    "FDLDocument",
    "export_definition",
    "export_document",
    "import_document",
    "import_text",
    "parse_document",
]
