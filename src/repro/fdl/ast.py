"""Abstract syntax tree for FDL documents.

The AST deliberately mirrors the surface syntax rather than the engine
model: the importer (:mod:`repro.fdl.importer`) performs the mapping,
which is where Figure 5's semantic checks live.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MemberNode:
    name: str
    type_name: str          # LONG/FLOAT/STRING/BINARY or a structure name
    is_structure: bool = False
    array_size: int = 0
    line: int = 0


@dataclass
class StructureNode:
    name: str
    members: list[MemberNode] = field(default_factory=list)
    description: str = ""
    line: int = 0


@dataclass
class ProgramNode:
    """A program *declaration* — FlowMark registers programs before
    activities may reference them."""

    name: str
    description: str = ""
    line: int = 0


@dataclass
class StaffNode:
    roles: tuple[str, ...] = ()
    users: tuple[str, ...] = ()
    notify_after: float | None = None
    notify_role: str = ""


@dataclass
class ActivityNode:
    name: str
    kind: str                      # "PROGRAM" | "PROCESS" | "BLOCK"
    program: str = ""              # PROGRAM kind
    subprocess: str = ""           # PROCESS kind
    body: "ProcessBodyNode | None" = None  # BLOCK kind
    description: str = ""
    input_members: list[MemberNode] = field(default_factory=list)
    output_members: list[MemberNode] = field(default_factory=list)
    start_mode: str = "AUTOMATIC"  # "AUTOMATIC" | "MANUAL"
    start_condition: str = "ALL"   # "ALL" | "ANY"
    exit_condition: str = ""
    priority: int = 0
    max_iterations: int = 0
    staff: StaffNode = field(default_factory=StaffNode)
    line: int = 0


@dataclass
class ControlNode:
    source: str
    target: str
    condition: str = ""
    line: int = 0


@dataclass
class DataNode:
    source: str                    # activity name, or "" for SOURCE
    target: str                    # activity name, or "" for SINK
    mappings: list[tuple[str, str]] = field(default_factory=list)
    from_process_input: bool = False
    to_process_output: bool = False
    line: int = 0


@dataclass
class ProcessBodyNode:
    """Shared shape of a PROCESS section and a BLOCK section."""

    input_members: list[MemberNode] = field(default_factory=list)
    output_members: list[MemberNode] = field(default_factory=list)
    activities: list[ActivityNode] = field(default_factory=list)
    controls: list[ControlNode] = field(default_factory=list)
    datas: list[DataNode] = field(default_factory=list)


@dataclass
class ProcessNode:
    name: str
    body: ProcessBodyNode = field(default_factory=ProcessBodyNode)
    description: str = ""
    version: str = "1"
    line: int = 0


@dataclass
class FDLDocument:
    structures: list[StructureNode] = field(default_factory=list)
    programs: list[ProgramNode] = field(default_factory=list)
    processes: list[ProcessNode] = field(default_factory=list)

    def process(self, name: str) -> ProcessNode:
        for node in self.processes:
            if node.name == name:
                return node
        raise KeyError(name)

    def program_names(self) -> set[str]:
        return {node.name for node in self.programs}

    def structure_names(self) -> set[str]:
        return {node.name for node in self.structures}
