"""Document-level semantic validation of parsed FDL.

This is the part of FlowMark's import stage that "checks for
inconsistencies in the syntax of the process definition" beyond pure
grammar: duplicate names, dangling references to programs, structures
and subprocesses, and connector endpoints that name no activity.
Graph-level checks (acyclicity, container member existence) are done by
the engine model when the importer builds real definitions.
"""

from __future__ import annotations

from repro.errors import FDLSemanticError
from repro.fdl.ast import (
    ActivityNode,
    FDLDocument,
    MemberNode,
    ProcessBodyNode,
)

_BASE_TYPES = {"LONG", "FLOAT", "STRING", "BINARY"}


def validate_document(document: FDLDocument) -> None:
    """Raise :class:`FDLSemanticError` on inconsistencies."""
    _check_unique("structure", [s.name for s in document.structures])
    _check_unique("program", [p.name for p in document.programs])
    _check_unique("process", [p.name for p in document.processes])
    structures = document.structure_names()
    for structure in document.structures:
        _check_members(
            "structure %s" % structure.name, structure.members, structures
        )
    programs = document.program_names()
    processes = {p.name for p in document.processes}
    for process in document.processes:
        _check_body(
            "process %s" % process.name,
            process.body,
            structures,
            programs,
            processes,
        )


def _check_unique(what: str, names: list[str]) -> None:
    seen: set[str] = set()
    for name in names:
        if name in seen:
            raise FDLSemanticError("duplicate %s %r" % (what, name))
        seen.add(name)


def _check_members(
    where: str, members: list[MemberNode], structures: set[str]
) -> None:
    seen: set[str] = set()
    for member in members:
        if member.name in seen:
            raise FDLSemanticError(
                "%s: duplicate member %r" % (where, member.name)
            )
        seen.add(member.name)
        if member.is_structure and member.type_name not in structures:
            raise FDLSemanticError(
                "%s: member %r references unknown structure %r"
                % (where, member.name, member.type_name)
            )
        if not member.is_structure and member.type_name not in _BASE_TYPES:
            raise FDLSemanticError(
                "%s: member %r has unknown type %r"
                % (where, member.name, member.type_name)
            )


def _check_body(
    where: str,
    body: ProcessBodyNode,
    structures: set[str],
    programs: set[str],
    processes: set[str],
) -> None:
    _check_unique("activity in %s" % where, [a.name for a in body.activities])
    _check_members(where + " input container", body.input_members, structures)
    _check_members(where + " output container", body.output_members, structures)
    names = {a.name for a in body.activities}
    for activity in body.activities:
        _check_activity(where, activity, structures, programs, processes)
    for control in body.controls:
        for endpoint in (control.source, control.target):
            if endpoint not in names:
                raise FDLSemanticError(
                    "%s: CONTROL references unknown activity %r"
                    % (where, endpoint)
                )
    for data in body.datas:
        if not data.from_process_input and data.source not in names:
            raise FDLSemanticError(
                "%s: DATA references unknown activity %r" % (where, data.source)
            )
        if not data.to_process_output and data.target not in names:
            raise FDLSemanticError(
                "%s: DATA references unknown activity %r" % (where, data.target)
            )


def _check_activity(
    where: str,
    activity: ActivityNode,
    structures: set[str],
    programs: set[str],
    processes: set[str],
) -> None:
    inner = "%s activity %s" % (where, activity.name)
    _check_members(inner + " input container", activity.input_members, structures)
    _check_members(
        inner + " output container", activity.output_members, structures
    )
    if activity.kind == "PROGRAM" and activity.program not in programs:
        raise FDLSemanticError(
            "%s: references undeclared program %r" % (inner, activity.program)
        )
    if activity.kind == "PROCESS" and activity.subprocess not in processes:
        raise FDLSemanticError(
            "%s: references unknown process %r" % (inner, activity.subprocess)
        )
    if activity.kind == "BLOCK":
        assert activity.body is not None
        _check_body(inner, activity.body, structures, programs, processes)
