"""FDL export: engine definitions → FDL text.

The exporter is the inverse of the importer; round-tripping a
definition through ``import_text(export_definition(d))`` reconstructs
an equivalent definition (asserted by the FDL test suite).  Exotica/
FMTM uses it as its back end: translators build
:class:`ProcessDefinition` objects and the pipeline serialises them to
FDL before re-importing, exactly as Figure 5 prescribes.
"""

from __future__ import annotations

from typing import Iterable

from repro.wfms.datatypes import DataType, VariableDecl
from repro.wfms.model import (
    PROCESS_INPUT,
    PROCESS_OUTPUT,
    Activity,
    ActivityKind,
    ProcessDefinition,
    StartCondition,
    StartMode,
)

_INDENT = "  "


def export_document(
    definitions: Iterable[ProcessDefinition],
    program_descriptions: dict[str, str] | None = None,
) -> str:
    """Serialise several definitions (plus the program declarations
    they reference) into one FDL document."""
    definitions = list(definitions)
    lines: list[str] = []
    emitted_structures: set[str] = set()
    for definition in definitions:
        _emit_structures(definition, lines, emitted_structures)
    programs: set[str] = set()
    for definition in definitions:
        programs |= definition.program_names()
    descriptions = program_descriptions or {}
    for name in sorted(programs):
        lines.append("PROGRAM '%s'" % name)
        description = descriptions.get(name, "")
        if description:
            lines.append(_INDENT + 'DESCRIPTION "%s"' % _escape(description))
        lines.append("END '%s'" % name)
        lines.append("")
    for definition in definitions:
        _emit_process(definition, lines)
        lines.append("")
    return "\n".join(lines).strip() + "\n"


def export_definition(definition: ProcessDefinition) -> str:
    """Serialise one definition (and its program declarations)."""
    return export_document([definition])


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _emit_structures(
    definition: ProcessDefinition, lines: list[str], emitted: set[str]
) -> None:
    for name in definition.types.names():
        if name in emitted:
            continue
        emitted.add(name)
        structure = definition.types.get(name)
        lines.append("STRUCTURE '%s'" % name)
        for member in structure.members:
            lines.append(_INDENT + _member_line(member))
        lines.append("END '%s'" % name)
        lines.append("")
    for activity in definition.activities.values():
        if activity.kind is ActivityKind.BLOCK and activity.block is not None:
            _emit_structures(activity.block, lines, emitted)


def _member_line(member: VariableDecl) -> str:
    if member.is_structure:
        type_text = "'%s'" % member.type
    else:
        assert isinstance(member.type, DataType)
        type_text = member.type.value
    if member.is_array:
        type_text += "(%d)" % member.array_size
    return "'%s': %s;" % (member.name, type_text)


def _emit_container(
    keyword: str, spec: list[VariableDecl], lines: list[str], depth: int
) -> None:
    if not spec:
        return
    pad = _INDENT * depth
    lines.append(pad + keyword)
    for member in spec:
        lines.append(pad + _INDENT + _member_line(member))
    lines.append(pad + "END")


def _emit_process(definition: ProcessDefinition, lines: list[str]) -> None:
    lines.append("PROCESS '%s'" % definition.name)
    if definition.description:
        lines.append(
            _INDENT + 'DESCRIPTION "%s"' % _escape(definition.description)
        )
    if definition.version != "1":
        lines.append(_INDENT + "VERSION %s" % definition.version)
    _emit_container("INPUT_CONTAINER", definition.input_spec, lines, 1)
    _emit_container("OUTPUT_CONTAINER", definition.output_spec, lines, 1)
    _emit_body(definition, lines, 1)
    lines.append("END '%s'" % definition.name)


def _emit_body(
    definition: ProcessDefinition, lines: list[str], depth: int
) -> None:
    for activity in definition.activities.values():
        _emit_activity(activity, lines, depth)
    pad = _INDENT * depth
    for connector in definition.control_connectors:
        line = pad + "CONTROL FROM '%s' TO '%s'" % (
            connector.source,
            connector.target,
        )
        if connector.condition.source != "TRUE":
            line += ' WHEN "%s"' % _escape(connector.condition.source)
        lines.append(line)
    for connector in definition.data_connectors:
        source = (
            "SOURCE"
            if connector.source == PROCESS_INPUT
            else "'%s'" % connector.source
        )
        target = (
            "SINK"
            if connector.target == PROCESS_OUTPUT
            else "'%s'" % connector.target
        )
        line = pad + "DATA FROM %s TO %s" % (source, target)
        for from_path, to_path in connector.mappings:
            line += " MAP '%s' TO '%s'" % (from_path, to_path)
        lines.append(line)


def _emit_activity(activity: Activity, lines: list[str], depth: int) -> None:
    pad = _INDENT * depth
    if activity.kind is ActivityKind.PROGRAM:
        lines.append(pad + "PROGRAM_ACTIVITY '%s'" % activity.name)
        lines.append(pad + _INDENT + "PROGRAM '%s'" % activity.program)
    elif activity.kind is ActivityKind.PROCESS:
        lines.append(pad + "PROCESS_ACTIVITY '%s'" % activity.name)
        lines.append(pad + _INDENT + "PROCESS '%s'" % activity.subprocess)
    else:
        lines.append(pad + "BLOCK '%s'" % activity.name)
    if activity.description:
        lines.append(
            pad + _INDENT + 'DESCRIPTION "%s"' % _escape(activity.description)
        )
    start = "START %s" % (
        "MANUAL" if activity.start_mode is StartMode.MANUAL else "AUTOMATIC"
    )
    start += " WHEN %s CONNECTORS TRUE" % (
        "ANY" if activity.start_condition is StartCondition.ANY else "ALL"
    )
    lines.append(pad + _INDENT + start)
    if activity.exit_condition.source != "TRUE":
        lines.append(
            pad
            + _INDENT
            + 'EXIT WHEN "%s"' % _escape(activity.exit_condition.source)
        )
    if activity.priority:
        lines.append(pad + _INDENT + "PRIORITY %d" % activity.priority)
    if activity.max_iterations:
        lines.append(
            pad + _INDENT + "MAX_ITERATIONS %d" % activity.max_iterations
        )
    if not activity.staff.is_default():
        parts = ["DONE_BY"]
        for role in activity.staff.roles:
            parts.append("ROLE '%s'" % role)
        for user in activity.staff.users:
            parts.append("USER '%s'" % user)
        if activity.staff.notify_after is not None:
            parts.append("NOTIFY AFTER %d" % int(activity.staff.notify_after))
            if activity.staff.notify_role:
                parts.append("TO ROLE '%s'" % activity.staff.notify_role)
        lines.append(pad + _INDENT + " ".join(parts))
    if activity.kind is ActivityKind.BLOCK:
        assert activity.block is not None
        _emit_container(
            "INPUT_CONTAINER", activity.block.input_spec, lines, depth + 1
        )
        _emit_container(
            "OUTPUT_CONTAINER", activity.block.output_spec, lines, depth + 1
        )
        _emit_body(activity.block, lines, depth + 1)
    else:
        _emit_container(
            "INPUT_CONTAINER", activity.input_spec, lines, depth + 1
        )
        _emit_container(
            "OUTPUT_CONTAINER", activity.output_spec, lines, depth + 1
        )
    lines.append(pad + "END '%s'" % activity.name)
