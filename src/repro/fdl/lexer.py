"""Tokenizer for FDL.

Token kinds:

* ``KEYWORD``  — bare upper-case words (``PROCESS``, ``END``, ...),
* ``NAME``     — single-quoted identifiers (``'Travel'``),
* ``STRING``   — double-quoted free text (descriptions, conditions),
* ``NUMBER``   — integer literals,
* punctuation  — ``:`` `;` `(` `)` as their own kinds.

``//`` starts a comment running to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import FDLSyntaxError

KEYWORDS = {
    "STRUCTURE", "PROGRAM", "PROCESS", "END", "DESCRIPTION", "VERSION",
    "INPUT_CONTAINER", "OUTPUT_CONTAINER", "PROGRAM_ACTIVITY",
    "PROCESS_ACTIVITY", "BLOCK", "CONTROL", "DATA", "FROM", "TO", "WHEN",
    "MAP", "SOURCE", "SINK", "START", "AUTOMATIC", "MANUAL", "ALL", "ANY",
    "CONNECTORS", "TRUE", "EXIT", "PRIORITY", "MAX_ITERATIONS", "DONE_BY",
    "ROLE", "USER", "NOTIFY", "AFTER", "LONG", "FLOAT", "STRING", "BINARY",
}

_PUNCT = {":": "COLON", ";": "SEMI", "(": "LPAREN", ")": "RPAREN"}


@dataclass(frozen=True)
class Token:
    kind: str
    value: str | int
    line: int
    column: int

    def __repr__(self) -> str:
        return "Token(%s, %r, %d:%d)" % (
            self.kind, self.value, self.line, self.column
        )


def tokenize(text: str) -> Iterator[Token]:
    """Yield tokens for ``text``; ends with one ``EOF`` token."""
    line, column = 1, 1
    i, n = 0, len(text)

    def error(message: str) -> FDLSyntaxError:
        return FDLSyntaxError(message, line, column)

    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch.isspace():
            i += 1
            column += 1
            continue
        if ch == "/" and text[i : i + 2] == "//":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch in _PUNCT:
            yield Token(_PUNCT[ch], ch, line, column)
            i += 1
            column += 1
            continue
        if ch == "'":
            start_line, start_col = line, column
            i += 1
            column += 1
            chars: list[str] = []
            while i < n and text[i] != "'":
                if text[i] == "\n":
                    raise FDLSyntaxError(
                        "unterminated name", start_line, start_col
                    )
                chars.append(text[i])
                i += 1
                column += 1
            if i >= n:
                raise FDLSyntaxError("unterminated name", start_line, start_col)
            i += 1
            column += 1
            yield Token("NAME", "".join(chars), start_line, start_col)
            continue
        if ch == '"':
            start_line, start_col = line, column
            i += 1
            column += 1
            chars = []
            while i < n and text[i] != '"':
                if text[i] == "\\" and i + 1 < n and text[i + 1] in '"\\':
                    chars.append(text[i + 1])
                    i += 2
                    column += 2
                    continue
                if text[i] == "\n":
                    line += 1
                    column = 1
                else:
                    column += 1
                chars.append(text[i])
                i += 1
            if i >= n:
                raise FDLSyntaxError(
                    "unterminated string", start_line, start_col
                )
            i += 1
            column += 1
            yield Token("STRING", "".join(chars), start_line, start_col)
            continue
        if ch.isdigit():
            start_col = column
            start = i
            while i < n and text[i].isdigit():
                i += 1
                column += 1
            yield Token("NUMBER", int(text[start:i]), line, start_col)
            continue
        if ch.isalpha() or ch == "_":
            start_col = column
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
                column += 1
            word = text[start:i]
            upper = word.upper()
            if upper not in KEYWORDS:
                raise FDLSyntaxError(
                    "unknown keyword %r (names are quoted in FDL)" % word,
                    line,
                    start_col,
                )
            yield Token("KEYWORD", upper, line, start_col)
            continue
        raise error("illegal character %r" % ch)
    yield Token("EOF", "", line, column)
