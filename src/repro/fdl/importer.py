"""FDL import: AST → engine process definitions (Figure 5's import
module).  Parsing + document validation + model construction; the
resulting definitions are additionally validated structurally by
:meth:`ProcessDefinition.validate` (acyclicity, container paths), so an
FDL file that survives :func:`import_text` is executable up to program
registration — which :meth:`Engine.verify_executable` checks last,
matching the paper's staged pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FDLSemanticError
from repro.fdl.ast import (
    ActivityNode,
    FDLDocument,
    MemberNode,
    ProcessBodyNode,
)
from repro.fdl.parser import parse_document
from repro.fdl.validator import validate_document
from repro.wfms.conditions import parse_condition
from repro.wfms.datatypes import (
    DataType,
    StructureType,
    VariableDecl,
)
from repro.wfms.model import (
    PROCESS_INPUT,
    PROCESS_OUTPUT,
    Activity,
    ActivityKind,
    ProcessDefinition,
    StaffAssignment,
    StartCondition,
    StartMode,
)


@dataclass
class ImportResult:
    """What an FDL document contributes to an engine."""

    definitions: list[ProcessDefinition] = field(default_factory=list)
    program_declarations: dict[str, str] = field(default_factory=dict)

    def definition(self, name: str) -> ProcessDefinition:
        for definition in self.definitions:
            if definition.name == name:
                return definition
        raise FDLSemanticError("document defines no process %r" % name)

    def register_into(self, engine) -> None:
        """Register all imported definitions with ``engine``."""
        for definition in self.definitions:
            engine.register_definition(definition)


def import_text(text: str) -> ImportResult:
    """Parse, validate and import FDL ``text``."""
    return import_document(parse_document(text))


def import_document(document: FDLDocument) -> ImportResult:
    """Import a parsed document; definitions are fully validated."""
    validate_document(document)
    result = ImportResult(
        program_declarations={
            p.name: p.description for p in document.programs
        }
    )
    for process in document.processes:
        definition = ProcessDefinition(
            process.name,
            version=process.version,
            description=process.description,
        )
        _register_structures(definition, document)
        _fill_body(definition, process.body, document)
        definition.validate()
        result.definitions.append(definition)
    return result


def _register_structures(
    definition: ProcessDefinition, document: FDLDocument
) -> None:
    # FDL structures are document-global; register them in dependency
    # order (a structure may reference earlier ones).
    pending = list(document.structures)
    registered: set[str] = set()
    while pending:
        progressed = False
        remaining = []
        for node in pending:
            deps = {
                m.type_name for m in node.members if m.is_structure
            }
            if deps <= registered:
                definition.types.register(
                    StructureType(
                        node.name,
                        [_decl(m) for m in node.members],
                        node.description,
                    )
                )
                registered.add(node.name)
                progressed = True
            else:
                remaining.append(node)
        if not progressed:
            raise FDLSemanticError(
                "structures form a dependency cycle: %s"
                % ", ".join(sorted(n.name for n in remaining))
            )
        pending = remaining


def _decl(member: MemberNode) -> VariableDecl:
    if member.is_structure:
        return VariableDecl(member.name, member.type_name, member.array_size)
    return VariableDecl(
        member.name, DataType[member.type_name], member.array_size
    )


def _fill_body(
    definition: ProcessDefinition,
    body: ProcessBodyNode,
    document: FDLDocument,
) -> None:
    definition.input_spec.extend(_decl(m) for m in body.input_members)
    definition.output_spec.extend(_decl(m) for m in body.output_members)
    for node in body.activities:
        definition.add_activity(_activity(node, document))
    for control in body.controls:
        definition.connect(
            control.source, control.target, control.condition or None
        )
    for data in body.datas:
        source = PROCESS_INPUT if data.from_process_input else data.source
        target = PROCESS_OUTPUT if data.to_process_output else data.target
        definition.map_data(source, target, data.mappings)


def _activity(node: ActivityNode, document: FDLDocument) -> Activity:
    block = None
    if node.kind == "BLOCK":
        assert node.body is not None
        block = ProcessDefinition(node.name, description=node.description)
        _register_structures(block, document)
        _fill_body(block, node.body, document)
    activity = Activity(
        node.name,
        kind=ActivityKind[node.kind],
        program=node.program,
        subprocess=node.subprocess,
        block=block,
        input_spec=(
            [_decl(m) for m in node.input_members]
            if node.kind != "BLOCK"
            else [_decl(m) for m in node.body.input_members]
        ),
        output_spec=(
            [_decl(m) for m in node.output_members]
            if node.kind != "BLOCK"
            else [_decl(m) for m in node.body.output_members]
        ),
        start_condition=(
            StartCondition.ANY if node.start_condition == "ANY" else StartCondition.ALL
        ),
        exit_condition=parse_condition(node.exit_condition or None),
        start_mode=(
            StartMode.MANUAL if node.start_mode == "MANUAL" else StartMode.AUTOMATIC
        ),
        staff=StaffAssignment(
            roles=node.staff.roles,
            users=node.staff.users,
            notify_after=node.staff.notify_after,
            notify_role=node.staff.notify_role,
        ),
        description=node.description,
        priority=node.priority,
        max_iterations=node.max_iterations,
    )
    return activity
