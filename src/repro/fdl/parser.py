"""Recursive-descent parser for FDL.

Grammar (EBNF, ``'x'`` denotes a NAME token, ``"x"`` a STRING token)::

    document      := (structure | program | process)*
    structure     := STRUCTURE 'name' member* END 'name'
    member        := 'name' ':' type [ '(' NUMBER ')' ] ';'
    type          := LONG | FLOAT | STRING | BINARY | 'structure-name'
    program       := PROGRAM 'name' [DESCRIPTION "text"] END 'name'
    process       := PROCESS 'name' [DESCRIPTION "text"] [VERSION NUMBER]
                     container* body END 'name'
    container     := (INPUT_CONTAINER | OUTPUT_CONTAINER) member* END
    body          := (activity | control | data)*
    activity      := prog_activity | proc_activity | block
    prog_activity := PROGRAM_ACTIVITY 'name' PROGRAM 'prog'
                     clause* END 'name'
    proc_activity := PROCESS_ACTIVITY 'name' PROCESS 'proc'
                     clause* END 'name'
    block         := BLOCK 'name' clause* body END 'name'
    clause        := DESCRIPTION "text"
                   | START (AUTOMATIC|MANUAL) [WHEN (ALL|ANY) CONNECTORS TRUE]
                   | EXIT WHEN "condition"
                   | PRIORITY NUMBER
                   | MAX_ITERATIONS NUMBER
                   | DONE_BY (ROLE 'r' | USER 'u')+
                         [NOTIFY AFTER NUMBER [TO ROLE 'r']]
                   | container
    control       := CONTROL FROM 'a' TO 'b' [WHEN "condition"]
    data          := DATA FROM ('a'|SOURCE) TO ('b'|SINK)
                     (MAP 'from' TO 'to')+
"""

from __future__ import annotations

from repro.errors import FDLSyntaxError
from repro.fdl.ast import (
    ActivityNode,
    ControlNode,
    DataNode,
    FDLDocument,
    MemberNode,
    ProcessBodyNode,
    ProcessNode,
    ProgramNode,
    StaffNode,
    StructureNode,
)
from repro.fdl.lexer import Token, tokenize

_BASE_TYPES = {"LONG", "FLOAT", "STRING", "BINARY"}
_BODY_STARTERS = {"PROGRAM_ACTIVITY", "PROCESS_ACTIVITY", "BLOCK", "CONTROL", "DATA"}


class _Parser:
    def __init__(self, text: str):
        self._tokens = list(tokenize(text))
        self._index = 0

    # -- token plumbing --------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "EOF":
            self._index += 1
        return token

    def _at_keyword(self, *words: str) -> bool:
        token = self._peek()
        return token.kind == "KEYWORD" and token.value in words

    def _expect_keyword(self, word: str) -> Token:
        token = self._advance()
        if token.kind != "KEYWORD" or token.value != word:
            raise FDLSyntaxError(
                "expected %s, found %r" % (word, token.value),
                token.line,
                token.column,
            )
        return token

    def _expect(self, kind: str) -> Token:
        token = self._advance()
        if token.kind != kind:
            raise FDLSyntaxError(
                "expected %s, found %r" % (kind, token.value),
                token.line,
                token.column,
            )
        return token

    def _name(self) -> str:
        return str(self._expect("NAME").value)

    def _string(self) -> str:
        return str(self._expect("STRING").value)

    def _number(self) -> int:
        return int(self._expect("NUMBER").value)

    def _end(self, name: str) -> None:
        token = self._expect_keyword("END")
        closing = self._name()
        if closing != name:
            raise FDLSyntaxError(
                "END %r does not close %r" % (closing, name),
                token.line,
                token.column,
            )

    # -- document ---------------------------------------------------------

    def parse(self) -> FDLDocument:
        document = FDLDocument()
        while not self._peek().kind == "EOF":
            token = self._peek()
            if self._at_keyword("STRUCTURE"):
                document.structures.append(self._structure())
            elif self._at_keyword("PROGRAM"):
                document.programs.append(self._program())
            elif self._at_keyword("PROCESS"):
                document.processes.append(self._process())
            else:
                raise FDLSyntaxError(
                    "expected STRUCTURE, PROGRAM or PROCESS, found %r"
                    % (token.value,),
                    token.line,
                    token.column,
                )
        return document

    def _structure(self) -> StructureNode:
        token = self._expect_keyword("STRUCTURE")
        name = self._name()
        node = StructureNode(name, line=token.line)
        if self._at_keyword("DESCRIPTION"):
            self._advance()
            node.description = self._string()
        while self._peek().kind == "NAME":
            node.members.append(self._member())
        self._end(name)
        return node

    def _member(self) -> MemberNode:
        token = self._expect("NAME")
        name = str(token.value)
        self._expect("COLON")
        type_token = self._advance()
        if type_token.kind == "KEYWORD" and type_token.value in _BASE_TYPES:
            type_name, is_structure = str(type_token.value), False
        elif type_token.kind == "NAME":
            type_name, is_structure = str(type_token.value), True
        else:
            raise FDLSyntaxError(
                "expected a type, found %r" % (type_token.value,),
                type_token.line,
                type_token.column,
            )
        array_size = 0
        if self._peek().kind == "LPAREN":
            self._advance()
            array_size = self._number()
            self._expect("RPAREN")
        self._expect("SEMI")
        return MemberNode(name, type_name, is_structure, array_size, token.line)

    def _program(self) -> ProgramNode:
        token = self._expect_keyword("PROGRAM")
        name = self._name()
        node = ProgramNode(name, line=token.line)
        if self._at_keyword("DESCRIPTION"):
            self._advance()
            node.description = self._string()
        self._end(name)
        return node

    def _process(self) -> ProcessNode:
        token = self._expect_keyword("PROCESS")
        name = self._name()
        node = ProcessNode(name, line=token.line)
        if self._at_keyword("DESCRIPTION"):
            self._advance()
            node.description = self._string()
        if self._at_keyword("VERSION"):
            self._advance()
            node.version = str(self._number())
        node.body = self._body(
            input_sink=node.body.input_members,
            output_sink=node.body.output_members,
        )
        self._end(name)
        return node

    def _container_members(self) -> list[MemberNode]:
        members: list[MemberNode] = []
        while self._peek().kind == "NAME":
            members.append(self._member())
        self._expect_keyword("END")
        return members

    def _body(
        self,
        input_sink: list[MemberNode],
        output_sink: list[MemberNode],
    ) -> ProcessBodyNode:
        body = ProcessBodyNode(
            input_members=input_sink, output_members=output_sink
        )
        while True:
            if self._at_keyword("INPUT_CONTAINER"):
                self._advance()
                body.input_members.extend(self._container_members())
            elif self._at_keyword("OUTPUT_CONTAINER"):
                self._advance()
                body.output_members.extend(self._container_members())
            elif self._at_keyword("PROGRAM_ACTIVITY", "PROCESS_ACTIVITY", "BLOCK"):
                body.activities.append(self._activity())
            elif self._at_keyword("CONTROL"):
                body.controls.append(self._control())
            elif self._at_keyword("DATA"):
                body.datas.append(self._data())
            else:
                return body

    def _activity(self) -> ActivityNode:
        token = self._advance()
        kind_word = str(token.value)
        name = self._name()
        if kind_word == "PROGRAM_ACTIVITY":
            self._expect_keyword("PROGRAM")
            node = ActivityNode(
                name, "PROGRAM", program=self._name(), line=token.line
            )
        elif kind_word == "PROCESS_ACTIVITY":
            self._expect_keyword("PROCESS")
            node = ActivityNode(
                name, "PROCESS", subprocess=self._name(), line=token.line
            )
        else:
            node = ActivityNode(name, "BLOCK", line=token.line)
        self._clauses(node)
        if kind_word == "BLOCK":
            node.body = self._body(
                input_sink=[], output_sink=[]
            )
            # Clauses may also follow the nested body (EXIT after the
            # inner graph reads naturally); accept them there too.
            self._clauses(node)
        self._end(name)
        return node

    def _clauses(self, node: ActivityNode) -> None:
        while True:
            if self._at_keyword("DESCRIPTION"):
                self._advance()
                node.description = self._string()
            elif self._at_keyword("START"):
                self._advance()
                mode = self._advance()
                if mode.kind != "KEYWORD" or mode.value not in (
                    "AUTOMATIC",
                    "MANUAL",
                ):
                    raise FDLSyntaxError(
                        "expected AUTOMATIC or MANUAL",
                        mode.line,
                        mode.column,
                    )
                node.start_mode = str(mode.value)
                if self._at_keyword("WHEN"):
                    self._advance()
                    which = self._advance()
                    if which.kind != "KEYWORD" or which.value not in (
                        "ALL",
                        "ANY",
                    ):
                        raise FDLSyntaxError(
                            "expected ALL or ANY", which.line, which.column
                        )
                    node.start_condition = str(which.value)
                    self._expect_keyword("CONNECTORS")
                    self._expect_keyword("TRUE")
            elif self._at_keyword("EXIT"):
                self._advance()
                self._expect_keyword("WHEN")
                node.exit_condition = self._string()
            elif self._at_keyword("PRIORITY"):
                self._advance()
                node.priority = self._number()
            elif self._at_keyword("MAX_ITERATIONS"):
                self._advance()
                node.max_iterations = self._number()
            elif self._at_keyword("DONE_BY"):
                self._advance()
                node.staff = self._staff()
            elif self._at_keyword("INPUT_CONTAINER") and node.kind != "BLOCK":
                self._advance()
                node.input_members.extend(self._container_members())
            elif self._at_keyword("OUTPUT_CONTAINER") and node.kind != "BLOCK":
                self._advance()
                node.output_members.extend(self._container_members())
            else:
                return

    def _staff(self) -> StaffNode:
        roles: list[str] = []
        users: list[str] = []
        while self._at_keyword("ROLE", "USER"):
            which = self._advance()
            if which.value == "ROLE":
                roles.append(self._name())
            else:
                users.append(self._name())
        if not roles and not users:
            token = self._peek()
            raise FDLSyntaxError(
                "DONE_BY needs at least one ROLE or USER",
                token.line,
                token.column,
            )
        notify_after = None
        notify_role = ""
        if self._at_keyword("NOTIFY"):
            self._advance()
            self._expect_keyword("AFTER")
            notify_after = float(self._number())
            if self._at_keyword("TO"):
                self._advance()
                self._expect_keyword("ROLE")
                notify_role = self._name()
        return StaffNode(tuple(roles), tuple(users), notify_after, notify_role)

    def _control(self) -> ControlNode:
        token = self._expect_keyword("CONTROL")
        self._expect_keyword("FROM")
        source = self._name()
        self._expect_keyword("TO")
        target = self._name()
        condition = ""
        if self._at_keyword("WHEN"):
            self._advance()
            condition = self._string()
        return ControlNode(source, target, condition, token.line)

    def _data(self) -> DataNode:
        token = self._expect_keyword("DATA")
        self._expect_keyword("FROM")
        node = DataNode("", "", line=token.line)
        if self._at_keyword("SOURCE"):
            self._advance()
            node.from_process_input = True
        else:
            node.source = self._name()
        self._expect_keyword("TO")
        if self._at_keyword("SINK"):
            self._advance()
            node.to_process_output = True
        else:
            node.target = self._name()
        while self._at_keyword("MAP"):
            self._advance()
            from_path = self._name()
            self._expect_keyword("TO")
            to_path = self._name()
            node.mappings.append((from_path, to_path))
        if not node.mappings:
            raise FDLSyntaxError(
                "DATA connector needs at least one MAP",
                token.line,
                token.column,
            )
        return node


def parse_document(text: str) -> FDLDocument:
    """Parse FDL ``text`` into an :class:`FDLDocument`."""
    return _Parser(text).parse()
