"""repro — Advanced Transaction Models in Workflow Contexts.

A full reproduction of Alonso, Agrawal, El Abbadi, Kamath, Günthör and
Mohan (ICDE 1996): a FlowMark-style workflow management system
(:mod:`repro.wfms`), the FlowMark Definition Language (:mod:`repro.fdl`),
a transactional multidatabase substrate (:mod:`repro.tx`), and — the
paper's contribution — implementations of Linear/Parallel Sagas and
Flexible Transactions *as workflow processes*, produced automatically
by the Exotica/FMTM translator (:mod:`repro.core`).

Quickstart::

    from repro import Engine, ProcessDefinition, Activity

    engine = Engine()
    engine.register_program("hello", lambda ctx: 0)
    defn = ProcessDefinition("Hi")
    defn.add_activity(Activity("Greet", program="hello"))
    engine.register_definition(defn)
    result = engine.run_process("Hi")
    assert result.finished
"""

from repro.errors import (
    ReproError,
    WorkflowError,
    TransactionError,
    TransactionAborted,
    ModelError,
    SpecificationError,
    WellFormednessError,
    TranslationError,
)
from repro.wfms import (
    Activity,
    ActivityKind,
    Condition,
    Container,
    ControlConnector,
    DataConnector,
    DataType,
    Engine,
    Organization,
    ProcessDefinition,
    ProgramRegistry,
    StartCondition,
    StartMode,
    StructureType,
    VariableDecl,
    parse_condition,
)

__version__ = "1.0.0"

__all__ = [
    "Activity",
    "ActivityKind",
    "Condition",
    "Container",
    "ControlConnector",
    "DataConnector",
    "DataType",
    "Engine",
    "ModelError",
    "Organization",
    "ProcessDefinition",
    "ProgramRegistry",
    "ReproError",
    "SpecificationError",
    "StartCondition",
    "StartMode",
    "StructureType",
    "TransactionAborted",
    "TransactionError",
    "TranslationError",
    "VariableDecl",
    "WellFormednessError",
    "WorkflowError",
    "parse_condition",
    "__version__",
]
