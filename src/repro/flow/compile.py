"""Flow -> ProcessDefinition compilation.

A decorated workflow compiles to a *one-activity* definition: a
single looping ``Drive`` activity whose exit condition (``_DONE = 1``)
holds only once the Python function returned (or failed).  Each
attempt of ``Drive`` re-runs the function from the top, replays the
journaled step results, executes at most one new step, and publishes
the updated step journal on its output container; a loop-carried self
data connector feeds that journal into the next attempt's input.

The payoff of this shape is that durability costs nothing new: every
attempt completion is an ordinary ``activity_completed`` journal
record, so the escalated-completion replay machinery (PR 4) and the
checkpointing store (PR 5) replay a crashed flow without knowing
flows exist — the step journal rides inside the activity's recorded
output containers.
"""

from __future__ import annotations

import hashlib
import json
import types

from repro.wfms.datatypes import DataType, VariableDecl
from repro.wfms.model import (
    PROCESS_INPUT,
    PROCESS_OUTPUT,
    RETURN_CODE,
    Activity,
    ProcessDefinition,
)

#: The single driver activity of every compiled flow.
DRIVE = "Drive"

#: Generic driver program; one registration serves every flow — the
#: runtime resolves the Flow from ``ctx.process``.
DRIVE_PROGRAM = "flow_drive"

#: Container member names (process- and drive-level).
ARGS = "_ARGS"          # JSON {"a": [...], "k": {...}} of the start call
JOURNAL = "_JOURNAL"    # JSON step journal, loop-carried between attempts
RESULT = "_RESULT"      # JSON of the function's return value
ERROR = "_ERROR"        # "Type: message" when the flow failed
DONE = "_DONE"          # 1 once the function returned or failed


def _digest_code(code: types.CodeType, hasher) -> None:
    hasher.update(code.co_code)
    hasher.update(repr(code.co_names).encode())
    hasher.update(repr(code.co_varnames).encode())
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            _digest_code(const, hasher)
        else:
            hasher.update(repr(const).encode())


def flow_body_digest(flow) -> str:
    """Digest of the workflow function's bytecode plus its decorator
    options.  The one-activity graph is the same for every flow, so
    this digest — stamped into the driver activity's description,
    which the registry fingerprint covers — is what makes two
    compiled flows "byte-identical" only when their Python behavior
    is: a re-imported unchanged flow re-registers as a no-op, while an
    edited body under the same name/version is rejected.
    (``co_name`` is deliberately excluded: a renamed-but-identical
    function is the same body.)"""
    hasher = hashlib.sha256()
    _digest_code(flow.fn.__code__, hasher)
    hasher.update(
        json.dumps(
            [
                flow.max_steps,
                flow.isolation.value,
                flow.scope_timeout,
                flow.failure_rc,
            ],
            sort_keys=True,
        ).encode()
    )
    return hasher.hexdigest()[:16]


def compile_flow(flow) -> ProcessDefinition:
    """The :class:`ProcessDefinition` for one decorated workflow."""
    definition = ProcessDefinition(
        flow.name,
        version=flow.version,
        description=flow.description,
        input_spec=[VariableDecl(ARGS, DataType.STRING)],
        output_spec=[
            VariableDecl(RESULT, DataType.STRING),
            VariableDecl(ERROR, DataType.STRING),
        ],
    )
    definition.add_activity(
        Activity(
            DRIVE,
            program=DRIVE_PROGRAM,
            input_spec=[
                VariableDecl(ARGS, DataType.STRING),
                VariableDecl(JOURNAL, DataType.STRING),
            ],
            output_spec=[
                VariableDecl(JOURNAL, DataType.STRING),
                VariableDecl(RESULT, DataType.STRING),
                VariableDecl(ERROR, DataType.STRING),
                VariableDecl(DONE, DataType.LONG),
            ],
            exit_condition="%s = 1" % DONE,
            description="flow driver: one journaled step per attempt "
            "[body %s]" % flow_body_digest(flow),
        )
    )
    definition.map_data(PROCESS_INPUT, DRIVE, [(ARGS, ARGS)])
    # Loop-carried: this attempt's journal is the next attempt's input.
    definition.map_data(DRIVE, DRIVE, [(JOURNAL, JOURNAL)])
    definition.map_data(
        DRIVE,
        PROCESS_OUTPUT,
        [
            (RESULT, RESULT),
            (ERROR, ERROR),
            (RETURN_CODE, RETURN_CODE),
        ],
    )
    definition.validate()
    return definition
