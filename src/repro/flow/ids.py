"""Deterministic workflow-uuid allocation.

Chaos runs replay the same schedule twice and diff the traces, so a
flow start may never mint a ``uuid4``: the allocator draws ids from a
seeded PRNG, which makes the id sequence a pure function of the seed
and the allocation order.  Collisions — against ids this allocator
already issued *and* against ids the engine already knows (a fresh
allocator after crash-resume restarts its PRNG, but the journal
remembers the pre-crash flows) — are checked and burned, never
returned twice.
"""

from __future__ import annotations

import random
import threading
from typing import Callable


class FlowIdAllocator:
    """Seeded, collision-checked ``workflow_uuid`` source.

    ``allocate`` is atomic under an internal lock, so concurrent
    starts of the same flow name from multiple threads each get a
    distinct id (the interleaving may vary, the issued *set* may not
    collide).
    """

    def __init__(self, seed: int = 0, prefix: str = "wf"):
        self._rng = random.Random(seed)
        self._prefix = prefix
        self._lock = threading.Lock()
        self._issued: set[str] = set()

    def allocate(
        self,
        flow_name: str,
        is_taken: Callable[[str], bool] | None = None,
    ) -> str:
        """A fresh ``<prefix>-<flow>-<token>`` id.

        ``is_taken`` lets the caller veto ids that exist outside this
        allocator's memory (live or archived engine instances); vetoed
        ids are burned so the PRNG stream stays aligned with the
        allocation count.
        """
        with self._lock:
            while True:
                token = "%08x" % self._rng.getrandbits(32)
                uuid = "%s-%s-%s" % (self._prefix, flow_name, token)
                if uuid in self._issued:
                    continue
                self._issued.add(uuid)
                if is_taken is not None and is_taken(uuid):
                    continue  # burned: stays in _issued, never reused
                return uuid

    def issued(self) -> int:
        with self._lock:
            return len(self._issued)
