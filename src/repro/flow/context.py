"""FlowContext: the per-invocation step journal and replay cursor.

Execution model (one ``Drive`` attempt = one call of the workflow
function from the top):

* Every ``@step`` / ``@transaction`` call inside the body takes the
  next ``function_id`` (a plain counter, exactly as in the DBOS
  ``WorkflowContext`` exemplar).  The step's durable key is
  ``(workflow_uuid, function_id)``.
* If the journal holds an entry for that id, the recorded result is
  returned (or the recorded :class:`~repro.errors.StepFailure`
  re-raised) **without invoking the body** — this is replay, both for
  the ordinary attempt loop and for crash-resume.
* The first call with no journal entry runs live: the body executes
  exactly once, its outcome is journaled, and the attempt owns it.
  Any *further* new call raises :class:`FlowSuspend`, which unwinds
  the workflow function so the engine can journal the attempt and
  reschedule — at most one step body runs per attempt, so a completed
  attempt record durably implies its step ran.
* A function return (or uncaught exception) ends the flow in the
  attempt that saw it.

Transactional steps run inside one flow-lifetime
:class:`~repro.tx.scope.TransactionScope` under a per-step savepoint.
Their write effects (absolute final value per key) are journaled with
the result; when the scope is lost — crash-resume rolled it back as
torn, or a timeout/deadlock aborted it mid-flow — the context begins
a fresh scope and re-applies the journaled effects in function-id
order instead of re-running bodies, preserving exactly-once body
execution.
"""

from __future__ import annotations

import contextvars
import json
import time
from typing import Any

from repro.core.scoped import SCOPE_SERVICE
from repro.errors import FlowError, StepFailure, TransactionAborted, ScopeError
from repro.flow.compile import ARGS, JOURNAL


class FlowSuspend(BaseException):
    """Internal control flow: ends an attempt after its live step.

    A ``BaseException`` so ordinary ``except Exception`` handlers in
    workflow code cannot swallow it; ``finally`` blocks still run.
    """


_CURRENT: contextvars.ContextVar["FlowContext | None"] = (
    contextvars.ContextVar("repro_flow_context", default=None)
)


def current_context() -> "FlowContext | None":
    """The FlowContext of the flow driving this call stack, if any."""
    return _CURRENT.get()


def canon(value: Any) -> str:
    """Canonical JSON: the only serialization flows use."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def encode_args(args: tuple, kwargs: dict) -> str:
    """The ``_ARGS`` payload of a flow start."""
    try:
        return canon({"a": list(args), "k": dict(kwargs)})
    except (TypeError, ValueError) as exc:
        raise FlowError(
            "flow arguments must be JSON-serializable: %s" % exc
        ) from exc


class RecordingScope:
    """Scope proxy handed to ``@transaction`` bodies.

    Forwards to the real scope and records each written key's *final*
    value, so the effect set journaled with the step is absolute (and
    therefore idempotent to re-apply on a fresh scope).
    """

    __slots__ = ("_scope", "effects")

    def __init__(self, scope):
        self._scope = scope
        self.effects: dict[str, Any] = {}

    def read(self, key: str, default: Any = None) -> Any:
        return self._scope.read(key, default)

    def write(self, key: str, value: Any) -> None:
        self._scope.write(key, value)
        self.effects[key] = value

    def increment(self, key: str, delta: float | int) -> Any:
        value = self._scope.increment(key, delta)
        self.effects[key] = value
        return value

    @property
    def handle(self) -> str:
        return self._scope.handle


class FlowContext:
    """Passed to the workflow function as its first argument."""

    def __init__(self, runtime, flow, invocation, replay_mode: str):
        self.runtime = runtime
        self.flow = flow
        self.uuid: str = invocation.instance_id
        self.attempt: int = invocation.attempt
        self._services = invocation.services
        self._replay_mode = replay_mode  # "loop" | "resume"
        raw_args = invocation.input.get(ARGS) or ""
        call = json.loads(raw_args) if raw_args else {"a": [], "k": {}}
        self.args: tuple = tuple(call.get("a", []))
        self.kwargs: dict = dict(call.get("k", {}))
        raw = invocation.input.get(JOURNAL) or ""
        state = json.loads(raw) if raw else {"s": {}, "scope": ""}
        #: function_id (as str) -> journal entry.
        self._steps: dict[str, dict] = state.get("s", {})
        self._scope_handle: str = state.get("scope", "")
        self._fid = 0
        self._live_done = False
        self._scope = None
        #: Journaled ok-transaction effects, [(fid, {key: final})].
        self._txn_effects: list[tuple[int, dict]] = []
        for key in sorted(self._steps, key=int):
            entry = self._steps[key]
            if entry.get("k") == "txn" and entry.get("s") == "ok":
                self._txn_effects.append((int(key), entry.get("w", {})))
        #: Highest fid whose effects live in the currently open scope.
        self._synced_fid = -1
        manager = self._services.get(SCOPE_SERVICE)
        if self._scope_handle and manager is not None:
            scope = manager.get(self._scope_handle)
            if scope is not None:
                # The flow's scope survived since the last attempt:
                # every journaled effect is already in it.
                self._scope = scope
                if self._txn_effects:
                    self._synced_fid = self._txn_effects[-1][0]

    # -- step dispatch ---------------------------------------------------

    def call(self, spec, args: tuple, kwargs: dict) -> Any:
        self._fid += 1
        fid = self._fid
        entry = self._steps.get(str(fid))
        if entry is not None:
            return self._replay(fid, spec, entry)
        if self._live_done:
            # This attempt already ran its one live step; journal it
            # before any further side effect.
            raise FlowSuspend()
        if fid > self.flow.max_steps:
            raise FlowError(
                "flow %r exceeded max_steps=%d"
                % (self.flow.name, self.flow.max_steps)
            )
        if spec.transactional:
            return self._execute_transaction(fid, spec, args, kwargs)
        return self._execute_step(fid, spec, args, kwargs)

    # -- replay ----------------------------------------------------------

    def _replay(self, fid: int, spec, entry: dict) -> Any:
        if entry.get("n") != spec.name:
            raise FlowError(
                "flow %r is not deterministic: function_id %d was "
                "journaled as step %r but replay called %r"
                % (self.flow.name, fid, entry.get("n"), spec.name)
            )
        if entry.get("k") == "txn" and entry.get("s") == "ok":
            # Make sure the journaled effects exist in a live scope
            # (re-establishes and re-applies after a scope loss).
            self._ensure_scope()
        self.runtime.on_step_replayed(self, spec, fid, self._replay_mode)
        if entry.get("s") == "ok":
            return entry.get("v")
        raise StepFailure(
            spec.name, entry.get("t", "Exception"), entry.get("m", "")
        )

    # -- live execution --------------------------------------------------

    def _execute_step(self, fid: int, spec, args, kwargs) -> Any:
        started = time.perf_counter()
        try:
            value = spec.fn(*args, **kwargs)
            value = self._normalize(spec, value)
        except FlowSuspend:
            raise
        except Exception as exc:
            self._record_failure(fid, spec, "step", exc)
            raise StepFailure(spec.name, type(exc).__name__, str(exc))
        self._steps[str(fid)] = {
            "k": "step", "n": spec.name, "s": "ok", "v": value,
        }
        self._live_done = True
        self.runtime.on_step_executed(
            self, spec, fid, time.perf_counter() - started, ok=True
        )
        return value

    def _execute_transaction(self, fid: int, spec, args, kwargs) -> Any:
        started = time.perf_counter()
        scope = self._ensure_scope()
        savepoint = "flow-%d" % fid
        try:
            scope.savepoint(savepoint)
            proxy = RecordingScope(scope)
            value = spec.fn(proxy, *args, **kwargs)
            value = self._normalize(spec, value)
        except FlowSuspend:
            raise
        except Exception as exc:
            # Step-local failure: undo only this step's writes.  When
            # the *whole scope* died instead (timeout, deadlock, a
            # chaos abort — ``TransactionAborted`` or any exception
            # after which the scope is no longer open), the savepoint
            # rollback itself raises: every prior effect was rolled
            # back with the scope, and the journal re-applies them on
            # the next transactional use.
            try:
                scope.rollback_to_savepoint(savepoint)
            except (ScopeError, TransactionAborted):
                self._scope = None
                self._synced_fid = -1
            self._record_failure(fid, spec, "txn", exc)
            raise StepFailure(spec.name, type(exc).__name__, str(exc))
        self._steps[str(fid)] = {
            "k": "txn", "n": spec.name, "s": "ok", "v": value,
            "w": proxy.effects,
        }
        self._txn_effects.append((fid, proxy.effects))
        self._synced_fid = fid
        self._live_done = True
        self.runtime.on_step_executed(
            self, spec, fid, time.perf_counter() - started, ok=True
        )
        return value

    def _record_failure(self, fid: int, spec, kind: str, exc) -> None:
        self._steps[str(fid)] = {
            "k": kind, "n": spec.name, "s": "err",
            "t": type(exc).__name__, "m": str(exc),
        }
        self._live_done = True
        self.runtime.on_step_executed(self, spec, fid, 0.0, ok=False)

    def _normalize(self, spec, value: Any) -> Any:
        """JSON round-trip so the live attempt sees exactly what every
        replay will see (tuples become lists *now*, not later)."""
        if value is None:
            return None
        try:
            return json.loads(canon(value))
        except (TypeError, ValueError) as exc:
            raise FlowError(
                "step %r returned a non-JSON-serializable value: %s"
                % (spec.name, exc)
            ) from exc

    # -- the shared transaction scope ------------------------------------

    def _ensure_scope(self):
        """The flow's open scope, beginning (and re-applying journaled
        effects onto) a fresh one when none is live."""
        manager = self._services.get(SCOPE_SERVICE)
        if manager is None:
            raise FlowError(
                "flow %r uses @transaction steps but the engine has no "
                "%r service (install a ScopeManager)"
                % (self.flow.name, SCOPE_SERVICE)
            )
        if self._scope is not None and manager.get(self._scope.handle):
            return self._scope
        reestablish = bool(self._scope_handle or self._txn_effects)
        scope = manager.begin(
            self.uuid,
            isolation=self.flow.isolation,
            timeout=self.flow.scope_timeout,
        )
        for fid, effects in self._txn_effects:
            for key in sorted(effects):
                scope.write(key, effects[key])
        if self._txn_effects:
            self._synced_fid = self._txn_effects[-1][0]
        self._scope = scope
        self._scope_handle = scope.handle
        if reestablish:
            self.runtime.on_scope_reestablished(self)
        return scope

    def finish_scope(self, *, commit: bool) -> None:
        """Commit or roll back the flow's scope at flow end (no-op when
        no transactional step ever ran, or the scope already died)."""
        scope = self._scope
        if scope is None:
            return
        manager = self._services.get(SCOPE_SERVICE)
        if manager is None or manager.get(scope.handle) is None:
            return
        if commit:
            scope.commit()
        else:
            scope.rollback("flow %s failed" % self.uuid)

    # -- state for the driver --------------------------------------------

    @property
    def step_count(self) -> int:
        """function_ids consumed so far this attempt."""
        return self._fid

    def journal_text(self) -> str:
        return canon({"s": self._steps, "scope": self._scope_handle})
