"""The decorator front end: ``@workflow`` / ``@step`` / ``@transaction``.

Following the DBOS ``WorkflowContext`` exemplar, any plain Python
function becomes a durable workflow::

    @step
    def fetch(order_id):
        return {"order": order_id, "total": 42}

    @transaction
    def debit(scope, account, amount):
        scope.increment(account, -amount)
        return scope.read(account)

    @workflow
    def checkout(flow, order_id):
        order = fetch(order_id)
        balance = debit("acct:alice", order["total"])
        return {"order": order, "balance": balance}

A workflow function receives the :class:`~repro.flow.context.FlowContext`
as its first argument; steps are called as ordinary functions inside
the body and find the context implicitly.  A ``@transaction`` step
receives a scope proxy as *its* first argument — the caller does not
pass one.  Outside a running flow a ``@step`` behaves as the plain
function (unit tests call it directly); a ``@transaction`` has no
scope to run in and raises :class:`~repro.errors.FlowError`.
"""

from __future__ import annotations

import functools
from typing import Any, Callable

from repro.errors import FlowError
from repro.flow.compile import compile_flow
from repro.flow.context import current_context
from repro.tx.scope import IsolationLevel


class StepSpec:
    """One decorated step (plain or transactional)."""

    __slots__ = ("fn", "name", "transactional", "__wrapped__")

    def __init__(self, fn: Callable, name: str, transactional: bool):
        self.fn = fn
        self.name = name
        self.transactional = transactional
        self.__wrapped__ = fn

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        ctx = current_context()
        if ctx is not None:
            return ctx.call(self, args, kwargs)
        if self.transactional:
            raise FlowError(
                "transaction step %r requires a running flow (it is "
                "invoked with a scope proxy the flow provides)"
                % self.name
            )
        return self.fn(*args, **kwargs)

    def __repr__(self) -> str:
        kind = "transaction" if self.transactional else "step"
        return "<%s %s>" % (kind, self.name)


class Flow:
    """One decorated workflow function plus its compiled definition."""

    def __init__(
        self,
        fn: Callable,
        *,
        name: str,
        version: str,
        description: str,
        max_steps: int,
        isolation: IsolationLevel,
        scope_timeout: int | None,
        failure_rc: int,
    ):
        functools.update_wrapper(self, fn)
        self.fn = fn
        self.name = name
        self.version = version
        self.description = description
        self.max_steps = max_steps
        self.isolation = isolation
        self.scope_timeout = scope_timeout
        self.failure_rc = failure_rc
        self._definition = None

    @property
    def definition(self):
        """The compiled ProcessDefinition (built once, cached)."""
        if self._definition is None:
            self._definition = compile_flow(self)
        return self._definition

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        raise FlowError(
            "flow %r is started through a FlowRuntime "
            "(runtime.start(%r, ...)), not called directly"
            % (self.name, self.name)
        )

    def __repr__(self) -> str:
        return "<workflow %s v%s>" % (self.name, self.version)


def step(fn: Callable | None = None, *, name: str | None = None):
    """Mark a function as a journaled flow step.

    Inside a flow its result is recorded under the next
    ``(workflow_uuid, function_id)`` key and returned from the journal
    on every replay; outside a flow it is the plain function.
    """

    def wrap(f: Callable) -> StepSpec:
        return StepSpec(f, name or f.__name__, transactional=False)

    return wrap(fn) if fn is not None else wrap


def transaction(fn: Callable | None = None, *, name: str | None = None):
    """Mark a function as a transactional flow step.

    The body receives a scope proxy as its first argument and runs
    inside the flow's shared :class:`~repro.tx.scope.TransactionScope`
    under a per-step savepoint: a step failure rolls back only its own
    writes.  Write effects are journaled with the result so a resumed
    flow re-applies them without re-running the body.
    """

    def wrap(f: Callable) -> StepSpec:
        return StepSpec(f, name or f.__name__, transactional=True)

    return wrap(fn) if fn is not None else wrap


def workflow(
    fn: Callable | None = None,
    *,
    name: str | None = None,
    version: str = "1",
    description: str = "",
    max_steps: int = 10_000,
    isolation: IsolationLevel = IsolationLevel.SERIALIZABLE,
    scope_timeout: int | None = None,
    failure_rc: int = 1,
):
    """Mark a function as a durable workflow.

    The function receives a :class:`FlowContext` as its first argument
    and may use any Python control flow; every ``@step`` /
    ``@transaction`` call inside it is journaled by invocation order.
    ``failure_rc`` is the process return code when the function raises
    (0 is reserved for success).
    """

    def wrap(f: Callable) -> Flow:
        return Flow(
            f,
            name=name or f.__name__,
            version=version,
            description=description or (f.__doc__ or "").strip(),
            max_steps=max_steps,
            isolation=isolation,
            scope_timeout=scope_timeout,
            failure_rc=failure_rc,
        )

    return wrap(fn) if fn is not None else wrap
