"""FlowRuntime: the engine service that drives decorated workflows.

One runtime installs onto one engine as the ``"flows"`` service: it
registers the generic ``flow_drive`` program once, registers each
flow's compiled definition through the ordinary
:class:`~repro.wfms.registry.DefinitionRegistry` (idempotent on
re-import), allocates deterministic workflow uuids, and keeps the
replayed/resumed counters the monitor's FLOWS view renders.

Because a flow is just a process whose single activity loops, the
same runtime installs unchanged on every execution substrate: a plain
:class:`~repro.wfms.engine.Engine`, each shard of a
:class:`~repro.wfms.sharding.ShardedEngine` (install from the
``configure`` callback so shard rebuilds re-install it), or a
:class:`~repro.wfms.distributed.WorkflowNode` serving the flow over a
socket broker.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import FlowError, TransactionAborted
from repro.flow.compile import (
    ARGS,
    DONE,
    DRIVE,
    DRIVE_PROGRAM,
    ERROR,
    JOURNAL,
    RESULT,
)
from repro.flow.context import (
    FlowContext,
    FlowSuspend,
    _CURRENT,
    canon,
    encode_args,
)
from repro.flow.ids import FlowIdAllocator
from repro.obs import FlowStepExecuted, FlowStepReplayed
from repro.wfms.model import RETURN_CODE

#: Engine service key under which a FlowRuntime lives.
FLOW_SERVICE = "flows"

_STAT_KEYS = (
    "started", "completed", "failed", "resumed",
    "steps_executed", "steps_replayed",
)


def flow_args(*args: Any, **kwargs: Any) -> dict[str, str]:
    """Input values for starting a compiled flow through any facade
    that lacks ``instance_id`` plumbing (e.g. ``ShardedEngine``)::

        cluster.start_process("checkout", flow_args(order_id))
    """
    return {ARGS: encode_args(args, kwargs)}


class FlowResult:
    """Decoded outcome of one flow instance."""

    __slots__ = ("uuid", "flow", "state", "value", "error", "return_code")

    def __init__(self, uuid, flow, state, value, error, return_code):
        self.uuid = uuid
        self.flow = flow
        self.state = state
        self.value = value
        self.error = error
        self.return_code = return_code

    @property
    def ok(self) -> bool:
        return self.state == "finished" and self.return_code == 0

    def __repr__(self) -> str:
        return "FlowResult(%s, %s, rc=%d)" % (
            self.uuid, self.state, self.return_code
        )


def flow_result(process_result, uuid: str | None = None) -> FlowResult:
    """A :class:`FlowResult` from an engine ``ProcessResult``."""
    output = process_result.output or {}
    raw = output.get(RESULT, "")
    return FlowResult(
        uuid=uuid or process_result.instance_id,
        flow=process_result.process,
        state=process_result.state,
        value=json.loads(raw) if raw else None,
        error=output.get(ERROR, ""),
        return_code=int(output.get(RETURN_CODE, 0) or 0),
    )


class FlowRuntime:
    """Flows registered on one engine, plus their execution counters."""

    def __init__(self, *, seed: int = 0, id_prefix: str = "wf"):
        self._flows: dict[str, Any] = {}  # definition name -> Flow
        self._ids = FlowIdAllocator(seed, prefix=id_prefix)
        self._engine = None
        #: uuids this engine incarnation has driven at least once —
        #: a journaled uuid *not* in here is a crash-resumed flow.
        self._seen: set[str] = set()
        self.counters = {
            "flows_started": 0,
            "flows_completed": 0,
            "flows_failed": 0,
            "flows_resumed": 0,
            "steps_executed": 0,
            "steps_failed": 0,
            "steps_replayed_loop": 0,
            "steps_replayed_resume": 0,
            "txn_steps": 0,
            "scopes_reestablished": 0,
        }
        self._stats: dict[str, dict[str, int]] = {}
        self._obs = None
        self._obs_on = False

    # -- wiring ----------------------------------------------------------

    def install(self, engine) -> "FlowRuntime":
        """Bind to ``engine``: service slot + the driver program."""
        engine.services[FLOW_SERVICE] = self
        engine.register_program(
            DRIVE_PROGRAM,
            self._drive,
            "durable flow driver (repro.flow)",
            replace=True,
        )
        self._engine = engine
        self._bind_obs(engine.obs)
        return self

    def register(self, *flows) -> "FlowRuntime":
        """Register decorated flows (idempotent per definition body)."""
        if self._engine is None:
            raise FlowError("install() the runtime on an engine first")
        for flow in flows:
            self._flows[flow.name] = flow
            self._stats.setdefault(
                flow.name, dict.fromkeys(_STAT_KEYS, 0)
            )
            self._engine.register_definition(flow.definition)
        return self

    def flows(self) -> list[str]:
        return sorted(self._flows)

    # -- starting and reading flows --------------------------------------

    def start(
        self,
        flow_name: str,
        *args: Any,
        uuid: str = "",
        starter: str = "",
        **kwargs: Any,
    ) -> str:
        """Start a flow; returns its ``workflow_uuid``.

        Ids come from the seeded allocator unless ``uuid`` pins one;
        allocation consults the engine so a post-resume allocator
        never re-issues a pre-crash id.
        """
        flow = self._flows.get(flow_name)
        if flow is None:
            raise FlowError(
                "no flow named %r registered (have %s)"
                % (flow_name, self.flows())
            )
        if not uuid:
            uuid = self._ids.allocate(flow_name, is_taken=self._id_taken)
        self._engine.start_process(
            flow.definition.name,
            {ARGS: encode_args(args, kwargs)},
            starter=starter,
            version=flow.version,
            instance_id=uuid,
        )
        self.counters["flows_started"] += 1
        self._stats[flow_name]["started"] += 1
        return uuid

    def _id_taken(self, uuid: str) -> bool:
        try:
            self._engine.instance_state(uuid)
        except Exception:
            return False
        return True

    def result(self, uuid: str) -> FlowResult:
        return flow_result(self._engine.result(uuid), uuid)

    # -- the driver program ----------------------------------------------

    def _drive(self, ctx) -> int:
        flow = self._flows.get(ctx.process)
        if flow is None:
            raise FlowError(
                "definition %r has no registered flow on this runtime"
                % ctx.process
            )
        replay_mode = "loop"
        if ctx.instance_id not in self._seen:
            self._seen.add(ctx.instance_id)
            raw = ctx.input.get(JOURNAL) or ""
            if raw and json.loads(raw).get("s"):
                # First sight of a uuid that already has journaled
                # steps: this engine incarnation is resuming it.
                replay_mode = "resume"
                self.counters["flows_resumed"] += 1
                self._stats[flow.name]["resumed"] += 1
        fctx = FlowContext(self, flow, ctx, replay_mode)
        token = _CURRENT.set(fctx)
        try:
            value = flow.fn(fctx, *fctx.args, **fctx.kwargs)
        except FlowSuspend:
            if not fctx._live_done:
                return self._fail(
                    fctx,
                    ctx,
                    flow,
                    FlowError(
                        "flow suspended without executing a step "
                        "(FlowSuspend must not be raised by user code)"
                    ),
                )
            ctx.output.set(JOURNAL, fctx.journal_text())
            ctx.output.set(DONE, 0)
            return 0
        except Exception as exc:
            return self._fail(fctx, ctx, flow, exc)
        finally:
            _CURRENT.reset(token)
        try:
            encoded = canon(value) if value is not None else ""
        except (TypeError, ValueError) as exc:
            return self._fail(
                fctx,
                ctx,
                flow,
                FlowError(
                    "flow return value is not JSON-serializable: %s" % exc
                ),
            )
        try:
            fctx.finish_scope(commit=True)
        except TransactionAborted as exc:
            return self._fail(fctx, ctx, flow, exc)
        ctx.output.set(RESULT, encoded)
        ctx.output.set(DONE, 1)
        self.counters["flows_completed"] += 1
        self._stats[flow.name]["completed"] += 1
        return 0

    def _fail(self, fctx, ctx, flow, exc) -> int:
        fctx.finish_scope(commit=False)
        ctx.output.set(ERROR, "%s: %s" % (type(exc).__name__, exc))
        ctx.output.set(DONE, 1)
        self.counters["flows_failed"] += 1
        self._stats[flow.name]["failed"] += 1
        return flow.failure_rc

    # -- context callbacks -----------------------------------------------

    def on_step_executed(self, fctx, spec, fid, seconds, *, ok) -> None:
        self.counters["steps_executed"] += 1
        if not ok:
            self.counters["steps_failed"] += 1
        if spec.transactional:
            self.counters["txn_steps"] += 1
        self._stats[fctx.flow.name]["steps_executed"] += 1
        if not self._obs_on:
            return
        (self._c_exec_txn if spec.transactional else self._c_exec_step).inc()
        self._h_step_seconds.observe(seconds)
        self._emit_span(fctx, spec, fid, "ok" if ok else "failed")
        hooks = self._obs.hooks
        if hooks.wants(FlowStepExecuted):
            hooks.publish(
                FlowStepExecuted(
                    fctx.uuid,
                    fctx.flow.name,
                    spec.name,
                    fid,
                    "transaction" if spec.transactional else "step",
                    self._engine.navigator.clock,
                )
            )

    def on_step_replayed(self, fctx, spec, fid, mode) -> None:
        self.counters["steps_replayed_%s" % mode] += 1
        self._stats[fctx.flow.name]["steps_replayed"] += 1
        if not self._obs_on:
            return
        (
            self._c_replay_resume if mode == "resume" else self._c_replay_loop
        ).inc()
        hooks = self._obs.hooks
        if hooks.wants(FlowStepReplayed):
            hooks.publish(
                FlowStepReplayed(
                    fctx.uuid,
                    fctx.flow.name,
                    spec.name,
                    fid,
                    mode,
                    self._engine.navigator.clock,
                )
            )

    def on_scope_reestablished(self, fctx) -> None:
        self.counters["scopes_reestablished"] += 1

    def _emit_span(self, fctx, spec, fid, status) -> None:
        tracer = self._obs.tracer
        if not tracer.enabled:
            return
        span = tracer.start_span(
            "flow.step %s" % spec.name,
            parent=self._engine.navigator.activity_span(fctx.uuid, DRIVE),
            attributes={
                "workflow_uuid": fctx.uuid,
                "function_id": fid,
                "transactional": spec.transactional,
            },
        )
        span.finish(status=status)

    def _bind_obs(self, obs) -> None:
        self._obs = obs
        self._obs_on = obs.enabled
        if not obs.enabled:
            return
        metrics = obs.metrics
        executed = metrics.counter(
            "flow_steps_executed_total",
            "Flow step bodies run live",
            labels=("kind",),
        )
        self._c_exec_step = executed.labels("step")
        self._c_exec_txn = executed.labels("transaction")
        replayed = metrics.counter(
            "flow_steps_replayed_total",
            "Flow steps answered from the journal",
            labels=("mode",),
        )
        self._c_replay_loop = replayed.labels("loop")
        self._c_replay_resume = replayed.labels("resume")
        self._h_step_seconds = metrics.histogram(
            "flow_step_seconds",
            "Wall-clock seconds per live step body",
        )

    # -- monitor surface --------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        flows = []
        for name in sorted(self._flows):
            flow = self._flows[name]
            entry = {"name": name, "version": flow.version}
            entry.update(self._stats.get(name, {}))
            flows.append(entry)
        return {"flows": flows, "counters": dict(self.counters)}


def install_flows(engine, flows, *, seed: int = 0, id_prefix: str = "wf"):
    """One-call wiring: build a runtime, install it on ``engine``,
    register ``flows``.  Safe to call again after a crash on the
    replacement engine (and from ShardedEngine/WorkflowNode configure
    callbacks, which re-run on every rebuild)."""
    runtime = FlowRuntime(seed=seed, id_prefix=id_prefix)
    runtime.install(engine)
    runtime.register(*flows)
    return runtime
