"""Durable Python workflows: the ``@workflow`` decorator front end.

Any plain Python function becomes a durable workflow: every
``@step`` / ``@transaction`` call inside it is journaled under
``(workflow_uuid, function_id)`` and answered from the journal on
replay instead of re-invoking, so a crash-resumed flow re-runs its
*code* but never its completed *steps* — idempotency for free, in the
style of the DBOS ``WorkflowContext``.

See :mod:`repro.flow.api` for the decorators,
:mod:`repro.flow.context` for the replay contract and
:mod:`repro.flow.runtime` for engine wiring.
"""

from repro.errors import FlowError, StepFailure
from repro.flow.api import Flow, StepSpec, step, transaction, workflow
from repro.flow.compile import (
    ARGS,
    DONE,
    DRIVE,
    DRIVE_PROGRAM,
    ERROR,
    JOURNAL,
    RESULT,
    compile_flow,
)
from repro.flow.context import (
    FlowContext,
    FlowSuspend,
    current_context,
    encode_args,
)
from repro.flow.ids import FlowIdAllocator
from repro.flow.runtime import (
    FLOW_SERVICE,
    FlowResult,
    FlowRuntime,
    flow_args,
    flow_result,
    install_flows,
)

__all__ = [
    "ARGS",
    "DONE",
    "DRIVE",
    "DRIVE_PROGRAM",
    "ERROR",
    "FLOW_SERVICE",
    "Flow",
    "FlowContext",
    "FlowError",
    "FlowIdAllocator",
    "FlowResult",
    "FlowRuntime",
    "FlowSuspend",
    "JOURNAL",
    "RESULT",
    "StepFailure",
    "StepSpec",
    "compile_flow",
    "current_context",
    "encode_args",
    "flow_args",
    "flow_result",
    "install_flows",
    "step",
    "transaction",
    "workflow",
]
