"""Resilience policies: retries, timeouts, circuit breaking, DLQ caps.

The paper's guarantees assume failures are *handled*: a saga
compensates, a flexible transaction's retriable members "will
eventually commit if retried a sufficient number of times" (§4.2).
These policies are the machinery that turns an infrastructure failure
(a crashing program, a dead remote node, a poisoned message) into one
of the model-level outcomes the translations already know how to
recover from — an abort return code that triggers compensation or an
alternative path.

Everything is driven by the **engine's logical clock** (advanced via
``Engine.advance_clock`` / ``Engine.drain`` / ``run_cluster``), never
wall time, so every schedule is deterministic and replayable.

* :class:`RetryPolicy` — fixed or exponential backoff with
  deterministic seeded jitter; on exhaustion either re-raises (the
  pre-resilience behaviour) or **escalates**: the activity finishes
  with a configured abort return code so dead-path elimination routes
  control into compensation / the next alternative.
* :class:`Timeout` — a clock budget for one activity's retry and
  exit-condition loops; expiry escalates the same way.
* :class:`CircuitBreaker` — the classic closed/open/half-open machine,
  one per remote node on the requester side: repeated request timeouts
  open it, an open breaker fails fast, a cooldown admits one trial.
* :func:`flexible_retry_policies` — per-program policies honouring the
  retriable/pivot typing of :class:`repro.core.flexible.FlexibleSpec`.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.errors import WorkflowError

if TYPE_CHECKING:
    from repro.core.flexible import FlexibleSpec

BACKOFFS = ("fixed", "exponential")


class RetryPolicy:
    """Bounded retry with deterministic backoff and jitter.

    ``allows(n)`` answers whether retry *n* (1-based) may run;
    ``delay(n)`` is the logical-clock backoff before it.  Jitter is
    derived from ``(seed, n)`` alone, so identical policies produce
    identical schedules on every run and after every recovery.

    ``escalate_rc`` selects the exhaustion behaviour: ``None``
    re-raises the program's failure (legacy behaviour — the engine
    surfaces a :class:`~repro.errors.ProgramError`); an integer
    finishes the activity with that return code instead, letting the
    process's own transition conditions take over (compensation block,
    next alternative path).
    """

    __slots__ = (
        "max_retries",
        "backoff",
        "base_delay",
        "factor",
        "max_delay",
        "jitter",
        "seed",
        "escalate_rc",
    )

    def __init__(
        self,
        max_retries: int = 3,
        *,
        backoff: str = "exponential",
        base_delay: float = 0.0,
        factor: float = 2.0,
        max_delay: float = 60.0,
        jitter: float = 0.0,
        seed: int = 0,
        escalate_rc: int | None = None,
    ):
        if max_retries < 0:
            raise WorkflowError("max_retries must be >= 0")
        if backoff not in BACKOFFS:
            raise WorkflowError(
                "unknown backoff %r (choose from %s)"
                % (backoff, ", ".join(BACKOFFS))
            )
        if base_delay < 0 or max_delay < 0 or jitter < 0:
            raise WorkflowError("delays and jitter must be >= 0")
        self.max_retries = max_retries
        self.backoff = backoff
        self.base_delay = base_delay
        self.factor = factor
        self.max_delay = max_delay
        self.jitter = jitter
        self.seed = seed
        self.escalate_rc = escalate_rc

    def allows(self, retry: int) -> bool:
        return retry <= self.max_retries

    def delay(self, retry: int) -> float:
        if self.backoff == "fixed":
            delay = self.base_delay
        else:
            delay = self.base_delay * (self.factor ** (retry - 1))
        delay = min(delay, self.max_delay)
        if self.jitter:
            # Seeded by (seed, retry) only: the same retry number gets
            # the same jitter in every run and after every replay.
            rng = random.Random(self.seed * 2654435761 + retry)
            delay += rng.random() * self.jitter
        return delay

    def __repr__(self) -> str:
        return "RetryPolicy(max_retries=%d, backoff=%r, escalate_rc=%r)" % (
            self.max_retries,
            self.backoff,
            self.escalate_rc,
        )


class Timeout:
    """A logical-clock budget for one activity.

    Measured from the activity's first invocation; checked whenever
    the activity would loop (exit-condition reschedule) or retry.  On
    expiry the activity finishes with ``escalate_rc``, journaled with
    the escalation flag so recovery replays the same decision.
    """

    __slots__ = ("after", "escalate_rc")

    def __init__(self, after: float, *, escalate_rc: int = 1):
        if after <= 0:
            raise WorkflowError("timeout must be > 0")
        self.after = after
        self.escalate_rc = escalate_rc

    def expired(self, started: float, now: float) -> bool:
        return now - started >= self.after

    def __repr__(self) -> str:
        return "Timeout(after=%r, escalate_rc=%d)" % (
            self.after,
            self.escalate_rc,
        )


#: Circuit breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


class CircuitBreaker:
    """Closed/open/half-open failure gate for one remote dependency.

    * **closed** — requests flow; ``failure_threshold`` consecutive
      failures trip it open.
    * **open** — :meth:`allow` is False (fail fast) until
      ``reset_after`` logical seconds pass since the trip.
    * **half-open** — one trial request is admitted; success closes
      the breaker, failure re-opens it (cooldown restarts).
    """

    __slots__ = (
        "failure_threshold",
        "reset_after",
        "state",
        "failures",
        "opened_at",
        "transitions",
    )

    def __init__(
        self, failure_threshold: int = 3, reset_after: float = 30.0
    ):
        if failure_threshold < 1:
            raise WorkflowError("failure_threshold must be >= 1")
        if reset_after <= 0:
            raise WorkflowError("reset_after must be > 0")
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self.state = CLOSED
        self.failures = 0
        self.opened_at = 0.0
        #: (state, at) history, for tests and the event bus.
        self.transitions: list[tuple[str, float]] = []

    def _transition(self, state: str, now: float) -> None:
        self.state = state
        self.transitions.append((state, now))

    def allow(self, now: float) -> bool:
        """Whether a request may be attempted at logical time ``now``."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now - self.opened_at >= self.reset_after:
                self._transition(HALF_OPEN, now)
                return True
            return False
        return False  # half-open: the single trial is already out

    def record_success(self, now: float = 0.0) -> None:
        if self.state != CLOSED:
            self._transition(CLOSED, now)
        self.failures = 0

    def record_failure(self, now: float) -> None:
        self.failures += 1
        if self.state == HALF_OPEN or (
            self.state == CLOSED and self.failures >= self.failure_threshold
        ):
            self.opened_at = now
            self._transition(OPEN, now)

    def __repr__(self) -> str:
        return "CircuitBreaker(state=%s, failures=%d)" % (
            self.state,
            self.failures,
        )


def flexible_retry_policies(
    spec: "FlexibleSpec",
    *,
    abort_rc: int,
    retriable_retries: int = 8,
    other_retries: int = 1,
    base_delay: float = 0.0,
) -> dict[str, RetryPolicy]:
    """Per-program retry policies honouring the member typing of §4.2.

    Retriable members are "guaranteed to commit if retried", so their
    programs get a generous retry budget; pivots and plain
    compensatable members get ``other_retries`` and then escalate with
    ``abort_rc`` (the flexible translation's abort convention), which
    sends control to the next alternative path.
    """
    policies: dict[str, RetryPolicy] = {}
    for name, member in spec.members.items():
        budget = retriable_retries if member.retriable else other_retries
        policies[member.program] = RetryPolicy(
            budget,
            backoff="fixed",
            base_delay=base_delay,
            escalate_rc=abort_rc,
        )
    return policies
