"""Deterministic fault injection and resilience policies.

Two halves, mirroring the split between breaking things and surviving
them:

* :mod:`repro.resilience.faults` — a seeded, replayable adversary
  (:class:`FaultInjector` + declarative :class:`FaultRule`\\ s) that
  drops/duplicates/delays bus messages, crashes activity programs,
  fails journal writes, and kills workflow nodes at chosen points.
* :mod:`repro.resilience.policies` — the survival machinery:
  :class:`RetryPolicy` with deterministic backoff,
  :class:`Timeout` escalation, a per-remote-node
  :class:`CircuitBreaker`, and the max-deliveries/dead-letter cap
  wired into :mod:`repro.wfms.messaging` and
  :mod:`repro.wfms.distributed`.

Both are zero-overhead when unused, following the null-object cost
discipline of :mod:`repro.obs`.
"""

from repro.resilience.faults import (
    SITES,
    FaultInjector,
    FaultRule,
    FiredFault,
    InjectedCrash,
    chaos_rules,
)
from repro.resilience.policies import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    RetryPolicy,
    Timeout,
    flexible_retry_policies,
)

__all__ = [
    "SITES",
    "FaultInjector",
    "FaultRule",
    "FiredFault",
    "InjectedCrash",
    "chaos_rules",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "CircuitBreaker",
    "RetryPolicy",
    "Timeout",
    "flexible_retry_policies",
]
