"""Deterministic fault injection.

Static vs Dynamic SAGAs (Lanese, arXiv:1010.5569) makes the saga
compensation guarantee precise *under failure interleavings*; the
kernel of Barros et al. (arXiv:2105.15139) treats failure handling as
a first-class workflow-modelling concern.  Both demand that recovery
semantics hold under adversarial schedules — which is only testable if
the adversary is (a) injectable and (b) replayable.

:class:`FaultInjector` is that adversary.  It holds declarative
:class:`FaultRule`\\ s and a seeded RNG; runtime components consult it
at well-defined **sites**:

=================  ============================================  ==================
site               key matched against ``FaultRule.match``       actions
=================  ============================================  ==================
``bus.send``       destination queue name                        drop, duplicate, delay
``program``        program name of the invoked activity          raise (ProgramError)
``journal.append`` journal record type                           raise (JournalError)
``journal.fsync``  durability-point reason                       raise (JournalError)
``node.pump``      workflow node name                            crash (InjectedCrash)
``snapshot.write`` checkpoint file basename                      raise (JournalError)
``compact``        journal directory basename                    raise (JournalError)
``scope.commit``   transaction-scope handle                      raise (JournalError)
``net.connection`` broker-side client connection name            reset
``net.reply``      broker-side client connection name            reset
``buslog.append``  bus-log record type                           raise (JournalError)
``buslog.fsync``   durability-point reason                       raise (JournalError)
``broker.crash``   bus operation name                            crash
=================  ============================================  ==================

``net.connection`` resets *before* the frame is served (nothing
applied); ``net.reply`` resets *after* the operation applied but
before the reply frame is written — the worst reconnect window, which
the broker's op-id dedup must make safe.  ``broker.crash`` kills the
whole broker after the operation applied (and was journaled) but
before the reply: a durable broker restarted over the same directory
must recover without losing or double-applying it.

A rule fires on a **schedule** (1-based match counts), with a
**probability** drawn from the injector's seeded RNG, or both; an
optional ``max_fires`` bounds total chaos so convergence tests stay
convergent.  Every decision consumes injector state in call order
only, so the same seed over the same execution produces bit-for-bit
the same fault schedule — the chaos suite asserts this by comparing
:attr:`FaultInjector.fired` logs across runs.

Zero overhead when absent: components hold ``None`` instead of an
injector and guard every site with one attribute test (the same
cost discipline as the :mod:`repro.obs` null objects, enforced by the
``resilience.disabled_dag_8x8`` metric in ``benchmarks/compare.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any

from repro.errors import JournalError, ProgramError, WorkflowError

#: Sites components consult, with their legal actions.
SITES: dict[str, tuple[str, ...]] = {
    "bus.send": ("drop", "duplicate", "delay"),
    "program": ("raise",),
    "journal.append": ("raise",),
    "journal.fsync": ("raise",),
    "node.pump": ("crash",),
    "snapshot.write": ("raise",),
    "compact": ("raise",),
    "scope.commit": ("raise",),
    "net.connection": ("reset",),
    "net.reply": ("reset",),
    "buslog.append": ("raise",),
    "buslog.fsync": ("raise",),
    "broker.crash": ("crash",),
}


class InjectedCrash(WorkflowError):
    """A fault rule forced a node crash; the node's volatile state is
    gone (``WorkflowNode.crash`` already ran) and the driver must
    ``rebuild`` before pumping it again."""


@dataclass(frozen=True)
class FiredFault:
    """One injector decision that fired (the replayable chaos trace)."""

    sequence: int
    site: str
    key: str
    action: str
    count: int  # the rule's 1-based match count when it fired


@dataclass(frozen=True)
class FaultRule:
    """One declarative fault: where, what, and when.

    ``match`` is an ``fnmatch`` pattern against the site key (queue,
    program, record type, node name).  ``schedule`` fires on those
    1-based match counts; ``probability`` fires per match from the
    injector's seeded RNG; both may be combined (either triggers).
    ``max_fires`` caps how often the rule fires in total; ``delay`` is
    the number of receive sweeps a delayed message sits out
    (``bus.send`` + ``action="delay"`` only).
    """

    site: str
    action: str = ""
    match: str = "*"
    probability: float = 0.0
    schedule: frozenset = frozenset()
    max_fires: int | None = None
    delay: int = 1

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise WorkflowError(
                "unknown fault site %r (choose from %s)"
                % (self.site, ", ".join(sorted(SITES)))
            )
        action = self.action or SITES[self.site][0]
        object.__setattr__(self, "action", action)
        if action not in SITES[self.site]:
            raise WorkflowError(
                "site %s does not support action %r (legal: %s)"
                % (self.site, action, ", ".join(SITES[self.site]))
            )
        if not 0.0 <= self.probability <= 1.0:
            raise WorkflowError("probability must be in [0, 1]")
        object.__setattr__(self, "schedule", frozenset(self.schedule))
        if not self.schedule and self.probability == 0.0:
            raise WorkflowError(
                "rule fires never: give a schedule and/or a probability"
            )
        if self.delay < 1:
            raise WorkflowError("delay must be >= 1 receive sweep")


@dataclass
class FaultInjector:
    """Seeded, deterministic fault source consulted by runtime sites.

    Install on the components under test::

        injector = FaultInjector(
            [FaultRule("program", match="txn_*", probability=0.2)],
            seed=7,
        )
        engine = Engine(fault_injector=injector)
        bus.install_injector(injector)

    The same seed and rules over the same call sequence reproduce the
    same decisions; :attr:`fired` is the replayable chaos trace.
    """

    rules: list[FaultRule] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        self.rules = list(self.rules)
        self._rng = random.Random(self.seed)
        self._match_counts = [0] * len(self.rules)
        self._fire_counts = [0] * len(self.rules)
        #: every fired decision, in firing order (the chaos trace).
        self.fired: list[FiredFault] = []

    # -- core decision ---------------------------------------------------

    def decide(self, site: str, key: str) -> FaultRule | None:
        """First rule of ``site`` matching ``key`` that fires, if any.

        Every matching rule's count advances (and its probability draw
        is consumed) whether or not it fires, so decisions depend only
        on the call sequence, never on which earlier rules fired.
        """
        chosen = None
        for index, rule in enumerate(self.rules):
            if rule.site != site or not fnmatchcase(key, rule.match):
                continue
            self._match_counts[index] += 1
            count = self._match_counts[index]
            fires = count in rule.schedule
            if rule.probability and self._rng.random() < rule.probability:
                fires = True
            if (
                rule.max_fires is not None
                and self._fire_counts[index] >= rule.max_fires
            ):
                fires = False
            if fires and chosen is None:
                self._fire_counts[index] += 1
                self.fired.append(
                    FiredFault(len(self.fired), site, key, rule.action, count)
                )
                chosen = rule
        return chosen

    # -- site adapters ---------------------------------------------------

    def on_send(self, queue: str) -> FaultRule | None:
        """Bus send site: returns the firing rule (drop/duplicate/
        delay) or None for a clean send."""
        return self.decide("bus.send", queue)

    def before_program(
        self, instance_id: str, activity: str, program: str
    ) -> None:
        """Program site: raises :class:`ProgramError` when a rule
        fires, exactly as a crashing external application would."""
        if self.decide("program", program) is not None:
            raise ProgramError(
                "injected fault: program %r crashed (instance %s, "
                "activity %s)" % (program, instance_id, activity)
            )

    def on_journal(
        self, operation: str, key: str, scope: str = "journal"
    ) -> None:
        """Journal site (``operation`` is ``append`` or ``fsync``):
        raises :class:`JournalError` when a rule fires.  ``scope``
        selects the site family — the engine journal consults
        ``journal.*``, the broker's write-ahead bus log ``buslog.*``."""
        if self.decide("%s.%s" % (scope, operation), key) is not None:
            raise JournalError(
                "injected fault: %s %s failed (%s)" % (scope, operation, key)
            )

    def on_pump(self, node: str) -> bool:
        """Node site: True when the node must crash this pump."""
        return self.decide("node.pump", node) is not None

    def on_store(self, site: str, key: str) -> None:
        """Durable-store sites (``snapshot.write``, ``compact``):
        raises :class:`JournalError` when a rule fires.  A fired
        ``snapshot.write`` tears the checkpoint mid-document; a fired
        ``compact`` aborts compaction before its manifest commit."""
        if self.decide(site, key) is not None:
            raise JournalError(
                "injected fault: store %s failed (%s)" % (site, key)
            )

    def on_connection(self, name: str) -> bool:
        """Socket-broker site, consulted once per received frame: True
        when the broker must reset (abruptly close) the client
        connection instead of serving the request.  The client's
        reconnect-with-backoff takes over; the retried request is a
        fresh frame and is consulted again."""
        return self.decide("net.connection", name) is not None

    def on_reply(self, name: str) -> bool:
        """Socket-broker reply site, consulted *after* an operation
        applied (and, durably, journaled) but before the reply frame is
        written: True when the broker must reset the connection with
        the reply unsent.  The retried request hits the broker's op-id
        dedup and returns the cached reply without re-applying."""
        return self.decide("net.reply", name) is not None

    def on_broker_crash(self, op: str) -> bool:
        """Broker-crash site, consulted after an operation applied and
        was journaled but before the reply: True when the whole broker
        must die on the spot (``os._exit`` in a broker process — the
        SIGKILL window the durable-broker chaos suite exercises)."""
        return self.decide("broker.crash", op) is not None

    def on_scope_commit(self, handle: str) -> None:
        """Transaction-scope commit site: raises :class:`JournalError`
        *before* the scope's COMMIT record is written, modelling a node
        crash at the commit point — the scope's transaction is left a
        loser for recovery to roll back."""
        if self.decide("scope.commit", handle) is not None:
            raise JournalError(
                "injected fault: scope commit failed (%s)" % handle
            )

    # -- bookkeeping -----------------------------------------------------

    def fire_counts(self) -> list[int]:
        """Per-rule fire totals (rule order)."""
        return list(self._fire_counts)

    def trace(self) -> list[tuple[str, str, str, int]]:
        """The fired log as comparable tuples (site, key, action,
        count) — what the chaos suite diffs across replays."""
        return [(f.site, f.key, f.action, f.count) for f in self.fired]

    def __repr__(self) -> str:
        return "FaultInjector(%d rules, seed=%d, fired=%d)" % (
            len(self.rules),
            self.seed,
            len(self.fired),
        )


def chaos_rules(
    *,
    program_match: str = "txn_*",
    program_p: float = 0.0,
    drop_p: float = 0.0,
    duplicate_p: float = 0.0,
    delay_p: float = 0.0,
    journal_p: float = 0.0,
    crash_schedule: Any = (),
    max_fires: int | None = 3,
) -> list[FaultRule]:
    """Convenience builder for the chaos suite's standard rule mix.

    Only non-zero probabilities (and a non-empty crash schedule)
    produce rules; ``max_fires`` bounds each rule so every chaos run
    eventually quiesces.
    """
    rules: list[FaultRule] = []
    if program_p:
        rules.append(
            FaultRule(
                "program",
                match=program_match,
                probability=program_p,
                max_fires=max_fires,
            )
        )
    if drop_p:
        rules.append(
            FaultRule(
                "bus.send", "drop", probability=drop_p, max_fires=max_fires
            )
        )
    if duplicate_p:
        rules.append(
            FaultRule(
                "bus.send",
                "duplicate",
                probability=duplicate_p,
                max_fires=max_fires,
            )
        )
    if delay_p:
        rules.append(
            FaultRule(
                "bus.send",
                "delay",
                probability=delay_p,
                max_fires=max_fires,
                delay=2,
            )
        )
    if journal_p:
        rules.append(
            FaultRule(
                "journal.append",
                probability=journal_p,
                max_fires=max_fires,
            )
        )
    if crash_schedule:
        rules.append(
            FaultRule("node.pump", "crash", schedule=frozenset(crash_schedule))
        )
    return rules
