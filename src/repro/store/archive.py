"""Completed-instance archive.

The paper (§3.3) notes FlowMark deletes finished processes and relies
on the audit trail for history.  :class:`InstanceArchive` is that
split made explicit: when a *root* process instance finishes, its
outcome — final containers, per-activity results, execution orders and
the audit slice of its whole subtree — is appended to a durable
archive file, and the live navigator/audit memory drops the subtree.

The file is append-only JSONL, one entry per finished root.  A torn
final line (crash mid-append) is tolerated on load: the instance's
journal records are still in the live suffix in that case, so replay
finishes it again and re-archives it — the append is idempotent by
root id.  Queries (:meth:`by_id`, :meth:`by_definition`,
:meth:`finished_between`, :meth:`outcomes`) are answered from an
in-memory index rebuilt on open.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.errors import RecoveryError
from repro.wfms.journal import read_json_lines, trim_torn_tail
from repro.wfms.model import ActivityKind

ENTRY_FORMAT = 1


def _tree_ids(navigator, root_id: str) -> list[str]:
    """The root and every descendant instance id, in creation order.

    One pass over the navigator's creation-ordered instance table
    (parents always precede children) with a growing membership set —
    this also catches children of *earlier attempts* of a looping
    block activity, which ``ai.child_instance`` no longer points to.
    """
    members = {root_id}
    ordered = []
    for instance_id, instance in navigator._instances.items():
        if instance_id == root_id or instance.parent_instance in members:
            members.add(instance_id)
            ordered.append(instance_id)
    return ordered


def _deep_order(navigator, instance) -> list[str]:
    """Activities in termination order, descending into blocks and
    subprocesses — mirrors ``Engine.execution_order`` while the
    subtree is still live."""
    order: list[str] = []
    for name in navigator._audit.execution_order(instance.instance_id):
        ai = instance.activities.get(name)
        if ai is not None and ai.activity.kind in (
            ActivityKind.BLOCK,
            ActivityKind.PROCESS,
        ):
            if ai.child_instance:
                child = navigator._instances.get(ai.child_instance)
                if child is not None:
                    order.extend(_deep_order(navigator, child))
        else:
            order.append(name)
    return order


def build_archive_entry(navigator, instance) -> dict[str, Any]:
    """The archive entry for a finished root instance (built while the
    subtree and its audit records are still in live memory)."""
    audit = navigator._audit
    tree = _tree_ids(navigator, instance.instance_id)
    instances: dict[str, Any] = {}
    for instance_id in tree:
        member = navigator._instances[instance_id]
        # Per-program invocation counts, so §3.3 accounting keeps
        # working after the live subtree is evicted.
        invocations: dict[str, int] = {}
        for ai in member.activities.values():
            if ai.activity.kind is ActivityKind.PROGRAM and ai.attempt:
                program = ai.activity.program
                invocations[program] = (
                    invocations.get(program, 0) + ai.attempt
                )
        instances[instance_id] = {
            "invocations": invocations,
            "definition": member.definition.name,
            "version": member.definition.version,
            "state": member.state.value,
            "parent_instance": member.parent_instance,
            "parent_activity": member.parent_activity,
            "rc": member.output.return_code,
            "output": member.output.to_dict(),
            "execution_order": audit.execution_order(instance_id),
            "order": _deep_order(navigator, member),
            "dead_activities": audit.dead_activities(instance_id),
        }
    return {
        "format": ENTRY_FORMAT,
        "root": instance.instance_id,
        "definition": instance.definition.name,
        "version": instance.definition.version,
        "starter": instance.starter,
        "finished_at": navigator.clock,
        "rc": instance.output.return_code,
        "output": instance.output.to_dict(),
        "order": _deep_order(navigator, instance),
        "instances": instances,
        "audit": audit.export_instances(tree),
    }


class InstanceArchive:
    """Append-only archive of finished root instances, with queries."""

    def __init__(self, path: str | os.PathLike[str], *, sync: str = "always"):
        self._path = os.fspath(path)
        self._sync = sync
        #: root id -> entry, in finish (append) order.
        self._entries: dict[str, dict[str, Any]] = {}
        #: any archived instance id -> its root id.
        self._root_of: dict[str, str] = {}
        #: definition name -> root ids.
        self._by_definition: dict[str, list[str]] = {}
        if os.path.exists(self._path):
            self._load()
            # Trim a torn tail so the healing re-append starts on a
            # fresh line instead of concatenating onto torn bytes.
            trim_torn_tail(self._path)
        self._file = open(self._path, "a", encoding="utf-8")

    def _load(self) -> None:
        for lineno, entry in read_json_lines(
            self._path, tolerate_torn_tail=True
        ):
            if (
                not isinstance(entry, dict)
                or entry.get("format") != ENTRY_FORMAT
                or "root" not in entry
            ):
                raise RecoveryError(
                    "%s:%d: malformed archive entry" % (self._path, lineno)
                )
            self._index(entry)

    def _index(self, entry: dict[str, Any]) -> None:
        root = entry["root"]
        self._entries[root] = entry
        for instance_id in entry["instances"]:
            self._root_of[instance_id] = root
        self._by_definition.setdefault(entry["definition"], []).append(root)

    @property
    def path(self) -> str:
        return self._path

    def add(self, entry: dict[str, Any]) -> bool:
        """Append one finished root's entry; False (and no write) when
        that root is already archived — re-archiving after a replay
        that re-finished a torn-tail instance is the normal heal."""
        root = entry["root"]
        if root in self._entries:
            return False
        if self._file is None:
            raise RecoveryError("archive %s is closed" % self._path)
        self._file.write(json.dumps(entry, sort_keys=True))
        self._file.write("\n")
        self._file.flush()
        if self._sync == "always":
            os.fsync(self._file.fileno())
        self._index(entry)
        return True

    # -- queries ---------------------------------------------------------

    def ids(self) -> frozenset:
        """Every archived instance id — roots *and* descendants (the
        replay cursor's skip set and compaction's drop set)."""
        return frozenset(self._root_of)

    def roots(self) -> list[str]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, instance_id: str) -> bool:
        return instance_id in self._root_of

    def instance_count(self) -> int:
        """Total archived instances including block/subprocess children."""
        return len(self._root_of)

    def by_id(self, instance_id: str) -> dict[str, Any] | None:
        """The archived view of one instance (root or descendant), or
        None.  Roots return their full entry; descendants return their
        per-instance record plus a ``root`` back-reference."""
        root = self._root_of.get(instance_id)
        if root is None:
            return None
        entry = self._entries[root]
        if instance_id == root:
            return entry
        view = dict(entry["instances"][instance_id])
        view["instance"] = instance_id
        view["root"] = root
        view["finished_at"] = entry["finished_at"]
        return view

    def by_definition(self, definition: str) -> list[dict[str, Any]]:
        return [
            self._entries[root]
            for root in self._by_definition.get(definition, ())
        ]

    def finished_between(
        self, start: float, end: float
    ) -> list[dict[str, Any]]:
        """Entries with ``start <= finished_at <= end`` (logical clock)."""
        return [
            entry
            for entry in self._entries.values()
            if start <= entry["finished_at"] <= end
        ]

    def outcomes(self, definition: str | None = None) -> dict[int, int]:
        """Return-code -> count over archived roots (optionally one
        definition's)."""
        counts: dict[int, int] = {}
        for entry in self._entries.values():
            if definition is not None and entry["definition"] != definition:
                continue
            rc = int(entry["rc"])
            counts[rc] = counts.get(rc, 0) + 1
        return counts

    # -- lifecycle -------------------------------------------------------

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if self._file is not None:
            self.flush()
            self._file.close()
            self._file = None

    def abandon(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None

    def reopen(self) -> None:
        if self._file is None:
            trim_torn_tail(self._path)
            self._file = open(self._path, "a", encoding="utf-8")

    def __repr__(self) -> str:
        return "InstanceArchive(%r, roots=%d, instances=%d)" % (
            self._path,
            len(self._entries),
            len(self._root_of),
        )
