"""The durable store: checkpoint policy + segmented journal + archive.

:class:`DurableStore` owns one on-disk directory::

    store/
      journal/                segment files + MANIFEST.json
      archive.jsonl           finished-instance archive
      checkpoint-<offset>.json  snapshots (latest ``keep_checkpoints``)

and plugs into ``Engine(store=...)``.  The engine drives it from three
places: :meth:`maybe_checkpoint` after each executed navigation step
(the ``checkpoint_every`` policy), :meth:`archive_finished` when a
root instance finishes, and
:func:`repro.wfms.recovery.replay_with_store` on ``Engine.recover()``.

Checkpoint protocol (the reason recovery is O(delta)):

1. ``journal.flush()`` — the offset about to be covered must be
   durable *before* the snapshot claims to cover it;
2. ``journal.rotate()`` — seal the active segment so the checkpoint
   boundary is also a segment boundary (compaction can then drop
   whole files, never splitting one across the offset);
3. capture + atomic checksummed write of the snapshot;
4. re-load and verify the file just written — only a *verified*
   checkpoint updates the store's covered offset or is handed to
   compaction;
5. retire snapshots beyond ``keep_checkpoints``; optionally compact.

A store instance is single-use: :meth:`attach` binds it to one
engine's obs/injector handles, mirroring how a fresh :class:`Engine`
is built per crash/recover cycle.
"""

from __future__ import annotations

import os
import re
import time
from typing import Any

from repro.errors import RecoveryError, WorkflowError
from repro.obs import resolve_observability
from repro.store.archive import InstanceArchive, build_archive_entry
from repro.store.segments import SegmentedJournal
from repro.store.snapshot import Checkpoint, capture_state, load_checkpoint

CHECKPOINT_TEMPLATE = "checkpoint-%012d.json"
_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d{12})\.json$")


class DurableStore:
    """Durability subsystem for one engine (see module docstring)."""

    def __init__(
        self,
        directory: str | os.PathLike[str],
        *,
        sync: str = "always",
        batch_size: int = 64,
        batch_interval: float = 0.05,
        checkpoint_every_records: int | None = None,
        checkpoint_interval: float | None = None,
        compact_on_checkpoint: bool = True,
        keep_checkpoints: int = 2,
        segment_max_records: int | None = None,
    ):
        if checkpoint_every_records is not None and checkpoint_every_records < 1:
            raise WorkflowError("checkpoint_every_records must be >= 1")
        if checkpoint_interval is not None and checkpoint_interval <= 0:
            raise WorkflowError("checkpoint_interval must be > 0")
        if keep_checkpoints < 1:
            raise WorkflowError("keep_checkpoints must be >= 1")
        self._directory = os.fspath(directory)
        self._sync = sync
        self._batch_size = batch_size
        self._batch_interval = batch_interval
        self._every_records = checkpoint_every_records
        self._interval = checkpoint_interval
        self._compact_on_checkpoint = compact_on_checkpoint
        self._keep_checkpoints = keep_checkpoints
        self._segment_max_records = segment_max_records
        self._journal: SegmentedJournal | None = None
        self._archive: InstanceArchive | None = None
        self._injector = None
        self._attached = False
        #: offset covered by the last *verified* checkpoint this
        #: process wrote or recovered from, or None.
        self._last_offset: int | None = None
        self._last_ckpt_clock: float | None = None
        #: set by replay_with_store: how the last recovery went.
        self.last_recovery: dict[str, Any] | None = None

    def checkpoint_every(
        self, n_records: int | None = None, *, interval: float | None = None
    ) -> "DurableStore":
        """Set (or replace) the automatic checkpoint policy: every
        ``n_records`` journal records and/or every ``interval`` logical
        seconds.  Fluent, so ``DurableStore(d).checkpoint_every(100)``
        reads as the engine-construction idiom."""
        if n_records is not None and n_records < 1:
            raise WorkflowError("checkpoint_every needs n_records >= 1")
        if interval is not None and interval <= 0:
            raise WorkflowError("checkpoint_every needs interval > 0")
        self._every_records = n_records
        self._interval = interval
        return self

    # ------------------------------------------------------------------
    # engine binding
    # ------------------------------------------------------------------

    def attach(self, *, obs=None, injector=None) -> None:
        """Open the on-disk structures and bind obs/injector handles.

        Once-only: a store instance belongs to exactly one engine —
        build a fresh :class:`DurableStore` over the same directory for
        the post-crash engine, the way chaos tests build fresh engines.
        """
        if self._attached:
            raise WorkflowError(
                "this DurableStore is already attached to an engine; "
                "build a fresh one over the same directory"
            )
        self._attached = True
        self._injector = injector
        os.makedirs(self._directory, exist_ok=True)
        obs = resolve_observability(obs)
        self._obs_on = obs.enabled
        self._tracer = obs.tracer
        metrics = obs.metrics
        self._c_checkpoints = metrics.counter(
            "wfms_store_checkpoints_total", "Checkpoints written"
        )
        self._h_checkpoint_seconds = metrics.histogram(
            "wfms_store_checkpoint_seconds",
            "Wall-clock seconds per checkpoint (flush+rotate+capture+write)",
        )
        self._c_compactions = metrics.counter(
            "wfms_store_compactions_total", "Journal compactions committed"
        )
        self._g_segments = metrics.gauge(
            "wfms_store_segments_live", "Journal segments on disk"
        )
        self._g_archive = metrics.gauge(
            "wfms_store_archive_size", "Archived instances (incl. children)"
        )
        self._journal = SegmentedJournal(
            os.path.join(self._directory, "journal"),
            sync=self._sync,
            batch_size=self._batch_size,
            batch_interval=self._batch_interval,
            segment_max_records=self._segment_max_records,
            obs=obs,
            injector=injector,
        )
        self._archive = InstanceArchive(
            os.path.join(self._directory, "archive.jsonl"), sync=self._sync
        )
        latest, __ = self.latest_checkpoint()
        self._last_offset = latest.offset if latest is not None else None
        self._last_ckpt_clock = latest.clock if latest is not None else None
        if self._obs_on:
            self._g_segments.set(self._journal.segments_live)
            self._g_archive.set(self._archive.instance_count())

    def _require_attached(self) -> None:
        if not self._attached or self._journal is None:
            raise WorkflowError(
                "DurableStore is not attached to an engine yet"
            )

    @property
    def directory(self) -> str:
        return self._directory

    @property
    def journal(self) -> SegmentedJournal:
        self._require_attached()
        return self._journal

    @property
    def archive(self) -> InstanceArchive:
        self._require_attached()
        return self._archive

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------

    def checkpoint_files(self) -> list[str]:
        """Checkpoint file paths, oldest (lowest offset) first."""
        try:
            names = os.listdir(self._directory)
        except OSError:
            return []
        found = []
        for name in names:
            match = _CHECKPOINT_RE.match(name)
            if match is not None:
                found.append((int(match.group(1)), name))
        return [
            os.path.join(self._directory, name)
            for __, name in sorted(found)
        ]

    def latest_checkpoint(self) -> tuple[Checkpoint | None, int]:
        """Newest checkpoint that loads and verifies, plus how many
        newer files were skipped as torn/corrupt (the fallback count)."""
        skipped = 0
        for path in reversed(self.checkpoint_files()):
            checkpoint = Checkpoint.load(path)
            if checkpoint is not None:
                return checkpoint, skipped
            skipped += 1
        return None, skipped

    def maybe_checkpoint(self, navigator) -> "Checkpoint | None":
        """Write a checkpoint if the policy says one is due."""
        if self._every_records is None and self._interval is None:
            return None
        journal = self._journal
        if journal is None:
            return None
        covered = self._last_offset if self._last_offset is not None else 0
        new_records = journal.next_index - covered
        if new_records <= 0:
            return None
        due = (
            self._every_records is not None
            and new_records >= self._every_records
        )
        if not due and self._interval is not None:
            last_clock = (
                self._last_ckpt_clock
                if self._last_ckpt_clock is not None
                else 0.0
            )
            due = navigator.clock - last_clock >= self._interval
        if not due:
            return None
        return self.checkpoint(navigator)

    def checkpoint(self, navigator) -> Checkpoint:
        """Write one checkpoint now (see module docstring protocol)."""
        self._require_attached()
        journal = self._journal
        span = None
        if self._obs_on and self._tracer.enabled:
            span = self._tracer.start_span("store.checkpoint", kind="store")
        started = time.perf_counter()
        try:
            journal.flush()
            journal.rotate()
            offset = journal.next_index
            state = capture_state(navigator, offset)
            path = os.path.join(
                self._directory, CHECKPOINT_TEMPLATE % offset
            )
            checkpoint = Checkpoint(state)
            checkpoint.write(path, injector=self._injector)
            if load_checkpoint(path) is None:
                raise RecoveryError(
                    "checkpoint %s failed post-write verification" % path
                )
            self._last_offset = offset
            self._last_ckpt_clock = navigator.clock
            self._retire_checkpoints()
        finally:
            elapsed = time.perf_counter() - started
            if span is not None:
                span.set_attribute("offset", journal.next_index)
                span.finish()
            if self._obs_on:
                self._h_checkpoint_seconds.observe(elapsed)
        if self._obs_on:
            self._c_checkpoints.inc()
            self._g_segments.set(journal.segments_live)
        if self._compact_on_checkpoint:
            self.compact(checkpoint)
        return checkpoint

    def _retire_checkpoints(self) -> None:
        files = self.checkpoint_files()
        for path in files[: -self._keep_checkpoints]:
            try:
                os.unlink(path)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # compaction / archive
    # ------------------------------------------------------------------

    def compact(self, checkpoint: Checkpoint | None = None) -> dict[str, Any]:
        """Drop journal history covered by ``checkpoint`` (default: the
        latest verified one on disk)."""
        self._require_attached()
        if checkpoint is None:
            checkpoint, __ = self.latest_checkpoint()
            if checkpoint is None:
                raise RecoveryError(
                    "no durable checkpoint to compact against"
                )
        stats = self._journal.compact(
            checkpoint.offset,
            drop_instances=self._archive.ids(),
            injector=self._injector,
        )
        if self._obs_on:
            self._c_compactions.inc()
            self._g_segments.set(self._journal.segments_live)
        return stats

    def archive_finished(self, navigator, instance) -> None:
        """Move a finished root instance (and its subtree) from live
        memory into the archive."""
        self._require_attached()
        entry = build_archive_entry(navigator, instance)
        self._archive.add(entry)
        tree = list(entry["instances"])
        navigator.evict_instances(tree)
        for instance_id in tree:
            navigator._audit.prune_instance(instance_id)
        if self._obs_on:
            self._g_archive.set(self._archive.instance_count())

    # ------------------------------------------------------------------
    # status / lifecycle
    # ------------------------------------------------------------------

    def status(self, clock: float | None = None) -> dict[str, Any]:
        """Operator view (``Engine.monitor``/``store_status``, the
        monitor CLI's STORE line)."""
        self._require_attached()
        journal = self._journal
        covered = self._last_offset
        out = {
            "enabled": True,
            "directory": self._directory,
            "journal_records": journal.next_index,
            "segments_live": journal.segments_live,
            "archived_roots": len(self._archive),
            "archived_instances": self._archive.instance_count(),
            "checkpoints": len(self.checkpoint_files()),
            "last_checkpoint_offset": covered,
            "checkpoint_lag_records": (
                journal.next_index - covered if covered is not None else None
            ),
            "last_checkpoint_age_seconds": (
                clock - self._last_ckpt_clock
                if clock is not None and self._last_ckpt_clock is not None
                else None
            ),
        }
        if self.last_recovery is not None:
            out["last_recovery"] = dict(self.last_recovery)
        return out

    def flush(self) -> None:
        self._require_attached()
        self._journal.flush()
        self._archive.flush()

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()
        if self._archive is not None:
            self._archive.close()

    def abandon(self) -> None:
        """Release file handles without final commits (failing disk)."""
        if self._journal is not None:
            self._journal.abandon()
        if self._archive is not None:
            self._archive.abandon()

    def reopen(self) -> None:
        self._require_attached()
        self._journal.reopen()
        self._archive.reopen()

    def __repr__(self) -> str:
        return "DurableStore(%r, attached=%s)" % (
            self._directory,
            self._attached,
        )
