"""Segmented journal: numbered segment files under one manifest.

A :class:`SegmentedJournal` is a drop-in :class:`~repro.wfms.journal.
Journal` whose backing storage is a *directory*:

* ``segment-%08d.jsonl`` — one JSON record per line.  The highest-id
  segment is **active** (appended to, torn tail tolerated on load);
  all earlier segments are **sealed** by :meth:`rotate` (fsynced
  whole, so any decode error in one is corruption, never a clean
  crash).
* ``MANIFEST.json`` — the directory's source of truth: segment order,
  each sealed segment's record count and first global record index.
  The manifest is only ever replaced atomically (temp + rename +
  directory fsync) and *always last*: rotation and compaction first
  make the new segment files durable, then commit the manifest.  A
  crash between the two leaves the old manifest naming the old files
  — fully consistent — plus at most an orphan file the next
  compaction ignores.

Every record carries a **global index** (0-based append order across
the directory's lifetime).  Dense segments store indices implicitly
(``first`` + line number); a segment rewritten by :meth:`compact`
becomes *sparse* and stores ``{"i": index, "r": record}`` rows, since
compaction punches holes in the sequence.

:meth:`compact` takes the latest durable checkpoint's covered offset:
sealed segments whose records all precede the offset are dropped
outright, and the single sealed segment straddling the offset is
rewritten keeping only records past the offset that belong to
unfinished (non-archived) instances.  The active segment is never
touched.

Sync policies (``always | batch | never``), the write-then-record
memory discipline, and the ``journal.append`` / ``journal.fsync``
fault-injection sites are all inherited unchanged from the base
class — the chaos suite applies as-is.
"""

from __future__ import annotations

import json
import os
import tempfile
from bisect import bisect_left
from typing import Any, Iterable

from repro.errors import RecoveryError
from repro.wfms.journal import (
    Journal,
    _read_file,
    read_json_lines,
    trim_torn_tail,
)

MANIFEST_FORMAT = 1
MANIFEST_NAME = "MANIFEST.json"
SEGMENT_TEMPLATE = "segment-%08d.jsonl"
COMPACTED_TEMPLATE = "segment-%08d.c%d.jsonl"


def _fsync_dir(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class SegmentedJournal(Journal):
    """Journal over a directory of segments with a manifest.

    ``segment_max_records`` enables automatic :meth:`rotate` once the
    active segment reaches that many records (checkpointing also
    rotates, so a compaction boundary exists at every checkpoint).
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        *,
        sync: str = "always",
        batch_size: int = 64,
        batch_interval: float = 0.05,
        segment_max_records: int | None = None,
        obs=None,
        injector=None,
    ):
        # Base init with path=None: sync policy, buffers, obs
        # instruments and the injector — no file handling.
        super().__init__(
            None,
            sync=sync,
            batch_size=batch_size,
            batch_interval=batch_interval,
            obs=obs,
            injector=injector,
        )
        if segment_max_records is not None and segment_max_records < 1:
            raise ValueError("segment_max_records must be >= 1")
        self._directory = os.fspath(directory)
        self._segment_max_records = segment_max_records
        os.makedirs(self._directory, exist_ok=True)
        #: manifest entries, oldest first; the last one is active.
        self._segments: list[dict[str, Any]] = []
        self._compactions = 0
        #: global record index per row of ``self._memory`` (parallel
        #: lists; strictly increasing, with holes after compaction).
        self._indices: list[int] = []
        self._next_index = 0
        self._load()
        self._path = self._directory
        # A torn tail on the active file (crash mid-append) is trimmed
        # before appending so new records never concatenate onto it.
        trim_torn_tail(self._active_file())
        self._file = open(self._active_file(), "a", encoding="utf-8")

    # ------------------------------------------------------------------
    # layout helpers
    # ------------------------------------------------------------------

    @property
    def directory(self) -> str:
        return self._directory

    @property
    def next_index(self) -> int:
        """Global index the next appended record will get — equally,
        the total number of records ever appended."""
        return self._next_index

    @property
    def segments_live(self) -> int:
        return len(self._segments)

    def _segment_path(self, entry: dict[str, Any]) -> str:
        return os.path.join(self._directory, entry["file"])

    def _manifest_path(self) -> str:
        return os.path.join(self._directory, MANIFEST_NAME)

    def _active_entry(self) -> dict[str, Any]:
        return self._segments[-1]

    def _active_file(self) -> str:
        return self._segment_path(self._active_entry())

    def _active_count(self) -> int:
        return self._next_index - self._active_entry()["first"]

    def manifest(self) -> dict[str, Any]:
        """A copy of the manifest document (inspection/tests)."""
        return {
            "format": MANIFEST_FORMAT,
            "compactions": self._compactions,
            "segments": [dict(entry) for entry in self._segments],
        }

    # ------------------------------------------------------------------
    # load / manifest commit
    # ------------------------------------------------------------------

    def _load(self) -> None:
        manifest_path = self._manifest_path()
        if not os.path.exists(manifest_path):
            self._segments = [
                {
                    "id": 0,
                    "file": SEGMENT_TEMPLATE % 0,
                    "first": 0,
                    "count": None,
                    "sparse": False,
                }
            ]
            self._write_manifest()
            return
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except ValueError as exc:
            raise RecoveryError(
                "%s: corrupt journal manifest (%s)" % (manifest_path, exc)
            ) from None
        if (
            not isinstance(document, dict)
            or document.get("format") != MANIFEST_FORMAT
            or not document.get("segments")
        ):
            raise RecoveryError(
                "%s: unrecognized journal manifest" % manifest_path
            )
        self._compactions = int(document.get("compactions", 0))
        self._segments = [dict(entry) for entry in document["segments"]]
        for entry in self._segments[:-1]:
            self._load_sealed(entry)
        self._load_active(self._segments[-1])

    def _load_sealed(self, entry: dict[str, Any]) -> None:
        path = self._segment_path(entry)
        if not os.path.exists(path):
            raise RecoveryError(
                "%s: sealed segment named by the manifest is missing" % path
            )
        count = 0
        if entry.get("sparse"):
            for lineno, row in read_json_lines(path, tolerate_torn_tail=False):
                if (
                    not isinstance(row, dict)
                    or not isinstance(row.get("i"), int)
                    or not isinstance(row.get("r"), dict)
                    or "type" not in row["r"]
                ):
                    raise RecoveryError(
                        "%s:%d: malformed sparse journal row" % (path, lineno)
                    )
                self._indices.append(row["i"])
                self._memory.append(row["r"])
                count += 1
        else:
            first = int(entry["first"])
            for record in _read_file(path, tolerate_torn_tail=False):
                self._indices.append(first + count)
                self._memory.append(record)
                count += 1
        if count != entry["count"]:
            raise RecoveryError(
                "%s: sealed segment holds %d records, manifest says %d"
                % (path, count, entry["count"])
            )

    def _load_active(self, entry: dict[str, Any]) -> None:
        path = self._segment_path(entry)
        first = int(entry["first"])
        count = 0
        # A crash between manifest commit and file creation leaves the
        # active file missing: that is an empty active segment.
        if os.path.exists(path):
            for record in _read_file(path, tolerate_torn_tail=True):
                self._indices.append(first + count)
                self._memory.append(record)
                count += 1
        self._next_index = first + count

    def _write_manifest(self) -> None:
        document = self.manifest()
        path = self._manifest_path()
        fd, tmp = tempfile.mkstemp(
            prefix=MANIFEST_NAME + ".", suffix=".tmp", dir=self._directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle, sort_keys=True)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        _fsync_dir(self._directory)

    # ------------------------------------------------------------------
    # appends / rotation
    # ------------------------------------------------------------------

    def append(self, record: dict[str, Any]) -> None:
        super().append(record)
        # Only reached when the base append succeeded (write-then-
        # record): the global index mirrors the memory row exactly.
        self._indices.append(self._next_index)
        self._next_index += 1
        if (
            self._segment_max_records is not None
            and self._active_count() >= self._segment_max_records
            and self._file is not None
        ):
            self.rotate()

    def rotate(self) -> None:
        """Seal the active segment and open a fresh one.

        No-op on an empty active segment or a closed journal.  The
        sealed file is committed (flushed + fsynced) before the
        manifest names it sealed; a crash in between reloads it as a
        still-active segment, which is equivalent.
        """
        if self._file is None or self._active_count() == 0:
            return
        self._commit("rotate")
        self._file.close()
        self._file = None
        active = self._active_entry()
        active["count"] = self._active_count()
        next_id = active["id"] + 1
        self._segments.append(
            {
                "id": next_id,
                "file": SEGMENT_TEMPLATE % next_id,
                "first": self._next_index,
                "count": None,
                "sparse": False,
            }
        )
        self._write_manifest()
        self._file = open(self._active_file(), "a", encoding="utf-8")

    def reopen(self) -> None:
        if self._file is None:
            trim_torn_tail(self._active_file())
            self._file = open(self._active_file(), "a", encoding="utf-8")

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def suffix(self, offset: int) -> list[dict[str, Any]]:
        """Records with global index >= ``offset`` (the replay suffix
        past a checkpoint)."""
        return self._memory[bisect_left(self._indices, offset) :]

    def indices(self) -> list[int]:
        return list(self._indices)

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------

    def compact(
        self,
        offset: int,
        *,
        drop_instances: Iterable[str] = (),
        injector=None,
    ) -> dict[str, Any]:
        """Drop journal history covered by a durable checkpoint.

        ``offset`` is the checkpoint's covered offset — every record
        with a smaller index is reconstructible from the snapshot.
        Sealed segments wholly below the offset are dropped; the one
        sealed segment straddling it is rewritten (sparse) keeping
        only records past the offset whose instance is not in
        ``drop_instances`` (the archive's finished set — the replay
        cursor skips their records anyway).

        Crash-safety: the rewritten file is written and fsynced under
        a fresh generation name, the ``compact`` injector site is
        consulted, and only then is the manifest committed.  Any crash
        before the commit leaves the previous manifest and files fully
        intact (plus an ignored orphan file); the old files are
        unlinked best-effort only after the commit.
        """
        dropped = set(drop_instances)
        removed: list[dict[str, Any]] = []
        survivors = list(self._segments)
        while (
            len(survivors) > 1
            and survivors[0]["count"] is not None
            and self._segment_end(survivors[0]) <= offset
        ):
            removed.append(survivors.pop(0))
        head = survivors[0]
        rewrite = (
            head["count"] is not None
            and head["first"] < offset < self._segment_end(head)
        )
        stats = {
            "offset": int(offset),
            "segments_dropped": len(removed),
            "records_dropped": sum(e["count"] for e in removed),
            "rewritten": rewrite,
        }
        new_entry = None
        kept_indices: set[int] = set()
        rewrite_range: tuple[int, int] | None = None
        if rewrite:
            rewrite_range = (int(head["first"]), self._segment_end(head))
            new_entry, rows = self._rewrite_segment(head, offset, dropped)
            kept_indices = {index for index, __ in rows}
            stats["records_dropped"] += head["count"] - len(rows)
        if injector is not None:
            # An injected compaction failure models a crash after the
            # rewrite but before the manifest commit.
            injector.on_store("compact", os.path.basename(self._directory))
        if not removed and not rewrite:
            stats["segments_live"] = len(self._segments)
            return stats
        old_head_file = head["file"] if rewrite else None
        if rewrite:
            if new_entry is None:
                # Nothing in the straddler survived: the segment goes
                # away entirely rather than becoming an empty file.
                survivors.pop(0)
            else:
                survivors[0] = new_entry
        self._segments = survivors
        self._compactions += 1
        self._write_manifest()
        for entry in removed:
            self._unlink_quiet(self._segment_path(entry))
        if old_head_file is not None:
            self._unlink_quiet(os.path.join(self._directory, old_head_file))
        # Mirror the on-disk drop in the parallel memory lists, so
        # resident size is bounded by live history too.
        floor = int(self._segments[0]["first"])
        indices: list[int] = []
        memory: list[dict[str, Any]] = []
        for index, record in zip(self._indices, self._memory):
            if index < floor:
                continue
            if (
                rewrite_range is not None
                and rewrite_range[0] <= index < rewrite_range[1]
                and index not in kept_indices
            ):
                continue
            indices.append(index)
            memory.append(record)
        self._indices = indices
        self._memory = memory
        stats["segments_live"] = len(self._segments)
        return stats

    @staticmethod
    def _segment_end(entry: dict[str, Any]) -> int:
        """One past the highest global index a sealed segment may hold."""
        if entry.get("sparse"):
            return int(entry["last"]) + 1
        return int(entry["first"]) + int(entry["count"])

    def _rewrite_segment(
        self, entry: dict[str, Any], offset: int, dropped: set[str]
    ) -> tuple[dict[str, Any] | None, list[tuple[int, dict[str, Any]]]]:
        """Write the straddling segment's surviving rows to a fresh
        sparse file; returns (new manifest entry or None, kept rows).
        No file is written when nothing survives."""
        lo = bisect_left(self._indices, entry["first"])
        hi = bisect_left(self._indices, self._segment_end(entry))
        rows = [
            (index, record)
            for index, record in zip(
                self._indices[lo:hi], self._memory[lo:hi]
            )
            if index >= offset and record.get("instance") not in dropped
        ]
        if not rows:
            return None, rows
        filename = COMPACTED_TEMPLATE % (entry["id"], self._compactions + 1)
        path = os.path.join(self._directory, filename)
        with open(path, "w", encoding="utf-8") as handle:
            for index, record in rows:
                handle.write(
                    json.dumps({"i": index, "r": record}, sort_keys=True)
                )
                handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        return (
            {
                "id": entry["id"],
                "file": filename,
                "first": rows[0][0],
                "last": rows[-1][0],
                "count": len(rows),
                "sparse": True,
            },
            rows,
        )

    @staticmethod
    def _unlink_quiet(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass
