"""Durable state store: checkpoints, segmented journal, archive.

The paper's forward-recovery story (§3.3) resumes a process "from the
point where the failure occurred" by replaying recorded per-activity
state.  The base implementation replays the *entire* journal on every
recovery, so restart time and disk footprint grow without bound.  This
package bounds both with the classic checkpoint-plus-log pattern:

* :mod:`repro.store.snapshot` — atomic, checksummed point-in-time
  captures of navigator state, each covering a journal offset;
* :mod:`repro.store.segments` — the journal as a directory of sealed
  segment files plus a manifest, with crash-safe compaction that drops
  history already covered by a durable checkpoint;
* :mod:`repro.store.archive` — finished instances move out of live
  memory into an append-only, queryable archive (the paper notes
  FlowMark deletes finished processes and keeps the audit trail as
  history);
* :mod:`repro.store.durable` — :class:`DurableStore` ties the three
  together and plugs into ``Engine(store=...)``.

Recovery becomes O(delta since last checkpoint) instead of
O(full history); :func:`repro.wfms.recovery.replay_with_store` holds
the restore-then-replay-suffix logic and the argument for why it is
equivalent to a full replay.
"""

from repro.store.archive import InstanceArchive
from repro.store.durable import DurableStore
from repro.store.segments import SegmentedJournal
from repro.store.snapshot import (
    Checkpoint,
    capture_state,
    load_checkpoint,
    restore_state,
    write_checkpoint,
)

__all__ = [
    "Checkpoint",
    "DurableStore",
    "InstanceArchive",
    "SegmentedJournal",
    "capture_state",
    "load_checkpoint",
    "restore_state",
    "write_checkpoint",
]
