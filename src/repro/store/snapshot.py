"""Checkpoint snapshots of navigator state.

A :class:`Checkpoint` is a point-in-time, JSON-serializable capture of
everything a navigator needs to resume live instances without
replaying the journal prefix it covers: the instances themselves
(activity states, attempts, containers, connector evaluations), the
instance-id sequence counter, the logical clock, the audit slice of
the live instances, and the set of registered definition
name+version pairs the instances were started against.  The
``offset`` names the first journal record *not* covered — recovery
restores the snapshot and replays only the suffix from ``offset`` on
(:func:`repro.wfms.recovery.replay_with_store`).

What is deliberately **not** captured: retry counters, timeout start
times and backoff due-times.  Those are volatile in the base system
too — a crash plus full-journal replay resets them (failed invocations
are never journaled) — so restoring them would make checkpointed
recovery *diverge* from the full-replay semantics it must reproduce.

Durability protocol (write): serialize → write to a temp file in the
same directory → flush + fsync → ``os.replace`` onto the final name →
fsync the directory.  A crash at any point leaves either the old
complete file or the new complete file visible.  Each file carries a
format version and a SHA-256 checksum over its canonical state JSON;
:func:`load_checkpoint` returns ``None`` for anything torn, truncated
or tampered, and the store falls back to the previous snapshot (longer
replay, never wrong state).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any

from repro.errors import RecoveryError
from repro.wfms.instance import ActivityState, ProcessInstance, ProcessState

FORMAT_VERSION = 1


def _checksum(state: dict[str, Any]) -> str:
    canonical = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def fsync_dir(path: str) -> None:
    """fsync a directory so a rename inside it is durable."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# ----------------------------------------------------------------------
# capture
# ----------------------------------------------------------------------


def _activity_state(ai) -> dict[str, Any]:
    return {
        "state": ai.state.value,
        "dead": ai.dead,
        "attempt": ai.attempt,
        "forced": ai.forced,
        "claimed_by": ai.claimed_by,
        "child_instance": ai.child_instance,
        "incoming": dict(ai.incoming),
        "output": None if ai.output is None else ai.output.to_dict(),
    }


def _instance_state(instance: ProcessInstance) -> dict[str, Any]:
    return {
        "instance": instance.instance_id,
        "definition": instance.definition.name,
        "version": instance.definition.version,
        "state": instance.state.value,
        "starter": instance.starter,
        "parent_instance": instance.parent_instance,
        "parent_activity": instance.parent_activity,
        "input": instance.input.to_dict(),
        "output": instance.output.to_dict(),
        "activities": {
            name: _activity_state(ai)
            for name, ai in instance.activities.items()
        },
    }


def capture_state(navigator, offset: int) -> dict[str, Any]:
    """Serialize the navigator's live state as of journal ``offset``.

    ``navigator._instances`` is insertion-ordered with parents created
    before their block/subprocess children, and the capture preserves
    that order — restore relies on it to resolve each child's
    definition through its already-restored parent.
    """
    registry = navigator._definitions
    definitions = [
        [name, version]
        for name in registry.names()
        for version in registry.versions(name)
    ]
    instance_ids = list(navigator._instances)
    return {
        "offset": int(offset),
        "clock": navigator.clock,
        "sequence": navigator._sequence,
        "definitions": definitions,
        "instances": [
            _instance_state(instance)
            for instance in navigator._instances.values()
        ],
        "audit": navigator._audit.export_instances(instance_ids),
        "audit_next": navigator._audit.next_sequence,
    }


# ----------------------------------------------------------------------
# restore
# ----------------------------------------------------------------------


def _resolve_definition(navigator, saved: dict[str, Any]):
    """The ProcessDefinition a saved instance was running.

    Root and subprocess instances resolve through the registry (name +
    pinned version).  *Block* children are special: their definition is
    embedded in the parent's activity, never registered — so it is
    looked up on the already-restored parent instance, exactly where
    ``_start_child`` found it.
    """
    from repro.errors import DefinitionError
    from repro.wfms.model import ActivityKind

    parent_id = saved.get("parent_instance", "")
    if parent_id:
        parent = navigator._instances.get(parent_id)
        if parent is None:
            raise RecoveryError(
                "checkpoint lists child %s before its parent %s"
                % (saved["instance"], parent_id)
            )
        activity = parent.activity(saved["parent_activity"]).activity
        if activity.kind is ActivityKind.BLOCK:
            assert activity.block is not None
            return activity.block
    try:
        return navigator._definitions.get(
            saved["definition"], saved.get("version")
        )
    except DefinitionError as exc:
        raise RecoveryError(
            "checkpoint instance %s needs unregistered definition %s@%s"
            % (saved["instance"], saved["definition"], saved.get("version"))
        ) from exc


def _restore_instance(navigator, saved: dict[str, Any]) -> ProcessInstance:
    definition = _resolve_definition(navigator, saved)
    plan = navigator._definitions.plan_for(definition)
    instance = ProcessInstance(
        saved["instance"],
        definition,
        starter=saved.get("starter", ""),
        parent_instance=saved.get("parent_instance", ""),
        parent_activity=saved.get("parent_activity", ""),
        plan=plan,
    )
    instance.input.load_dict(saved["input"])
    instance.output.load_dict(saved["output"])
    for name, data in saved["activities"].items():
        ai = instance.activities[name]
        ai.dead = bool(data["dead"])
        ai.attempt = int(data["attempt"])
        ai.forced = bool(data["forced"])
        ai.claimed_by = data.get("claimed_by", "")
        ai.child_instance = data.get("child_instance", "")
        ai.incoming = dict(data["incoming"])
        if data["output"] is not None:
            ai.output = plan.output_container(name)
            ai.output.load_dict(data["output"])
        # State last: the setter maintains the owner's live-activity
        # counter, so every other field must already be in place.
        ai.state = ActivityState(data["state"])
    instance.state = ProcessState(saved["state"])
    return instance


def restore_state(navigator, state: dict[str, Any]) -> int:
    """Rebuild navigator state from a captured snapshot; returns the
    number of instances restored.

    The navigator must be freshly built (no instances).  Definitions
    the snapshot's instances reference must already be registered —
    the same contract full replay has for ``process_started`` records.
    """
    if navigator._instances:
        raise RecoveryError(
            "restore_state needs a fresh navigator (it has %d instances)"
            % len(navigator._instances)
        )
    for saved in state["instances"]:
        instance = _restore_instance(navigator, saved)
        navigator._instances[instance.instance_id] = instance
        navigator._index_instance(instance)
        if (
            navigator._obs_on
            and instance.state is not ProcessState.FINISHED
        ):
            navigator._g_running.inc()
    navigator.set_sequence(int(state["sequence"]))
    navigator.clock = float(state["clock"])
    navigator._audit.restore(state["audit"], int(state["audit_next"]))
    return len(state["instances"])


# ----------------------------------------------------------------------
# durable files
# ----------------------------------------------------------------------


def write_checkpoint(
    path: str | os.PathLike[str],
    state: dict[str, Any],
    *,
    injector=None,
) -> None:
    """Atomically write ``state`` as a checkpoint file at ``path``.

    The ``snapshot.write`` fault-injection site tears the write: half
    the document lands on the *final* path (simulating a crash after a
    non-atomic writer got part way) before the injected failure
    surfaces — which is exactly what the checksum must catch on load.
    """
    path = os.fspath(path)
    document = {
        "format": FORMAT_VERSION,
        "checksum": _checksum(state),
        "state": state,
    }
    data = json.dumps(document, sort_keys=True)
    if injector is not None:
        try:
            injector.on_store("snapshot.write", os.path.basename(path))
        except Exception:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(data[: len(data) // 2])
                handle.flush()
                os.fsync(handle.fileno())
            raise
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(data)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    fsync_dir(directory)


def load_checkpoint(path: str | os.PathLike[str]) -> dict[str, Any] | None:
    """The state dict of a checkpoint file, or ``None`` when the file
    is missing, torn, truncated, of an unknown format version, or its
    checksum does not match — anything but a verified-complete
    snapshot makes recovery fall back to an older one."""
    path = os.fspath(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(document, dict):
        return None
    if document.get("format") != FORMAT_VERSION:
        return None
    state = document.get("state")
    if not isinstance(state, dict):
        return None
    if document.get("checksum") != _checksum(state):
        return None
    return state


class Checkpoint:
    """One durable snapshot: captured state plus the file it lives in."""

    def __init__(self, state: dict[str, Any], path: str | None = None):
        self.state = state
        self.path = path

    @property
    def offset(self) -> int:
        """Index of the first journal record *not* covered."""
        return int(self.state["offset"])

    @property
    def sequence(self) -> int:
        return int(self.state["sequence"])

    @property
    def clock(self) -> float:
        return float(self.state["clock"])

    @property
    def instance_count(self) -> int:
        return len(self.state["instances"])

    @classmethod
    def capture(cls, navigator, offset: int) -> "Checkpoint":
        return cls(capture_state(navigator, offset))

    @classmethod
    def load(cls, path: str | os.PathLike[str]) -> "Checkpoint | None":
        state = load_checkpoint(path)
        if state is None:
            return None
        return cls(state, os.fspath(path))

    def write(self, path: str | os.PathLike[str], *, injector=None) -> None:
        write_checkpoint(path, self.state, injector=injector)
        self.path = os.fspath(path)

    def restore_into(self, navigator) -> int:
        return restore_state(navigator, self.state)

    def __repr__(self) -> str:
        return "Checkpoint(offset=%d, instances=%d)" % (
            self.offset,
            self.instance_count,
        )
