"""Multidatabase — autonomous local databases (§4.2's setting).

"Flexible transactions work in the context of heterogeneous multibase
environments.  In such environments, each local database acts
independently from the others.  Since a local database can unilaterally
abort a transaction, it is not possible to enforce the commit semantics
of global transactions."

A :class:`Multidatabase` is a federation of :class:`LocalDatabase`
sites.  There is deliberately **no global commit protocol**: a global
transaction is just a set of local transactions, each of which commits
or aborts on its own — which is exactly the gap Flexible Transactions
(and their workflow implementation) close with compensation, retries
and alternative paths.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import TransactionError
from repro.tx.database import SimDatabase, Transaction
from repro.tx.failures import FailurePolicy, unilateral_abort_hook


class LocalDatabase(SimDatabase):
    """A site in the federation; may unilaterally abort at commit."""

    def __init__(self, name: str, *, lock_timeout: float = 5.0):
        super().__init__(name, lock_timeout=lock_timeout)

    def set_abort_policy(self, policy: FailurePolicy | None) -> None:
        """Install (or clear) a unilateral-abort policy."""
        self.on_commit = (
            None if policy is None else unilateral_abort_hook(policy)
        )


class Multidatabase:
    """A federation of autonomous local databases."""

    def __init__(self) -> None:
        self._sites: dict[str, LocalDatabase] = {}

    def add_site(self, name: str, *, lock_timeout: float = 5.0) -> LocalDatabase:
        if name in self._sites:
            raise TransactionError("site %r already exists" % name)
        site = LocalDatabase(name, lock_timeout=lock_timeout)
        self._sites[name] = site
        return site

    def site(self, name: str) -> LocalDatabase:
        try:
            return self._sites[name]
        except KeyError:
            raise TransactionError("unknown site %r" % name) from None

    def sites(self) -> Iterator[LocalDatabase]:
        for name in sorted(self._sites):
            yield self._sites[name]

    def __contains__(self, name: str) -> bool:
        return name in self._sites

    def begin_at(self, site: str, txn_id: str = "") -> Transaction:
        """Begin a *local* transaction at one site.  There is no
        ``begin_global``: the federation offers no global atomicity —
        that is the whole point."""
        return self.site(site).begin(txn_id)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """site -> committed-ish state (current values) of every site."""
        return {name: db.snapshot() for name, db in sorted(self._sites.items())}

    def total_commits(self) -> int:
        return sum(db.commits for db in self._sites.values())

    def total_aborts(self) -> int:
        return sum(db.aborts for db in self._sites.values())
