"""Subtransactions — the bridge between transaction models, the
transactional substrate and the workflow engine.

A :class:`Subtransaction` wraps a body (a callable receiving an open
:class:`~repro.tx.database.Transaction`) together with the database it
runs against and a failure policy.  Executing it runs one ACID attempt
and reports a :class:`SubtransactionOutcome`.

``as_program`` adapts a subtransaction into a registered WFMS program:
the paper's translations communicate outcomes through return codes, and
the two sections use opposite conventions (saga appendix: RC 0 =
success; flexible §4.2: RC 1 = commit), so the adapter takes the codes
explicitly.  If the activity's output container declares a ``State``
member, the adapter records 1/0 for committed/aborted there — the
variable Figure 2 maps into the forward block's output container.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import TransactionAborted
from repro.tx.database import SimDatabase, Transaction, TxnState
from repro.tx.failures import AlwaysCommit, FailurePolicy

Body = Callable[[Transaction], None]


@dataclass(frozen=True)
class SubtransactionOutcome:
    name: str
    committed: bool
    attempt: int
    reason: str = ""


@dataclass
class Subtransaction:
    """One unit of work with commit/abort semantics."""

    name: str
    database: SimDatabase
    body: Body = lambda txn: None
    policy: FailurePolicy = field(default_factory=AlwaysCommit)
    attempts: int = 0
    #: Shared event list; every attempt appends its outcome here so
    #: executors and experiments can assert execution orders.
    recorder: Optional[list[SubtransactionOutcome]] = None

    def execute(self) -> SubtransactionOutcome:
        """Run one attempt; never raises for modelled aborts.

        A body that raises anything *other* than
        :class:`TransactionAborted` is a programming error, not a
        modelled abort — the exception propagates, but the still-active
        transaction is aborted first so its strict-2PL locks are
        released instead of being held forever.
        """
        self.attempts += 1
        txn = self.database.begin()
        try:
            self.body(txn)
            if self.policy.should_abort(self.attempts):
                txn.abort(reason="injected abort")
                outcome = self._outcome(False, "injected abort")
            else:
                txn.commit()  # may raise on a unilateral local abort
                outcome = self._outcome(True)
        except TransactionAborted as exc:
            if txn.state is TxnState.ACTIVE:
                txn.abort(reason=exc.reason)
            outcome = self._outcome(False, exc.reason)
        finally:
            if txn.state is TxnState.ACTIVE:
                txn.abort(reason="unmodelled failure")
        if self.recorder is not None:
            self.recorder.append(outcome)
        return outcome

    def _outcome(self, committed: bool, reason: str = "") -> SubtransactionOutcome:
        return SubtransactionOutcome(self.name, committed, self.attempts, reason)

    def as_program(
        self,
        *,
        commit_rc: int = 0,
        abort_rc: int = 1,
        passthrough: tuple[tuple[str, str], ...] = (),
    ) -> Callable[..., int]:
        """Adapt into a WFMS program with the given RC convention.

        ``passthrough`` pairs copy input members into output members —
        the saga compensation chain uses this to forward the State flag
        of the *next* compensation in reverse order.
        """

        def program(ctx) -> int:
            outcome = self.execute()
            if ctx.output.has("State"):
                ctx.output.set("State", 1 if outcome.committed else 0)
            for in_path, out_path in passthrough:
                if ctx.input.has(in_path) and ctx.output.has(out_path):
                    ctx.output.set(out_path, ctx.input.get(in_path))
            return commit_rc if outcome.committed else abort_rc

        program.__name__ = "subtransaction_%s" % self.name
        return program


def write_value(key: str, value) -> Body:
    """Body helper: write one key."""

    def body(txn: Transaction) -> None:
        txn.write(key, value)

    return body


def transfer(source: str, target: str, amount: float | int) -> Body:
    """Body helper: move ``amount`` between two keys of one database,
    aborting when funds are insufficient."""

    def body(txn: Transaction) -> None:
        balance = txn.read(source, 0)
        if balance < amount:
            raise TransactionAborted(
                "insufficient funds in %s" % source, reason="insufficient funds"
            )
        txn.write(source, balance - amount)
        txn.increment(target, amount)

    return body


def compensate_transfer(source: str, target: str, amount: float | int) -> Body:
    """Body helper: the compensating transfer (money flows back)."""
    return transfer(target, source, amount)
