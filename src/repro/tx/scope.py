"""Cross-activity transaction scopes.

Every activity so far opened and closed its own subtransaction, so
transaction models that need a *shared* transactional context across
activities (nested and open-nested models, pivot-then-retriable
chains) were inexpressible.  A :class:`TransactionScope` is one open
:class:`~repro.tx.database.Transaction` whose lifetime spans many
activities: ``begin_scope`` opens it, the handle travels through data
containers like any other workflow datum, intermediate activities read
and write under it, and ``commit_scope`` / ``rollback_scope`` end it.

Scopes declare an **isolation level**:

* :attr:`IsolationLevel.SERIALIZABLE` — the substrate's native strict
  2PL: shared and exclusive locks held to scope end.
* :attr:`IsolationLevel.READ_COMMITTED` — read locks are released
  immediately after each read (short read locks).  Dirty reads remain
  impossible because writers hold exclusive locks to transaction end;
  repeatable read is deliberately given up.  Keys the scope itself has
  written stay locked exclusively (strictness for writes is never
  weakened).

and a **logical-clock timeout**: the :class:`ScopeManager` advances a
tick per scope operation, and a scope whose age exceeds its budget is
rolled back at its next use — deterministic, replayable, and
independent of wall-clock time.

Crash semantics: the registry is volatile engine state, but the
scope's transaction writes WAL records in the shared database.  After
a crash, :meth:`ScopeManager.recover` rolls back every still-active
scope transaction (WAL undo releases its locks), so a torn scope
leaves **no partial writes** — replayed workflow histories then route
through their rollback paths deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterator

from repro.errors import ScopeError, TransactionAborted
from repro.tx.database import SimDatabase, Transaction, TxnState

#: Prefix of every scope transaction id; recovery keys off it.
SCOPE_TXN_PREFIX = "scope-"


class IsolationLevel(Enum):
    READ_COMMITTED = "read-committed"
    SERIALIZABLE = "serializable"


class ScopeState(Enum):
    OPEN = "open"
    COMMITTED = "committed"
    ROLLED_BACK = "rolled-back"


@dataclass
class TransactionScope:
    """One shared transaction spanning many activities."""

    handle: str
    root_id: str
    isolation: IsolationLevel
    manager: "ScopeManager"
    txn: Transaction
    #: Logical tick at which the scope was begun.
    begun_at: int
    #: Maximum logical age; None = no timeout.
    timeout: int | None = None
    state: ScopeState = ScopeState.OPEN
    #: Keys this scope wrote (their locks are never released early).
    _written: set[str] = field(default_factory=set)

    # -- operations under the scope --------------------------------------

    def read(self, key: str, default: Any = None) -> Any:
        self._use()
        value = self.txn.read(key, default)
        if (
            self.isolation is IsolationLevel.READ_COMMITTED
            and key not in self._written
        ):
            # Short read lock: blocking writers held it long enough to
            # forbid dirty reads; strictness is only kept for writes.
            self.txn._db.locks.release(self.txn.txn_id, key)
        return value

    def write(self, key: str, value: Any) -> None:
        self._use()
        self.txn.write(key, value)
        self._written.add(key)

    def increment(self, key: str, delta: float | int) -> Any:
        self._use()
        value = self.txn.increment(key, delta)
        self._written.add(key)
        return value

    def savepoint(self, name: str) -> None:
        self._use()
        self.txn.savepoint(name)

    def rollback_to_savepoint(self, name: str) -> None:
        self._use()
        self.txn.rollback_to_savepoint(name)

    # -- outcome ----------------------------------------------------------

    def commit(self) -> None:
        self._use()
        self.manager._finish(self, commit=True)

    def rollback(self, reason: str = "scope rollback") -> None:
        if self.state is not ScopeState.OPEN:
            return  # idempotent: rolling back a finished scope is a no-op
        self.manager._finish(self, commit=False, reason=reason)

    # -- internals ---------------------------------------------------------

    def _use(self) -> None:
        """Tick the clock and enforce state + timeout before an op."""
        if self.state is not ScopeState.OPEN:
            raise ScopeError(
                "scope %s is %s" % (self.handle, self.state.value)
            )
        tick = self.manager._tick()
        if self.timeout is not None and tick - self.begun_at > self.timeout:
            self.manager._finish(self, commit=False, reason="scope timeout")
            raise TransactionAborted(
                "scope %s exceeded its timeout of %d ticks"
                % (self.handle, self.timeout),
                reason="scope timeout",
            )


class ScopeManager:
    """Registry of open scopes of one database, keyed by handle.

    One manager serves one engine (installed as the ``tx_scopes``
    service); scope transaction ids carry :data:`SCOPE_TXN_PREFIX` so
    :meth:`recover` can tell torn scopes from ordinary transactions in
    the shared database's active table.
    """

    def __init__(self, database: SimDatabase, *, injector: Any = None):
        self.database = database
        #: Optional FaultInjector; consulted at the ``scope.commit`` site.
        self.injector = injector
        self._scopes: dict[str, TransactionScope] = {}
        self._clock = 0
        self._sequence = 0

    # -- lifecycle --------------------------------------------------------

    def begin(
        self,
        root_id: str,
        *,
        isolation: IsolationLevel = IsolationLevel.SERIALIZABLE,
        timeout: int | None = None,
    ) -> TransactionScope:
        """Open a scope for ``root_id``; returns the scope.

        One root instance may hold at most one open scope — the models
        this facility serves (nested/open-nested, pivot chains) share a
        single context per process instance.
        """
        for scope in self._scopes.values():
            if scope.root_id == root_id and scope.state is ScopeState.OPEN:
                raise ScopeError(
                    "root instance %s already holds open scope %s"
                    % (root_id, scope.handle)
                )
        self._sequence += 1
        handle = "%s%05d" % (SCOPE_TXN_PREFIX, self._sequence)
        txn = self.database.begin(handle)
        scope = TransactionScope(
            handle=handle,
            root_id=root_id,
            isolation=isolation,
            manager=self,
            txn=txn,
            begun_at=self._tick(),
            timeout=timeout,
        )
        self._scopes[handle] = scope
        return scope

    def get(self, handle: str) -> TransactionScope | None:
        """The scope for ``handle`` if it is still open, else None."""
        scope = self._scopes.get(handle)
        if scope is not None and scope.state is ScopeState.OPEN:
            return scope
        return None

    def commit(self, handle: str) -> None:
        scope = self.get(handle)
        if scope is None:
            raise ScopeError("no open scope %r to commit" % handle)
        scope.commit()

    def rollback(self, handle: str, reason: str = "scope rollback") -> bool:
        """Roll back ``handle`` if it is still open.

        Returns False for unknown/finished handles instead of raising:
        rollback must be idempotent so replayed rollback activities and
        the root-finish safety net can fire unconditionally.
        """
        scope = self.get(handle)
        if scope is None:
            return False
        scope.rollback(reason=reason)
        return True

    def rollback_open_for(self, root_id: str, reason: str) -> int:
        """Roll back every open scope of one root instance (the
        safety net at root finish and on escalation)."""
        rolled = 0
        for scope in list(self._scopes.values()):
            if scope.root_id == root_id and scope.state is ScopeState.OPEN:
                scope.rollback(reason=reason)
                rolled += 1
        return rolled

    def open_scopes(self) -> Iterator[TransactionScope]:
        return (
            s for s in self._scopes.values() if s.state is ScopeState.OPEN
        )

    # -- crash recovery ----------------------------------------------------

    def recover(self) -> int:
        """Roll back scopes torn by a crash; returns how many.

        Two cases fold together here:

        * The *manager* outlived the crash (same process, engine
          rebuilt): open registry entries are rolled back through
          their live transactions.
        * The *database* restarted underneath us: its recovery already
          undid scope transactions as losers, so only the registry
          needs clearing — plus any scope-prefixed transaction still
          active in the database (begun by a manager that did not
          survive) is aborted via WAL undo.
        """
        torn = 0
        for scope in list(self._scopes.values()):
            if scope.state is ScopeState.OPEN:
                if scope.txn.state is TxnState.ACTIVE:
                    scope.txn.abort(reason="torn scope")
                scope.state = ScopeState.ROLLED_BACK
                torn += 1
        self._scopes.clear()
        for txn_id in self.database.active_transactions():
            if txn_id.startswith(SCOPE_TXN_PREFIX):
                txn = self.database.active_transaction(txn_id)
                if txn is not None and txn.state is TxnState.ACTIVE:
                    txn.abort(reason="torn scope")
                    torn += 1
        return torn

    # -- internals ---------------------------------------------------------

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def _finish(
        self, scope: TransactionScope, *, commit: bool, reason: str = ""
    ) -> None:
        if commit:
            if self.injector is not None:
                # Chaos site: a crash at the commit point, before the
                # COMMIT record — the scope must recover as a loser.
                self.injector.on_scope_commit(scope.handle)
            try:
                scope.txn.commit()
            except TransactionAborted:
                scope.state = ScopeState.ROLLED_BACK
                raise
            scope.state = ScopeState.COMMITTED
        else:
            if scope.txn.state is TxnState.ACTIVE:
                scope.txn.abort(reason=reason or "scope rollback")
            scope.state = ScopeState.ROLLED_BACK
