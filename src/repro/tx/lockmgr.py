"""Strict two-phase locking.

"The fact remains that most databases today use Strict 2 Phase Locking
for write operations" (§2) — so that is what the substrate implements:
shared/exclusive locks held until transaction end, lock upgrades, and
waits-for deadlock detection.

The lock manager is thread-safe (blocking waits use a condition
variable) but also safe for single-threaded interleaved use: before a
caller would block, the waits-for graph is checked and a
:class:`DeadlockError` is raised for the requester if waiting would
close a cycle — or immediately when ``wait=False``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import DeadlockError, LockTimeoutError


class LockMode(Enum):
    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible(self, other: "LockMode") -> bool:
        return self is LockMode.SHARED and other is LockMode.SHARED


@dataclass
class _LockEntry:
    holders: dict[str, LockMode] = field(default_factory=dict)
    #: FIFO of (txn_id, mode) waiting for this key.
    queue: list[tuple[str, LockMode]] = field(default_factory=list)


class LockManager:
    """All locks of one database."""

    def __init__(self, *, timeout: float = 5.0):
        self._locks: dict[str, _LockEntry] = {}
        self._mutex = threading.Lock()
        self._changed = threading.Condition(self._mutex)
        self._timeout = timeout
        #: txn -> keys held, for O(held) release at commit/abort.
        self._held: dict[str, set[str]] = {}

    # -- public API ------------------------------------------------------

    def acquire(
        self, txn_id: str, key: str, mode: LockMode, *, wait: bool = True
    ) -> None:
        """Acquire (or upgrade to) ``mode`` on ``key`` for ``txn_id``.

        Raises :class:`DeadlockError` when waiting would deadlock and
        :class:`LockTimeoutError` when the wait exceeds the timeout.
        """
        with self._changed:
            entry = self._locks.setdefault(key, _LockEntry())
            if self._grantable(entry, txn_id, mode):
                self._grant(entry, txn_id, key, mode)
                return
            if not wait:
                self._discard_if_empty(key, entry)
                raise DeadlockError(
                    "lock %s on %r denied without waiting" % (mode.value, key)
                )
            entry.queue.append((txn_id, mode))
            try:
                deadline = None
                while not self._grantable_queued(entry, txn_id, mode):
                    blockers = self._blockers(entry, txn_id, mode)
                    if self._would_deadlock(txn_id, blockers):
                        raise DeadlockError(
                            "transaction %s would deadlock on %r"
                            % (txn_id, key)
                        )
                    if deadline is None:
                        deadline = time.monotonic() + self._timeout
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._changed.wait(remaining):
                        raise LockTimeoutError(
                            "transaction %s timed out waiting for %r"
                            % (txn_id, key)
                        )
                self._grant(entry, txn_id, key, mode)
            finally:
                if (txn_id, mode) in entry.queue:
                    entry.queue.remove((txn_id, mode))
                    # A departing waiter may have been the FIFO head
                    # blocking others; wake the rest to re-evaluate.
                    self._changed.notify_all()
                self._discard_if_empty(key, entry)

    def release(self, txn_id: str, key: str) -> None:
        """Release ``txn_id``'s lock on one key.

        Escape hatch from strictness for weaker isolation levels
        (read-committed releases read locks right after the read).
        No-op when the lock is not held.
        """
        with self._changed:
            held = self._held.get(txn_id)
            if held is None or key not in held:
                return
            held.discard(key)
            if not held:
                del self._held[txn_id]
            entry = self._locks.get(key)
            if entry is not None:
                entry.holders.pop(txn_id, None)
                self._discard_if_empty(key, entry)
            self._changed.notify_all()

    def release_all(self, txn_id: str) -> None:
        """Release every lock of ``txn_id`` (strictness: at txn end)."""
        with self._changed:
            for key in self._held.pop(txn_id, set()):
                entry = self._locks.get(key)
                if entry is not None:
                    entry.holders.pop(txn_id, None)
                    if not entry.holders and not entry.queue:
                        del self._locks[key]
            self._changed.notify_all()

    def holders(self, key: str) -> dict[str, LockMode]:
        with self._mutex:
            entry = self._locks.get(key)
            return dict(entry.holders) if entry else {}

    def held_by(self, txn_id: str) -> set[str]:
        with self._mutex:
            return set(self._held.get(txn_id, set()))

    def waiting(self) -> list[tuple[str, str]]:
        """(txn, key) pairs currently queued."""
        with self._mutex:
            out = []
            for key, entry in self._locks.items():
                out.extend((txn, key) for txn, __ in entry.queue)
            return out

    # -- internals -----------------------------------------------------------

    def _discard_if_empty(self, key: str, entry: _LockEntry) -> None:
        """Drop the map entry once nobody holds or waits for the key —
        otherwise keys that were merely *requested* accumulate forever."""
        if not entry.holders and not entry.queue:
            if self._locks.get(key) is entry:
                del self._locks[key]

    def _grantable(self, entry: _LockEntry, txn_id: str, mode: LockMode) -> bool:
        current = entry.holders.get(txn_id)
        if current is LockMode.EXCLUSIVE:
            return True  # already strongest
        if current is LockMode.SHARED and mode is LockMode.SHARED:
            return True
        others = [m for t, m in entry.holders.items() if t != txn_id]
        if mode is LockMode.SHARED:
            return all(m is LockMode.SHARED for m in others)
        return not others  # exclusive (fresh or upgrade): no other holder

    def _grantable_queued(
        self, entry: _LockEntry, txn_id: str, mode: LockMode
    ) -> bool:
        # FIFO fairness for fresh requests; upgrades jump the queue
        # (they already hold shared and would otherwise self-block).
        if not self._grantable(entry, txn_id, mode):
            return False
        if txn_id in entry.holders:
            return True
        for queued_txn, __ in entry.queue:
            if queued_txn == txn_id:
                return True
            if queued_txn not in entry.holders:
                return False
        return True

    def _grant(
        self, entry: _LockEntry, txn_id: str, key: str, mode: LockMode
    ) -> None:
        current = entry.holders.get(txn_id)
        if current is not LockMode.EXCLUSIVE:
            entry.holders[txn_id] = mode if current is None else (
                LockMode.EXCLUSIVE if mode is LockMode.EXCLUSIVE else current
            )
        self._held.setdefault(txn_id, set()).add(key)
        self._changed.notify_all()

    def _blockers(
        self, entry: _LockEntry, txn_id: str, mode: LockMode
    ) -> set[str]:
        blockers = {
            t
            for t, m in entry.holders.items()
            if t != txn_id and not mode.compatible(m)
        }
        if mode is LockMode.EXCLUSIVE:
            blockers |= {t for t in entry.holders if t != txn_id}
        return blockers

    def _would_deadlock(self, requester: str, blockers: set[str]) -> bool:
        """Cycle check on the waits-for graph with the tentative edge
        requester -> blockers added."""
        waits_for: dict[str, set[str]] = {requester: set(blockers)}
        for key, entry in self._locks.items():
            for waiter, mode in entry.queue:
                edge_to = self._blockers(entry, waiter, mode)
                waits_for.setdefault(waiter, set()).update(edge_to)
        # DFS from requester looking for a path back to requester.
        stack = list(waits_for.get(requester, ()))
        seen: set[str] = set()
        while stack:
            node = stack.pop()
            if node == requester:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(waits_for.get(node, ()))
        return False
