"""Write-ahead log.

Physical logging with before/after images, commit/abort records and
compensation log records (CLRs) written during undo, in the ARIES
style: the restart algorithm (:mod:`repro.tx.recovery`) repeats history
by redoing *all* updates, then undoes the losers.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Iterator

from repro.errors import TransactionError

#: Sentinel before/after image meaning "the key did not exist".
ABSENT = "__absent__"


class LogKind(Enum):
    BEGIN = "begin"
    UPDATE = "update"
    CLR = "clr"            # compensation log record (redo-only)
    COMMIT = "commit"
    ABORT = "abort"
    CHECKPOINT = "checkpoint"
    SAVEPOINT = "savepoint"  # partial-rollback watermark; no redo/undo


@dataclass(frozen=True)
class LogRecord:
    lsn: int
    kind: LogKind
    txn_id: str
    key: str = ""
    before: Any = None
    after: Any = None
    #: For CLRs: the LSN of the next record of this txn still to undo.
    undo_next: int = -1
    #: For CHECKPOINT: the ids of transactions active at the time.
    active: tuple[str, ...] = ()


class WriteAheadLog:
    """Append-only in-memory log with LSN addressing.

    The simulated "disk" for the log is this object itself: a database
    crash (:meth:`SimDatabase.crash`) drops the cache and the lock
    table but keeps the log, exactly like a real WAL on stable storage.
    """

    def __init__(self) -> None:
        self._records: list[LogRecord] = []

    def append(
        self,
        kind: LogKind,
        txn_id: str,
        key: str = "",
        before: Any = None,
        after: Any = None,
        undo_next: int = -1,
        active: tuple[str, ...] = (),
    ) -> LogRecord:
        record = LogRecord(
            len(self._records), kind, txn_id, key, before, after, undo_next, active
        )
        self._records.append(record)
        return record

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def record(self, lsn: int) -> LogRecord:
        try:
            return self._records[lsn]
        except IndexError:
            raise TransactionError("no log record with LSN %d" % lsn) from None

    def records_of(self, txn_id: str) -> list[LogRecord]:
        return [r for r in self._records if r.txn_id == txn_id]

    def last_checkpoint(self) -> LogRecord | None:
        for record in reversed(self._records):
            if record.kind is LogKind.CHECKPOINT:
                return record
        return None

