"""SimDatabase — a transactional key-value store.

Provides exactly what the paper's subtransactions need from a resource
manager: ACID transactions with begin/read/write/delete/commit/abort,
strict 2PL isolation, WAL-based atomicity and durability, crash and
restart with ARIES-style recovery, and hooks for failure injection
(unilateral aborts — the multidatabase behaviour Flexible Transactions
are designed around).

Storage model: a "disk" dict plus a dirty-page cache.  Writes go to
the cache after their UPDATE record is logged (WAL rule); a background
"flusher" is simulated by :meth:`SimDatabase.flush`, which may flush
*uncommitted* data (steal) — recovery undoes it.  Commit forces the
log only (no-force): committed data not yet flushed is redone.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Callable, Iterator

from repro.errors import (
    DatabaseCrashed,
    InvalidTransactionState,
    TransactionAborted,
    TransactionError,
)
from repro.tx.lockmgr import LockManager, LockMode
from repro.tx.wal import ABSENT, LogKind, WriteAheadLog


class TxnState(Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One transaction against one :class:`SimDatabase`."""

    def __init__(self, database: "SimDatabase", txn_id: str):
        self._db = database
        self.txn_id = txn_id
        self.state = TxnState.ACTIVE
        self.reads = 0
        self.writes = 0
        #: savepoint name -> watermark LSN (updates with a larger LSN
        #: are undone by rollback_to_savepoint).
        self._savepoints: dict[str, int] = {}

    # -- operations -------------------------------------------------------

    def read(self, key: str, default: Any = None) -> Any:
        self._check_active()
        self._db._check_up()
        self._db.locks.acquire(self.txn_id, key, LockMode.SHARED)
        self.reads += 1
        return self._db._get(key, default)

    def write(self, key: str, value: Any) -> None:
        self._check_active()
        self._db._check_up()
        self._db.locks.acquire(self.txn_id, key, LockMode.EXCLUSIVE)
        before = self._db._get(key, ABSENT)
        self._db.log.append(
            LogKind.UPDATE, self.txn_id, key, before=before, after=value
        )
        self._db._put(key, value)
        self.writes += 1

    def delete(self, key: str) -> None:
        self.write(key, ABSENT)

    def increment(self, key: str, delta: float | int) -> Any:
        """Read-modify-write convenience (the banking workload)."""
        value = self.read(key, 0)
        if not isinstance(value, (int, float)):
            raise TransactionError("cannot increment %r value %r" % (key, value))
        updated = value + delta
        self.write(key, updated)
        return updated

    # -- savepoints ---------------------------------------------------------

    def savepoint(self, name: str) -> None:
        """Mark a partial-rollback point.  Re-using a name moves it."""
        self._check_active()
        self._db._check_up()
        record = self._db.log.append(LogKind.SAVEPOINT, self.txn_id, name)
        self._savepoints[name] = record.lsn

    def rollback_to_savepoint(self, name: str) -> None:
        """Undo every update logged after the savepoint.

        Locks taken since the savepoint stay held (standard SQL
        semantics: partial rollback does not release locks).  The
        savepoint survives, so it can be rolled back to again;
        savepoints established after it are discarded.
        """
        self._check_active()
        self._db._check_up()
        watermark = self._savepoints.get(name)
        if watermark is None:
            raise TransactionError(
                "transaction %s has no savepoint %r" % (self.txn_id, name)
            )
        self._db._undo(self.txn_id, after_lsn=watermark)
        self._savepoints = {
            n: lsn for n, lsn in self._savepoints.items() if lsn <= watermark
        }

    # -- outcome ------------------------------------------------------------

    def commit(self) -> None:
        self._check_active()
        self._db._check_up()
        self._db._maybe_unilateral_abort(self)
        self._db.log.append(LogKind.COMMIT, self.txn_id)
        self.state = TxnState.COMMITTED
        self._db._end(self)

    def abort(self, reason: str = "user abort") -> None:
        self._check_active()
        self._db._check_up()
        self._db._undo(self.txn_id)
        self._db.log.append(LogKind.ABORT, self.txn_id)
        self.state = TxnState.ABORTED
        self._db._end(self)

    # -- context manager: commit on success, abort on error ---------------------

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.state is not TxnState.ACTIVE:
            return False
        if exc_type is None:
            self.commit()
            return False
        self.abort(reason=str(exc))
        return False

    def _check_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise InvalidTransactionState(
                "transaction %s is %s" % (self.txn_id, self.state.value)
            )


class SimDatabase:
    """A named transactional store."""

    def __init__(self, name: str = "db", *, lock_timeout: float = 5.0):
        self.name = name
        self.log = WriteAheadLog()
        self.locks = LockManager(timeout=lock_timeout)
        self._disk: dict[str, Any] = {}
        self._cache: dict[str, Any] = {}
        self._active: dict[str, Transaction] = {}
        self._sequence = 0
        self._up = True
        self.commits = 0
        self.aborts = 0
        #: Called at commit time; raising TransactionAborted models a
        #: unilateral local abort (set by failure injection).
        self.on_commit: Callable[[Transaction], None] | None = None

    # -- transactions -----------------------------------------------------------

    def begin(self, txn_id: str = "") -> Transaction:
        self._check_up()
        if not txn_id:
            self._sequence += 1
            txn_id = "%s-t%05d" % (self.name, self._sequence)
        if txn_id in self._active:
            raise TransactionError("transaction id %r already active" % txn_id)
        txn = Transaction(self, txn_id)
        self._active[txn_id] = txn
        self.log.append(LogKind.BEGIN, txn_id)
        return txn

    def active_transactions(self) -> list[str]:
        return sorted(self._active)

    def active_transaction(self, txn_id: str) -> Transaction | None:
        """The live :class:`Transaction` object, or None."""
        return self._active.get(txn_id)

    # -- non-transactional inspection (tests/benchmarks) -------------------------

    def get(self, key: str, default: Any = None) -> Any:
        """Read the current (possibly uncommitted) value, no locking."""
        self._check_up()
        return self._get(key, default)

    def stable_get(self, key: str, default: Any = None) -> Any:
        """Read what is on "disk" (survives a crash before recovery)."""
        value = self._disk.get(key, ABSENT)
        return default if value is ABSENT else value

    def keys(self) -> Iterator[str]:
        self._check_up()
        seen = set()
        for key, value in {**self._disk, **self._cache}.items():
            if value is not ABSENT and key not in seen:
                seen.add(key)
                yield key

    def snapshot(self) -> dict[str, Any]:
        self._check_up()
        merged = {**self._disk, **self._cache}
        return {k: v for k, v in merged.items() if v is not ABSENT}

    # -- buffer management --------------------------------------------------------

    def flush(self, key: str | None = None) -> int:
        """Flush cache entries to disk (steal: even uncommitted ones).

        Returns the number of entries flushed.
        """
        self._check_up()
        keys = [key] if key is not None else list(self._cache)
        flushed = 0
        for k in keys:
            if k in self._cache:
                self._disk[k] = self._cache.pop(k)
                flushed += 1
        return flushed

    def checkpoint(self) -> None:
        """Flush everything and log a checkpoint record."""
        self.flush()
        self.log.append(
            LogKind.CHECKPOINT, "", active=tuple(sorted(self._active))
        )

    # -- crash / restart ------------------------------------------------------------

    def crash(self) -> None:
        """Lose the cache, the lock table and all active transactions;
        the log and the disk survive."""
        self._cache.clear()
        for txn in self._active.values():
            txn.state = TxnState.ABORTED
        self._active.clear()
        self.locks = LockManager()
        self._up = False

    def restart(self) -> dict[str, int]:
        """Run restart recovery; returns counters (see
        :func:`repro.tx.recovery.restart`)."""
        from repro.tx.recovery import restart

        stats = restart(self)
        self._up = True
        return stats

    @property
    def is_up(self) -> bool:
        return self._up

    # -- internals (used by Transaction and recovery) ----------------------------------

    def _get(self, key: str, default: Any) -> Any:
        if key in self._cache:
            value = self._cache[key]
        else:
            value = self._disk.get(key, ABSENT)
        return default if value is ABSENT else value

    def _put(self, key: str, value: Any) -> None:
        self._cache[key] = value

    def _undo(self, txn_id: str, after_lsn: int = -1) -> None:
        """Roll back ``txn_id`` using before-images, logging CLRs.

        ``after_lsn`` bounds the undo for partial rollback: only
        updates logged after that LSN are reversed.  Updates already
        compensated by an earlier partial rollback are skipped, exactly
        like the restart undo pass skips them via ``undo_next``.
        """
        records = self.log.records_of(txn_id)
        compensated = {
            r.undo_next for r in records if r.kind is LogKind.CLR
        }
        updates = [
            r
            for r in records
            if r.kind is LogKind.UPDATE
            and r.lsn > after_lsn
            and r.lsn not in compensated
        ]
        for record in reversed(updates):
            self.log.append(
                LogKind.CLR,
                txn_id,
                record.key,
                after=record.before,
                undo_next=record.lsn,
            )
            self._put(record.key, record.before)

    def _end(self, txn: Transaction) -> None:
        self.locks.release_all(txn.txn_id)
        self._active.pop(txn.txn_id, None)
        if txn.state is TxnState.COMMITTED:
            self.commits += 1
        else:
            self.aborts += 1

    def _maybe_unilateral_abort(self, txn: Transaction) -> None:
        if self.on_commit is None:
            return
        try:
            self.on_commit(txn)
        except TransactionAborted:
            self._undo(txn.txn_id)
            self.log.append(LogKind.ABORT, txn.txn_id)
            txn.state = TxnState.ABORTED
            self._end(txn)
            raise

    def _check_up(self) -> None:
        if not self._up:
            raise DatabaseCrashed(
                "database %s is down; call restart() first" % self.name
            )
