"""Transactional substrate.

The paper's subtransactions run against real resource managers (DB2,
CICS).  This package provides the from-scratch equivalent: a
transactional key-value store (:class:`SimDatabase`) built on a strict
two-phase-locking lock manager with deadlock detection and a
write-ahead log with ARIES-style restart recovery, plus a
:class:`Multidatabase` — the federation of *autonomous* local databases
that motivates Flexible Transactions (local sites may unilaterally
abort, so global commit cannot be enforced).

Failure injection (:mod:`repro.tx.failures`) drives the experiments:
scripted and seeded-random aborts turn the paper's "if a transaction
aborts ..." narratives into sweeps.
"""

from repro.tx.lockmgr import LockManager, LockMode
from repro.tx.wal import LogRecord, LogKind, WriteAheadLog
from repro.tx.database import SimDatabase, Transaction
from repro.tx.multidb import LocalDatabase, Multidatabase
from repro.tx.failures import (
    AbortProbability,
    AbortScript,
    AlwaysAbort,
    AlwaysCommit,
    FailNTimes,
    FailurePolicy,
)
from repro.tx.subtransaction import Subtransaction, SubtransactionOutcome
from repro.tx.scope import (
    IsolationLevel,
    ScopeManager,
    ScopeState,
    TransactionScope,
)

__all__ = [
    "AbortProbability",
    "AbortScript",
    "AlwaysAbort",
    "AlwaysCommit",
    "FailNTimes",
    "FailurePolicy",
    "IsolationLevel",
    "LocalDatabase",
    "LockManager",
    "LockMode",
    "LogKind",
    "LogRecord",
    "Multidatabase",
    "ScopeManager",
    "ScopeState",
    "SimDatabase",
    "Subtransaction",
    "SubtransactionOutcome",
    "Transaction",
    "TransactionScope",
    "WriteAheadLog",
]
