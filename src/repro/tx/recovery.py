"""ARIES-style restart recovery for :class:`SimDatabase`.

Three passes over the write-ahead log:

1. **Analysis** — find winners (transactions with a COMMIT record) and
   losers (BEGIN but neither COMMIT nor ABORT-completed); a checkpoint
   record, when present, bounds how far back analysis must look for
   the active set.
2. **Redo** — repeat history: re-apply *every* UPDATE and CLR after
   image to the disk in LSN order (the cache was lost; the disk may be
   arbitrarily stale because commit does not force pages).
3. **Undo** — roll back the losers from the log tail using before
   images, appending CLRs so a crash during recovery is itself
   recoverable; finish each loser with an ABORT record.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.tx.wal import ABSENT, LogKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.tx.database import SimDatabase


def restart(database: "SimDatabase") -> dict[str, int]:
    """Recover ``database`` in place; returns pass counters."""
    log = database.log
    # A checkpoint flushes every dirty page, so redo (and the BEGIN
    # scan) can start right after the most recent one; the checkpoint
    # record carries the then-active transactions.
    checkpoint = log.last_checkpoint()
    redo_from = checkpoint.lsn + 1 if checkpoint is not None else 0
    # ---- analysis ----
    begun: set[str] = set(checkpoint.active) if checkpoint else set()
    finished: set[str] = set()
    for record in log:
        if record.lsn < redo_from:
            continue
        if record.kind is LogKind.BEGIN:
            begun.add(record.txn_id)
        elif record.kind in (LogKind.COMMIT, LogKind.ABORT):
            finished.add(record.txn_id)
    losers = begun - finished
    # ---- redo: repeat history (from the checkpoint onwards) ----
    redone = 0
    for record in log:
        if record.lsn < redo_from:
            continue
        if record.kind is LogKind.UPDATE or record.kind is LogKind.CLR:
            _apply(database, record.key, record.after)
            redone += 1
    # ---- undo the losers, newest update first across all losers ----
    undone = 0
    pending = [
        r
        for r in log
        if r.kind is LogKind.UPDATE and r.txn_id in losers
    ]
    # CLRs already written for a loser (e.g. crash mid-abort) mark
    # updates that need no second undo.
    compensated = {
        r.undo_next
        for r in log
        if r.kind is LogKind.CLR and r.txn_id in losers
    }
    for record in reversed(pending):
        if record.lsn in compensated:
            continue
        log.append(
            LogKind.CLR,
            record.txn_id,
            record.key,
            after=record.before,
            undo_next=record.lsn,
        )
        _apply(database, record.key, record.before)
        undone += 1
    for txn_id in sorted(losers):
        log.append(LogKind.ABORT, txn_id)
    return {
        "winners": len(begun & finished),
        "losers": len(losers),
        "redone": redone,
        "undone": undone,
    }


def _apply(database: "SimDatabase", key: str, value: object) -> None:
    if value is ABSENT:
        database._disk.pop(key, None)
    else:
        database._disk[key] = value
