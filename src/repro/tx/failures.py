"""Failure injection policies.

The paper's narratives are all of the form "if Ti aborts, ...".  A
:class:`FailurePolicy` decides, per attempt, whether a subtransaction
commits or aborts, turning those narratives into deterministic scripts
(:class:`AbortScript`, :class:`FailNTimes`) or seeded sweeps
(:class:`AbortProbability`).  Policies are consulted *at commit time*
by the subtransaction adapters and the multidatabase, modelling a
resource manager's unilateral abort.
"""

from __future__ import annotations

import random
from typing import Iterable, Protocol

from repro.errors import TransactionAborted


class FailurePolicy(Protocol):
    """Decides whether one attempt commits."""

    def should_abort(self, attempt: int) -> bool:
        """``attempt`` counts from 1; True means abort this attempt."""
        ...


class AlwaysCommit:
    """Every attempt commits."""

    def should_abort(self, attempt: int) -> bool:
        return False

    def __repr__(self) -> str:
        return "AlwaysCommit()"


class AlwaysAbort:
    """Every attempt aborts (a pivot with no way forward)."""

    def should_abort(self, attempt: int) -> bool:
        return True

    def __repr__(self) -> str:
        return "AlwaysAbort()"


class FailNTimes:
    """Abort the first ``n`` attempts, commit afterwards — the natural
    model of a *retriable* subtransaction ("will eventually commit if
    retried a sufficient number of times")."""

    def __init__(self, n: int):
        if n < 0:
            raise ValueError("n must be >= 0")
        self.n = n

    def should_abort(self, attempt: int) -> bool:
        return attempt <= self.n

    def __repr__(self) -> str:
        return "FailNTimes(%d)" % self.n


class AbortScript:
    """Abort exactly the listed attempt numbers (1-based)."""

    def __init__(self, aborts: Iterable[int]):
        self.aborts = frozenset(aborts)

    def should_abort(self, attempt: int) -> bool:
        return attempt in self.aborts

    def __repr__(self) -> str:
        return "AbortScript(%s)" % sorted(self.aborts)


class AbortProbability:
    """Abort each attempt independently with probability ``p``.

    Seeded so sweeps are reproducible; each policy instance carries its
    own RNG to keep experiments independent of evaluation order.
    """

    def __init__(self, p: float, seed: int = 0):
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        self.p = p
        self._rng = random.Random(seed)

    def should_abort(self, attempt: int) -> bool:
        return self._rng.random() < self.p

    def __repr__(self) -> str:
        return "AbortProbability(%g)" % self.p


def unilateral_abort_hook(policy: FailurePolicy):
    """Adapt a policy into a :attr:`SimDatabase.on_commit` hook.

    The hook counts commit attempts per database and raises
    :class:`TransactionAborted` when the policy says so.
    """
    counter = {"attempt": 0}

    def hook(txn) -> None:
        counter["attempt"] += 1
        if policy.should_abort(counter["attempt"]):
            raise TransactionAborted(
                "unilateral abort of %s" % txn.txn_id, reason="injected"
            )

    return hook
