"""Engine monitor — a top-like view over an observability snapshot.

Usage::

    python -m repro.tools.monitor view SNAPSHOT.json    # full view
    python -m repro.tools.monitor prom SNAPSHOT.json    # Prometheus text
    python -m repro.tools.monitor spans SNAPSHOT.json   # span tree only
    python -m repro.tools.monitor shards SNAPSHOT.json  # sharded-cluster view
    python -m repro.tools.monitor demo                  # run a tiny traced
                                                        # workload and view it

Snapshots are written by :func:`repro.obs.export.write_snapshot` (and,
for the ``shards`` view, by dumping
:meth:`repro.wfms.sharding.ShardedEngine.snapshot` as JSON); the
monitor renders pure data and never touches engine state, so it can
inspect a snapshot from another process (or a crashed one).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from repro.obs.export import span_tree_lines, to_prometheus_text

#: counters worth a headline row, in display order.
_HEADLINE = (
    "wfms_processes_started_total",
    "wfms_processes_finished_total",
    "wfms_activities_dispatched_total",
    "wfms_activity_completions_total",
    "wfms_journal_appends_total",
    "wfms_journal_commits_total",
    "wfms_worklist_transitions_total",
    "wfms_engine_crashes_total",
    "wfms_recoveries_total",
)


def _family(metrics: list[dict[str, Any]], name: str) -> dict[str, Any] | None:
    for family in metrics:
        if family["name"] == name:
            return family
    return None


def _total(family: dict[str, Any]) -> float:
    return sum(sample["value"] for sample in family["samples"])


def render_snapshot(snapshot: dict[str, Any], *, max_spans: int = 40) -> list[str]:
    """Render one snapshot as the top-like text view (line list)."""
    lines: list[str] = []
    metrics = snapshot.get("metrics", [])
    running = _family(metrics, "wfms_instances_running")
    open_items = _family(metrics, "wfms_worklist_open_items")
    lines.append(
        "engine clock %.3f | observability %s | running %d | "
        "open work items %d | open spans %d"
        % (
            snapshot.get("clock", 0.0),
            "on" if snapshot.get("observability_enabled") else "off",
            int(_total(running)) if running else 0,
            int(_total(open_items)) if open_items else 0,
            snapshot.get("open_spans", 0),
        )
    )
    store = snapshot.get("store") or {}
    if store.get("enabled"):
        age = store.get("last_checkpoint_age_seconds")
        lag = store.get("checkpoint_lag_records")
        if lag is None:  # never checkpointed: the whole journal is lag
            lag = store.get("journal_records", 0)
        lines.append(
            "STORE archived %d roots / %d instances | segments %d | "
            "checkpoints %d | lag %d records | last checkpoint %s"
            % (
                store.get("archived_roots", 0),
                store.get("archived_instances", 0),
                store.get("segments_live", 0),
                store.get("checkpoints", 0),
                lag,
                "%.3fs ago" % age if age is not None else "never",
            )
        )
    lines.append("")

    processes = snapshot.get("processes", [])
    lines.append("PROCESSES (%d)" % len(processes))
    lines.append(
        "  %-16s %-20s %-10s %-10s %s"
        % ("INSTANCE", "DEFINITION", "STATE", "STARTER", "ACTIVITIES")
    )
    for row in processes:
        activities = ",".join(
            "%s=%d" % (state, count)
            for state, count in sorted(row.get("activities", {}).items())
        )
        lines.append(
            "  %-16s %-20s %-10s %-10s %s"
            % (
                row.get("instance", ""),
                row.get("definition", ""),
                row.get("state", ""),
                row.get("starter", "") or "-",
                activities,
            )
        )
    lines.append("")

    lines.append("COUNTERS")
    for name in _HEADLINE:
        family = _family(metrics, name)
        if family is None:
            continue
        samples = family["samples"]
        if len(samples) == 1 and not samples[0].get("labels"):
            lines.append("  %-38s %d" % (name, samples[0]["value"]))
        else:
            lines.append("  %-38s %d" % (name, _total(family)))
            for sample in samples:
                labels = ",".join(
                    "%s=%s" % kv for kv in sorted(sample["labels"].items())
                )
                lines.append("    %-36s %d" % (labels, sample["value"]))
    lines.append("")

    spans = snapshot.get("spans", [])
    lines.append("SPANS (%d retained)" % len(spans))
    tree = span_tree_lines(spans)
    shown = tree[:max_spans]
    lines.extend("  " + line for line in shown)
    if len(tree) > len(shown):
        lines.append("  ... %d more" % (len(tree) - len(shown)))

    failures = snapshot.get("hook_failures", [])
    if failures:
        lines.append("")
        lines.append("HOOK FAILURES (%d)" % len(failures))
        for failure in failures:
            lines.append(
                "  %s: %s" % (failure["subscriber"], failure["error"])
            )
    return lines


def _checkpoint_lag(store: dict[str, Any]) -> str:
    if not store.get("enabled"):
        return "-"
    lag = store.get("checkpoint_lag_records")
    if lag is None:  # never checkpointed: the whole journal is lag
        lag = store.get("journal_records", 0)
    return str(lag)


def render_shards(snapshot: dict[str, Any]) -> list[str]:
    """Render a :meth:`ShardedEngine.snapshot` dump: one row per shard
    (state, clock, live instances, scheduler and queue depths,
    checkpoint lag) plus cluster-wide bus totals."""
    shards = snapshot.get("shards", [])
    lines = [
        "SHARDS (%d) | scheduler seed %s"
        % (snapshot.get("num_shards", len(shards)), snapshot.get("seed", "-"))
    ]
    lines.append(
        "  %-10s %-8s %10s %6s %6s %8s %6s %8s %5s %9s"
        % (
            "SHARD",
            "STATE",
            "CLOCK",
            "LIVE",
            "READY",
            "DELAYED",
            "INBOX",
            "REPLIES",
            "DLQ",
            "CKPT LAG",
        )
    )
    for row in shards:
        scheduler = row.get("scheduler", {})
        queues = row.get("queues", {})
        lines.append(
            "  %-10s %-8s %10.3f %6d %6d %8d %6d %8d %5d %9s"
            % (
                row.get("name", ""),
                "crashed" if row.get("crashed") else "up",
                row.get("clock", 0.0),
                row.get("live_instances", 0),
                scheduler.get("ready", 0),
                scheduler.get("delayed", 0),
                queues.get("inbox", 0),
                queues.get("replies", 0),
                queues.get("dlq", 0),
                _checkpoint_lag(row.get("store", {})),
            )
        )
    bus = snapshot.get("bus", {})
    totals: dict[str, int] = {}
    for counters in bus.values():
        for key, value in counters.items():
            totals[key] = totals.get(key, 0) + value
    lines.append("")
    lines.append(
        "BUS (%d queues) sent %d | delivered %d | redelivered %d | "
        "dead-lettered %d"
        % (
            len(bus),
            totals.get("sent", 0),
            totals.get("delivered", 0),
            totals.get("redelivered", 0),
            totals.get("dead_lettered", 0),
        )
    )
    return lines


def render_net(snapshot: dict[str, Any]) -> list[str]:
    """Render a :meth:`BusServer.snapshot` dump: broker identity and
    frame totals, one row per live connection, one row per queue with
    depth/overflow/shed counters and breaker state."""
    address = snapshot.get("address")
    lines = [
        "BROKER %s @ %s | accepted %d | resets %d | frames in %d / out %d"
        % (
            snapshot.get("broker", "?"),
            "%s:%s" % tuple(address) if address else "-",
            snapshot.get("accepted_total", 0),
            snapshot.get("resets_total", 0),
            snapshot.get("frames_in_total", 0),
            snapshot.get("frames_out_total", 0),
        )
    ]
    capacity = snapshot.get("queue_capacity")
    overrides = snapshot.get("capacities") or {}
    lines.append(
        "capacity %s%s | injector %s"
        % (
            capacity if capacity is not None else "unbounded",
            " (+%d overrides)" % len(overrides) if overrides else "",
            "%(rules)d rules, %(fired)d fired" % snapshot["injector"]
            if snapshot.get("injector")
            else "none",
        )
    )
    lines.append(
        "sessions %d | dedup hits %d | resumed %d | reaped %d"
        % (
            snapshot.get("sessions", 0),
            snapshot.get("dedup_hits", 0),
            snapshot.get("resumed_total", 0),
            snapshot.get("reaped_total", 0),
        )
    )
    durable = snapshot.get("durable")
    if durable:
        lines.append(
            "DURABLE epoch %d | sync %s | %d records (%d unflushed) | "
            "%d segments | %d checkpoints (last @%d, %d since, %d failed)"
            % (
                durable.get("epoch", 0),
                durable.get("sync", "?"),
                durable.get("records", 0),
                durable.get("unflushed", 0),
                durable.get("segments_live", 0),
                durable.get("checkpoints", 0),
                durable.get("last_checkpoint_offset") or 0,
                durable.get("records_since_checkpoint", 0),
                durable.get("checkpoint_failures", 0),
            )
        )
        recovery = durable.get("recovery") or {}
        if recovery:
            lines.append(
                "recovered: checkpoint @%d (%d skipped) + %d replayed | "
                "%d messages restored"
                % (
                    recovery.get("checkpoint_offset", 0),
                    recovery.get("checkpoints_skipped", 0),
                    recovery.get("replayed_records", 0),
                    recovery.get("restored_messages", 0),
                )
            )
    lines.append("")

    connections = snapshot.get("connections", [])
    lines.append("CONNECTIONS (%d)" % len(connections))
    lines.append(
        "  %-4s %-18s %-21s %-6s %8s %8s %6s %-s"
        % ("ID", "NAME", "PEER", "STATE", "IN", "OUT", "RESETS", "LAST OP")
    )
    for row in connections:
        lines.append(
            "  %-4s %-18s %-21s %-6s %8d %8d %6d %s"
            % (
                row.get("id", "?"),
                row.get("name", ""),
                row.get("peer", ""),
                row.get("state", ""),
                row.get("frames_in", 0),
                row.get("frames_out", 0),
                row.get("resets", 0),
                row.get("last_op", ""),
            )
        )
    lines.append("")

    queues = snapshot.get("queues", {})
    breakers = snapshot.get("breakers", {})
    lines.append("QUEUES (%d)" % len(queues))
    lines.append(
        "  %-24s %6s %6s %6s %6s %9s %5s %6s %-s"
        % (
            "QUEUE",
            "DEPTH",
            "SENT",
            "DLVD",
            "ACKED",
            "OVERFLOW",
            "SHED",
            "DEAD",
            "BREAKER",
        )
    )
    for name in sorted(queues):
        stats = queues[name]
        lines.append(
            "  %-24s %6d %6d %6d %6d %9d %5d %6d %s"
            % (
                name,
                stats.get("depth", 0),
                stats.get("sent", 0),
                stats.get("delivered", 0),
                stats.get("acked", 0),
                stats.get("overflowed", 0),
                stats.get("shed", 0),
                stats.get("dead_lettered", 0),
                breakers.get(name, "-"),
            )
        )
    return lines


def render_flows(snapshot: dict[str, Any]) -> list[str]:
    """Render a :meth:`FlowRuntime.snapshot` dump: one row per
    registered flow (starts, completions, live executions vs journal
    replays) plus the runtime-wide durability counters."""
    flows = snapshot.get("flows", [])
    lines = ["FLOWS (%d registered)" % len(flows)]
    lines.append(
        "  %-24s %-4s %8s %10s %7s %8s %10s %9s"
        % (
            "FLOW",
            "VER",
            "STARTED",
            "COMPLETED",
            "FAILED",
            "RESUMED",
            "STEPS RUN",
            "REPLAYED",
        )
    )
    for row in flows:
        lines.append(
            "  %-24s %-4s %8d %10d %7d %8d %10d %9d"
            % (
                row.get("name", ""),
                row.get("version", ""),
                row.get("started", 0),
                row.get("completed", 0),
                row.get("failed", 0),
                row.get("resumed", 0),
                row.get("steps_executed", 0),
                row.get("steps_replayed", 0),
            )
        )
    counters = snapshot.get("counters", {})
    lines.append("")
    lines.append(
        "STEPS executed %d (%d transactional, %d failed) | "
        "replayed %d loop / %d resume"
        % (
            counters.get("steps_executed", 0),
            counters.get("txn_steps", 0),
            counters.get("steps_failed", 0),
            counters.get("steps_replayed_loop", 0),
            counters.get("steps_replayed_resume", 0),
        )
    )
    lines.append(
        "FLOWS resumed after crash %d | scopes re-established %d"
        % (
            counters.get("flows_resumed", 0),
            counters.get("scopes_reestablished", 0),
        )
    )
    return lines


def render_dlq(rows: list[dict[str, Any]]) -> list[str]:
    """Render DLQ entries (from :meth:`MessageBus.dlq_entries` or the
    broker's ``dlq_inspect`` op)."""
    lines = ["DEAD LETTERS (%d)" % len(rows)]
    lines.append(
        "  %-10s %-20s %4s %-28s %s"
        % ("MSG", "QUEUE", "DLVD", "REASON", "BODY")
    )
    for row in rows:
        reason = row.get("headers", {}).get("dead-letter-reason", "")
        lines.append(
            "  %-10s %-20s %4d %-28s %s"
            % (
                row.get("msg_id", ""),
                row.get("queue", ""),
                row.get("deliveries", 0),
                reason[:28],
                json.dumps(row.get("body", {}), sort_keys=True)[:60],
            )
        )
    return lines


def _net_source(target: str) -> dict[str, Any]:
    """A broker snapshot from ``target``: a JSON dump file, or a live
    ``HOST:PORT`` fetched over one short connection."""
    import os

    if os.path.exists(target):
        with open(target, "r", encoding="utf-8") as handle:
            return json.load(handle)
    host, separator, port = target.rpartition(":")
    if not separator or not port.isdigit():
        raise OSError(
            "%r is neither a snapshot file nor HOST:PORT" % target
        )
    from repro.net.client import SocketBus

    with SocketBus(host or "127.0.0.1", int(port), name="monitor") as bus:
        return bus.snapshot()


def _demo_snapshot() -> dict[str, Any]:
    """Run a small traced workload and snapshot it (for `demo`)."""
    from repro.obs.export import engine_snapshot
    from repro.wfms.engine import Engine
    from repro.wfms.model import Activity, ProcessDefinition

    engine = Engine(observability=True)
    engine.register_program("work", lambda ctx: 0, "demo step")
    definition = ProcessDefinition("DemoFlow")
    definition.add_activity(Activity("Prepare", program="work"))
    definition.add_activity(Activity("Execute", program="work"))
    definition.add_activity(Activity("Report", program="work"))
    definition.connect("Prepare", "Execute")
    definition.connect("Execute", "Report")
    engine.register_definition(definition)
    for __ in range(3):
        engine.start_process("DemoFlow")
    engine.run()
    return engine_snapshot(engine)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.monitor",
        description="Render engine observability snapshots.",
    )
    parser.add_argument(
        "command",
        choices=[
            "view", "prom", "spans", "shards", "flows", "net", "dlq", "demo"
        ],
    )
    parser.add_argument(
        "file",
        nargs="?",
        help="snapshot JSON (not needed for demo); for net/dlq, a "
        "broker snapshot file or a live broker's HOST:PORT",
    )
    parser.add_argument(
        "--max-spans",
        type=int,
        default=40,
        help="span lines to show in the view (default 40)",
    )
    parser.add_argument(
        "--queue",
        help="dlq: restrict to one original queue (default: all)",
    )
    parser.add_argument(
        "--drain",
        action="store_true",
        help="dlq: requeue every shown dead letter to its original "
        "queue (live broker target only)",
    )
    parser.add_argument(
        "--purge",
        action="store_true",
        help="dlq: discard every shown dead letter (live broker "
        "target only)",
    )
    return parser


def main(argv: list[str] | None = None, out=None) -> int:
    from repro.errors import NetError

    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    if args.command == "net":
        if not args.file:
            print("error: snapshot file or HOST:PORT required", file=out)
            return 2
        try:
            broker_snapshot = _net_source(args.file)
        except (OSError, json.JSONDecodeError, NetError) as exc:
            print("error: %s" % exc, file=out)
            return 1
        for line in render_net(broker_snapshot):
            print(line, file=out)
        return 0
    if args.command == "dlq":
        host, separator, port = (args.file or "").rpartition(":")
        if not separator or not port.isdigit():
            print("error: dlq needs a live broker HOST:PORT", file=out)
            return 2
        from repro.net.client import SocketBus

        try:
            with SocketBus(
                host or "127.0.0.1", int(port), name="monitor-dlq"
            ) as bus:
                rows = bus.dlq_entries(args.queue)
                for line in render_dlq(rows):
                    print(line, file=out)
                if args.drain or args.purge:
                    queues = (
                        [args.queue]
                        if args.queue
                        else sorted({row["queue"] for row in rows})
                    )
                    for queue in queues:
                        moved = bus.dlq_drain(queue, requeue=args.drain)
                        print(
                            "%s %d from dlq:%s"
                            % (
                                "requeued" if args.drain else "purged",
                                moved,
                                queue,
                            ),
                            file=out,
                        )
        except NetError as exc:
            print("error: %s" % exc, file=out)
            return 1
        return 0
    if args.command == "demo":
        snapshot = _demo_snapshot()
    else:
        if not args.file:
            print("error: snapshot file required", file=out)
            return 2
        try:
            with open(args.file, "r", encoding="utf-8") as handle:
                snapshot = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print("error: %s" % exc, file=out)
            return 1
    if args.command == "prom":
        out.write(to_prometheus_text(snapshot.get("metrics", [])))
        return 0
    if args.command == "spans":
        for line in span_tree_lines(snapshot.get("spans", [])):
            print(line, file=out)
        return 0
    if args.command == "shards":
        for line in render_shards(snapshot):
            print(line, file=out)
        return 0
    if args.command == "flows":
        for line in render_flows(snapshot):
            print(line, file=out)
        return 0
    for line in render_snapshot(snapshot, max_spans=args.max_spans):
        print(line, file=out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
