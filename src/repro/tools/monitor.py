"""Engine monitor — a top-like view over an observability snapshot.

Usage::

    python -m repro.tools.monitor view SNAPSHOT.json    # full view
    python -m repro.tools.monitor prom SNAPSHOT.json    # Prometheus text
    python -m repro.tools.monitor spans SNAPSHOT.json   # span tree only
    python -m repro.tools.monitor shards SNAPSHOT.json  # sharded-cluster view
    python -m repro.tools.monitor demo                  # run a tiny traced
                                                        # workload and view it

Snapshots are written by :func:`repro.obs.export.write_snapshot` (and,
for the ``shards`` view, by dumping
:meth:`repro.wfms.sharding.ShardedEngine.snapshot` as JSON); the
monitor renders pure data and never touches engine state, so it can
inspect a snapshot from another process (or a crashed one).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from repro.obs.export import span_tree_lines, to_prometheus_text

#: counters worth a headline row, in display order.
_HEADLINE = (
    "wfms_processes_started_total",
    "wfms_processes_finished_total",
    "wfms_activities_dispatched_total",
    "wfms_activity_completions_total",
    "wfms_journal_appends_total",
    "wfms_journal_commits_total",
    "wfms_worklist_transitions_total",
    "wfms_engine_crashes_total",
    "wfms_recoveries_total",
)


def _family(metrics: list[dict[str, Any]], name: str) -> dict[str, Any] | None:
    for family in metrics:
        if family["name"] == name:
            return family
    return None


def _total(family: dict[str, Any]) -> float:
    return sum(sample["value"] for sample in family["samples"])


def render_snapshot(snapshot: dict[str, Any], *, max_spans: int = 40) -> list[str]:
    """Render one snapshot as the top-like text view (line list)."""
    lines: list[str] = []
    metrics = snapshot.get("metrics", [])
    running = _family(metrics, "wfms_instances_running")
    open_items = _family(metrics, "wfms_worklist_open_items")
    lines.append(
        "engine clock %.3f | observability %s | running %d | "
        "open work items %d | open spans %d"
        % (
            snapshot.get("clock", 0.0),
            "on" if snapshot.get("observability_enabled") else "off",
            int(_total(running)) if running else 0,
            int(_total(open_items)) if open_items else 0,
            snapshot.get("open_spans", 0),
        )
    )
    store = snapshot.get("store") or {}
    if store.get("enabled"):
        age = store.get("last_checkpoint_age_seconds")
        lag = store.get("checkpoint_lag_records")
        if lag is None:  # never checkpointed: the whole journal is lag
            lag = store.get("journal_records", 0)
        lines.append(
            "STORE archived %d roots / %d instances | segments %d | "
            "checkpoints %d | lag %d records | last checkpoint %s"
            % (
                store.get("archived_roots", 0),
                store.get("archived_instances", 0),
                store.get("segments_live", 0),
                store.get("checkpoints", 0),
                lag,
                "%.3fs ago" % age if age is not None else "never",
            )
        )
    lines.append("")

    processes = snapshot.get("processes", [])
    lines.append("PROCESSES (%d)" % len(processes))
    lines.append(
        "  %-16s %-20s %-10s %-10s %s"
        % ("INSTANCE", "DEFINITION", "STATE", "STARTER", "ACTIVITIES")
    )
    for row in processes:
        activities = ",".join(
            "%s=%d" % (state, count)
            for state, count in sorted(row.get("activities", {}).items())
        )
        lines.append(
            "  %-16s %-20s %-10s %-10s %s"
            % (
                row.get("instance", ""),
                row.get("definition", ""),
                row.get("state", ""),
                row.get("starter", "") or "-",
                activities,
            )
        )
    lines.append("")

    lines.append("COUNTERS")
    for name in _HEADLINE:
        family = _family(metrics, name)
        if family is None:
            continue
        samples = family["samples"]
        if len(samples) == 1 and not samples[0].get("labels"):
            lines.append("  %-38s %d" % (name, samples[0]["value"]))
        else:
            lines.append("  %-38s %d" % (name, _total(family)))
            for sample in samples:
                labels = ",".join(
                    "%s=%s" % kv for kv in sorted(sample["labels"].items())
                )
                lines.append("    %-36s %d" % (labels, sample["value"]))
    lines.append("")

    spans = snapshot.get("spans", [])
    lines.append("SPANS (%d retained)" % len(spans))
    tree = span_tree_lines(spans)
    shown = tree[:max_spans]
    lines.extend("  " + line for line in shown)
    if len(tree) > len(shown):
        lines.append("  ... %d more" % (len(tree) - len(shown)))

    failures = snapshot.get("hook_failures", [])
    if failures:
        lines.append("")
        lines.append("HOOK FAILURES (%d)" % len(failures))
        for failure in failures:
            lines.append(
                "  %s: %s" % (failure["subscriber"], failure["error"])
            )
    return lines


def _checkpoint_lag(store: dict[str, Any]) -> str:
    if not store.get("enabled"):
        return "-"
    lag = store.get("checkpoint_lag_records")
    if lag is None:  # never checkpointed: the whole journal is lag
        lag = store.get("journal_records", 0)
    return str(lag)


def render_shards(snapshot: dict[str, Any]) -> list[str]:
    """Render a :meth:`ShardedEngine.snapshot` dump: one row per shard
    (state, clock, live instances, scheduler and queue depths,
    checkpoint lag) plus cluster-wide bus totals."""
    shards = snapshot.get("shards", [])
    lines = [
        "SHARDS (%d) | scheduler seed %s"
        % (snapshot.get("num_shards", len(shards)), snapshot.get("seed", "-"))
    ]
    lines.append(
        "  %-10s %-8s %10s %6s %6s %8s %6s %8s %5s %9s"
        % (
            "SHARD",
            "STATE",
            "CLOCK",
            "LIVE",
            "READY",
            "DELAYED",
            "INBOX",
            "REPLIES",
            "DLQ",
            "CKPT LAG",
        )
    )
    for row in shards:
        scheduler = row.get("scheduler", {})
        queues = row.get("queues", {})
        lines.append(
            "  %-10s %-8s %10.3f %6d %6d %8d %6d %8d %5d %9s"
            % (
                row.get("name", ""),
                "crashed" if row.get("crashed") else "up",
                row.get("clock", 0.0),
                row.get("live_instances", 0),
                scheduler.get("ready", 0),
                scheduler.get("delayed", 0),
                queues.get("inbox", 0),
                queues.get("replies", 0),
                queues.get("dlq", 0),
                _checkpoint_lag(row.get("store", {})),
            )
        )
    bus = snapshot.get("bus", {})
    totals: dict[str, int] = {}
    for counters in bus.values():
        for key, value in counters.items():
            totals[key] = totals.get(key, 0) + value
    lines.append("")
    lines.append(
        "BUS (%d queues) sent %d | delivered %d | redelivered %d | "
        "dead-lettered %d"
        % (
            len(bus),
            totals.get("sent", 0),
            totals.get("delivered", 0),
            totals.get("redelivered", 0),
            totals.get("dead_lettered", 0),
        )
    )
    return lines


def _demo_snapshot() -> dict[str, Any]:
    """Run a small traced workload and snapshot it (for `demo`)."""
    from repro.obs.export import engine_snapshot
    from repro.wfms.engine import Engine
    from repro.wfms.model import Activity, ProcessDefinition

    engine = Engine(observability=True)
    engine.register_program("work", lambda ctx: 0, "demo step")
    definition = ProcessDefinition("DemoFlow")
    definition.add_activity(Activity("Prepare", program="work"))
    definition.add_activity(Activity("Execute", program="work"))
    definition.add_activity(Activity("Report", program="work"))
    definition.connect("Prepare", "Execute")
    definition.connect("Execute", "Report")
    engine.register_definition(definition)
    for __ in range(3):
        engine.start_process("DemoFlow")
    engine.run()
    return engine_snapshot(engine)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.monitor",
        description="Render engine observability snapshots.",
    )
    parser.add_argument(
        "command", choices=["view", "prom", "spans", "shards", "demo"]
    )
    parser.add_argument(
        "file", nargs="?", help="snapshot JSON (not needed for demo)"
    )
    parser.add_argument(
        "--max-spans",
        type=int,
        default=40,
        help="span lines to show in the view (default 40)",
    )
    return parser


def main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    if args.command == "demo":
        snapshot = _demo_snapshot()
    else:
        if not args.file:
            print("error: snapshot file required", file=out)
            return 2
        try:
            with open(args.file, "r", encoding="utf-8") as handle:
                snapshot = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print("error: %s" % exc, file=out)
            return 1
    if args.command == "prom":
        out.write(to_prometheus_text(snapshot.get("metrics", [])))
        return 0
    if args.command == "spans":
        for line in span_tree_lines(snapshot.get("spans", [])):
            print(line, file=out)
        return 0
    if args.command == "shards":
        for line in render_shards(snapshot):
            print(line, file=out)
        return 0
    for line in render_snapshot(snapshot, max_spans=args.max_spans):
        print(line, file=out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
