"""The Exotica/FMTM pre-processor as a command-line tool.

Usage::

    python -m repro.tools.fmtm SPEC_FILE [--fdl-out FILE] [--run]
        [--abort STEP[,STEP...]] [--input NAME=VALUE ...]

Reads an FMTM specification (MODEL SAGA / FLEXIBLE / CONTRACT),
validates it, translates it, prints the pipeline stages, and writes
the generated FDL.  With ``--run`` the translated process executes
against stub subtransactions (each writes a flag key to an in-memory
database; ``--abort`` makes the named steps abort their first attempt)
and the tool prints the execution trace — enough to explore every
branch of a model without writing code.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError
from repro.tx import AbortScript, SimDatabase, Subtransaction
from repro.tx.subtransaction import write_value
from repro.wfms.engine import Engine
from repro.core.contract import (
    ContractSpec,
    register_contract_programs,
    translate_contract,
    workflow_contract_outcome,
)
from repro.core.flexible import FlexibleSpec
from repro.core.flexible_translator import translate_flexible
from repro.core.parallel_saga import (
    register_parallel_saga_programs,
    translate_parallel_saga,
    workflow_parallel_saga_outcome,
)
from repro.core.sagas import SagaSpec
from repro.core.saga_translator import translate_saga
from repro.core.bindings import (
    register_flexible_programs,
    register_saga_programs,
    workflow_flexible_outcome,
    workflow_saga_outcome,
)
from repro.core.fmtm import FMTMPipeline
from repro.core.speclang import parse_spec


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.fmtm",
        description="Translate FMTM specifications into workflow processes.",
    )
    parser.add_argument("spec", help="specification file (MODEL ... END)")
    parser.add_argument(
        "--fdl-out", metavar="FILE", help="write the generated FDL here"
    )
    parser.add_argument(
        "--run",
        action="store_true",
        help="execute the translated process against stub subtransactions",
    )
    parser.add_argument(
        "--abort",
        default="",
        metavar="STEPS",
        help="comma-separated steps whose first attempt aborts (with --run)",
    )
    parser.add_argument(
        "--input",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="process input member (contract context), repeatable",
    )
    return parser


def _stub_bindings(step_names, compensatable, aborts, database):
    actions = {}
    compensations = {}
    for name in step_names:
        sub = Subtransaction(name, database, write_value(name, 1))
        if name in aborts:
            sub.policy = AbortScript([1])
        actions[name] = sub
    for name in compensatable:
        compensations[name] = Subtransaction(
            "undo_%s" % name, database, write_value(name, 0)
        )
    return actions, compensations


def _prepare(spec, aborts, engine, database):
    """Translate + register stub programs; returns (translation, outcome_fn)."""
    if isinstance(spec, SagaSpec):
        names = [s.name for s in spec.steps]
        actions, comps = _stub_bindings(names, names, aborts, database)
        if spec.is_linear:
            translation = translate_saga(spec)
            register_saga_programs(engine, translation, actions, comps)
            return translation, workflow_saga_outcome
        translation = translate_parallel_saga(spec)
        register_parallel_saga_programs(engine, translation, actions, comps)
        return translation, workflow_parallel_saga_outcome
    if isinstance(spec, FlexibleSpec):
        names = list(spec.members)
        compensatable = [
            n for n, m in spec.members.items() if m.compensatable
        ]
        actions, comps = _stub_bindings(names, compensatable, aborts, database)
        translation = translate_flexible(spec)
        register_flexible_programs(engine, translation, actions, comps)
        return translation, workflow_flexible_outcome
    if isinstance(spec, ContractSpec):
        names = [s.name for s in spec.steps]
        actions, comps = _stub_bindings(names, names, aborts, database)
        translation = translate_contract(spec)
        register_contract_programs(engine, translation, actions, comps)
        return translation, workflow_contract_outcome
    raise ReproError("unsupported model %r" % type(spec).__name__)


def _parse_inputs(pairs):
    values = {}
    for pair in pairs:
        if "=" not in pair:
            raise ReproError("--input expects NAME=VALUE, got %r" % pair)
        name, __, raw = pair.partition("=")
        try:
            values[name] = int(raw)
        except ValueError:
            values[name] = raw
    return values


def main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    try:
        with open(args.spec, "r", encoding="utf-8") as handle:
            text = handle.read()
        spec = parse_spec(text)
        aborts = {s for s in args.abort.split(",") if s}
        database = SimDatabase("stub")
        engine = Engine()
        translation, outcome_fn = _prepare(spec, aborts, engine, database)
        pipeline = FMTMPipeline(engine)
        report = pipeline.process_specification(text)
        print("model:    %s" % type(spec).__name__, file=out)
        print("process:  %s" % report.process_name, file=out)
        for stage in report.stages:
            print(
                "  %-22s %.6fs %s"
                % (stage.name, stage.seconds, stage.detail),
                file=out,
            )
        if args.fdl_out:
            with open(args.fdl_out, "w", encoding="utf-8") as handle:
                handle.write(report.fdl_text)
            print("fdl:      %s (%d chars)" % (args.fdl_out, len(report.fdl_text)), file=out)
        if args.run:
            inputs = _parse_inputs(args.input)
            instance = engine.start_process(report.process_name, inputs)
            engine.run()
            outcome = outcome_fn(engine, report.translation, instance)
            print("state:    %s" % engine.instance_state(instance), file=out)
            print("committed: %s" % outcome.committed, file=out)
            for field in ("executed", "compensated", "skipped",
                          "committed_path"):
                value = getattr(outcome, field, None)
                if value:
                    print("%s: %s" % (field, value), file=out)
            print("database: %s" % database.snapshot(), file=out)
    except (OSError, ReproError) as exc:
        print("error: %s" % exc, file=out)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
