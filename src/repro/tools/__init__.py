"""Command-line tools.

* ``python -m repro.tools.fmtm`` — the Exotica/FMTM pre-processor as a
  command: parse a specification file, validate it, translate it and
  emit FDL (optionally executing it against stub subtransactions).
* ``python -m repro.tools.fdl`` — check or summarise FDL documents.

Both expose ``main(argv) -> int`` for tests.
"""
