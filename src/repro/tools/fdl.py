"""FDL command-line tool.

Usage::

    python -m repro.tools.fdl check FILE        # parse + validate
    python -m repro.tools.fdl summary FILE      # inventory per process
    python -m repro.tools.fdl roundtrip FILE    # re-export (stability)
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError
from repro.fdl import export_document, import_text
from repro.wfms.model import ActivityKind


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.fdl",
        description="Check and inspect FDL documents.",
    )
    parser.add_argument(
        "command", choices=["check", "summary", "roundtrip"]
    )
    parser.add_argument("file", help="FDL document")
    return parser


def main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    try:
        with open(args.file, "r", encoding="utf-8") as handle:
            text = handle.read()
        result = import_text(text)
    except (OSError, ReproError) as exc:
        print("error: %s" % exc, file=out)
        return 1
    if args.command == "check":
        print(
            "ok: %d process(es), %d program declaration(s)"
            % (len(result.definitions), len(result.program_declarations)),
            file=out,
        )
        return 0
    if args.command == "summary":
        for definition in result.definitions:
            print("PROCESS %s (version %s)" % (definition.name, definition.version), file=out)
            for name, activity in definition.activities.items():
                kind = activity.kind.value.lower()
                target = {
                    ActivityKind.PROGRAM: activity.program,
                    ActivityKind.PROCESS: activity.subprocess,
                    ActivityKind.BLOCK: "%d inner activities"
                    % (len(activity.block.activities) if activity.block else 0),
                }[activity.kind]
                print("  %-10s %-24s -> %s" % (kind, name, target), file=out)
            print(
                "  %d control connector(s), %d data connector(s)"
                % (
                    len(definition.control_connectors),
                    len(definition.data_connectors),
                ),
                file=out,
            )
        return 0
    # roundtrip
    again = export_document(result.definitions, result.program_declarations)
    stable = import_text(again)
    same = {d.name for d in stable.definitions} == {
        d.name for d in result.definitions
    }
    print("roundtrip %s (%d chars)" % ("stable" if same else "UNSTABLE", len(again)), file=out)
    return 0 if same else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
