"""Durable-store operator CLI.

Offline inspection and maintenance of a :class:`~repro.store.DurableStore`
directory (the files an ``Engine(store=...)`` writes)::

    python -m repro.tools.store inspect   STORE_DIR
    python -m repro.tools.store checkpoint STORE_DIR
    python -m repro.tools.store compact   STORE_DIR
    python -m repro.tools.store archive-query STORE_DIR --definition Pay
    python -m repro.tools.store archive-query STORE_DIR --outcomes

``inspect`` summarises the segmented journal (manifest + segments),
the checkpoints (newest first, each verified) and the archive, and
reports the *replay debt*: how many journal records a recovery would
replay past the latest valid checkpoint.  ``checkpoint`` validates
every snapshot file on disk.  ``compact`` drops journal segments
wholly covered by the latest valid checkpoint and rewrites the oldest
live segment keeping only unfinished-instance records — exactly what
the engine does online after each checkpoint.  ``archive-query``
answers the monitoring queries (:meth:`by_id`, :meth:`by_definition`,
:meth:`finished_between`, :meth:`outcomes`) from the archive file.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import RecoveryError, WorkflowError
from repro.store import Checkpoint, DurableStore


def _open_store(directory: str) -> DurableStore:
    store = DurableStore(directory)
    store.attach()
    return store


def _checkpoint_rows(store: DurableStore) -> list[dict]:
    rows = []
    for path in store.checkpoint_files():
        checkpoint = Checkpoint.load(path)
        if checkpoint is None:
            rows.append({"file": path, "valid": False})
        else:
            rows.append(
                {
                    "file": path,
                    "valid": True,
                    "offset": checkpoint.offset,
                    "sequence": checkpoint.sequence,
                    "clock": checkpoint.clock,
                    "instances": checkpoint.instance_count,
                }
            )
    return rows


def cmd_inspect(store: DurableStore, args, out) -> int:
    journal = store.journal
    status = store.status()
    print("store %s" % status["directory"], file=out)
    print(
        "journal: %d records in %d live segments"
        % (status["journal_records"], status["segments_live"]),
        file=out,
    )
    for entry in journal.manifest()["segments"]:
        count = entry["count"]
        print(
            "  segment %d %-28s first=%d count=%s%s"
            % (
                entry["id"],
                entry["file"],
                entry["first"],
                count if count is not None else "(active)",
                " sparse" if entry.get("sparse") else "",
            ),
            file=out,
        )
    rows = _checkpoint_rows(store)
    print("checkpoints: %d" % len(rows), file=out)
    for row in reversed(rows):  # newest first
        if row["valid"]:
            print(
                "  %s offset=%d sequence=%d clock=%.3f instances=%d"
                % (
                    row["file"],
                    row["offset"],
                    row["sequence"],
                    row["clock"],
                    row["instances"],
                ),
                file=out,
            )
        else:
            print("  %s CORRUPT (recovery skips it)" % row["file"], file=out)
    checkpoint, skipped = store.latest_checkpoint()
    debt = (
        journal.next_index - checkpoint.offset
        if checkpoint is not None
        else journal.next_index
    )
    print(
        "replay debt: %d records past %s%s"
        % (
            debt,
            "offset %d" % checkpoint.offset
            if checkpoint is not None
            else "the journal start (no valid checkpoint)",
            " (%d corrupt checkpoint(s) skipped)" % skipped if skipped else "",
        ),
        file=out,
    )
    print(
        "archive: %d roots / %d instances, outcomes %s"
        % (
            status["archived_roots"],
            status["archived_instances"],
            json.dumps(store.archive.outcomes(), sort_keys=True),
        ),
        file=out,
    )
    return 0


def cmd_checkpoint(store: DurableStore, args, out) -> int:
    rows = _checkpoint_rows(store)
    if not rows:
        print("no checkpoint files", file=out)
        return 0
    bad = 0
    for row in rows:
        if row["valid"]:
            print(
                "VALID   %s offset=%d instances=%d"
                % (row["file"], row["offset"], row["instances"]),
                file=out,
            )
        else:
            bad += 1
            print("CORRUPT %s" % row["file"], file=out)
    return 1 if bad == len(rows) else 0


def cmd_compact(store: DurableStore, args, out) -> int:
    checkpoint, __ = store.latest_checkpoint()
    if checkpoint is None:
        print("error: no durable checkpoint to compact against", file=out)
        return 1
    stats = store.compact(checkpoint)
    print(
        "compacted to offset %d: dropped %d segment(s) / %d record(s), "
        "rewrote %d, %d live segment(s) remain"
        % (
            stats["offset"],
            stats["segments_dropped"],
            stats["records_dropped"],
            stats["rewritten"],
            stats["segments_live"],
        ),
        file=out,
    )
    return 0


def cmd_archive_query(store: DurableStore, args, out) -> int:
    archive = store.archive
    if args.outcomes:
        print(
            json.dumps(
                {
                    str(rc): count
                    for rc, count in archive.outcomes(args.definition).items()
                },
                sort_keys=True,
            ),
            file=out,
        )
        return 0
    if args.id:
        view = archive.by_id(args.id)
        if view is None:
            print("error: %s is not archived" % args.id, file=out)
            return 1
        print(json.dumps(view, indent=2, sort_keys=True), file=out)
        return 0
    if args.since is not None or args.until is not None:
        start = args.since if args.since is not None else float("-inf")
        end = args.until if args.until is not None else float("inf")
        entries = archive.finished_between(start, end)
    elif args.definition:
        entries = archive.by_definition(args.definition)
    else:
        entries = [archive.by_id(root) for root in archive.roots()]
    if args.definition:
        entries = [e for e in entries if e["definition"] == args.definition]
    for entry in entries:
        print(
            "%s %s v%s rc=%d finished_at=%.3f instances=%d"
            % (
                entry["root"],
                entry["definition"],
                entry["version"],
                entry["rc"],
                entry["finished_at"],
                len(entry["instances"]),
            ),
            file=out,
        )
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.store",
        description="Inspect and maintain a durable store directory.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in ("inspect", "checkpoint", "compact"):
        command = sub.add_parser(name)
        command.add_argument("directory")
    query = sub.add_parser("archive-query")
    query.add_argument("directory")
    query.add_argument("--definition", help="filter by process definition")
    query.add_argument("--id", help="one instance (root or descendant)")
    query.add_argument("--since", type=float, help="finished_at lower bound")
    query.add_argument("--until", type=float, help="finished_at upper bound")
    query.add_argument(
        "--outcomes",
        action="store_true",
        help="return-code histogram instead of entries",
    )
    return parser


_COMMANDS = {
    "inspect": cmd_inspect,
    "checkpoint": cmd_checkpoint,
    "compact": cmd_compact,
    "archive-query": cmd_archive_query,
}


def main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    try:
        store = _open_store(args.directory)
    except (OSError, RecoveryError, WorkflowError) as exc:
        print("error: %s" % exc, file=out)
        return 1
    try:
        return _COMMANDS[args.command](store, args, out)
    except (OSError, RecoveryError, WorkflowError) as exc:
        print("error: %s" % exc, file=out)
        return 1
    finally:
        store.close()


if __name__ == "__main__":
    raise SystemExit(main())
