"""Scoped transaction models: workflows over one shared transaction.

The saga translation (Figure 2) gives every step its own ACID
subtransaction and undoes committed steps with *compensations*.  With
cross-activity scopes (:mod:`repro.tx.scope`) the same control flow
can run **inside one transaction**: ``Begin`` opens the scope, the
steps write under it, ``Commit`` / ``Rollback`` end it — so abort
semantics come from WAL undo instead of compensation programs, and
partial rollback (Lanese's dynamic-saga workloads) falls out of
savepoints.

Two constructions:

* :func:`translate_scoped_saga` — the saga chain over a shared scope.
  Steps named in ``optional_steps`` get a ``SP_<step>`` savepoint
  activity before them and a ``RB_<step>`` rollback-to-savepoint
  activity on their failure edge, after which the chain *continues*:
  an optional step's failure costs only its own writes.
* :func:`translate_pivot_chain` — the pivot-then-retriable shape of
  flexible transactions (§4.2): a compensatable prefix runs inside the
  scope (rollback = WAL undo, no compensations needed), the **pivot is
  the scope commit**, and the retriable suffix runs after it as
  ordinary subtransactions re-executed until they commit.

The scope handle travels through data containers: ``Begin`` writes it
to its ``Scope`` output member and a data connector fans it out to
every scope-touching activity — it is workflow data like any other.

Return codes follow the saga appendix convention (0 = success), so
these processes compose with the existing saga machinery and outcome
extractors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ScopeError, SpecificationError, TransactionAborted
from repro.tx.scope import IsolationLevel, ScopeManager
from repro.tx.subtransaction import Subtransaction
from repro.wfms.datatypes import DataType, VariableDecl
from repro.wfms.engine import Engine
from repro.wfms.model import (
    PROCESS_OUTPUT,
    Activity,
    ProcessDefinition,
    StartCondition,
)
from repro.core.compblock import state_var
from repro.core.saga_translator import SAGA_ABORT_RC, SAGA_COMMIT_RC
from repro.core.sagas import SagaSpec

#: Engine service key under which the :class:`ScopeManager` lives.
SCOPE_SERVICE = "tx_scopes"

#: Generic program names (handle- and activity-name-driven).
SCOPE_SAVEPOINT_PROGRAM = "scope_savepoint"
SCOPE_ROLLBACK_TO_PROGRAM = "scope_rollback_to"
SCOPE_COMMIT_PROGRAM = "scope_commit"
SCOPE_ROLLBACK_PROGRAM = "scope_rollback"

#: Activity-name prefixes the generic programs key off.
SAVEPOINT_PREFIX = "SP_"
ROLLBACK_TO_PREFIX = "RB_"


@dataclass
class ScopedSagaTranslation:
    """Output of :func:`translate_scoped_saga`."""

    spec: SagaSpec
    process: ProcessDefinition
    isolation: IsolationLevel
    timeout: int | None
    optional_steps: tuple[str, ...]
    begin_program: str
    #: program name -> description (the FDL PROGRAM section).
    required_programs: dict[str, str] = field(default_factory=dict)


@dataclass
class PivotChainTranslation:
    """Output of :func:`translate_pivot_chain`."""

    name: str
    process: ProcessDefinition
    isolation: IsolationLevel
    timeout: int | None
    scoped_steps: tuple[str, ...]
    retriable_steps: tuple[str, ...]
    begin_program: str
    required_programs: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class ScopedOutcome:
    """Model-level outcome of a scoped execution."""

    committed: bool
    rolled_back: bool
    executed: list[str]
    #: Steps whose failure was absorbed by rollback-to-savepoint.
    partially_rolled_back: list[str]


# ---------------------------------------------------------------------------
# generic scope programs
# ---------------------------------------------------------------------------

def _manager(ctx) -> ScopeManager | None:
    return ctx.services.get(SCOPE_SERVICE)


def _scope_of(ctx):
    """The open scope named by the input handle, or None (crash-torn
    scopes, replayed histories, Begin failures all land here)."""
    manager = _manager(ctx)
    if manager is None:
        return None
    handle = ctx.input.get("Scope") if ctx.input.has("Scope") else ""
    if not handle:
        return None
    return manager.get(handle)


def _passthrough_scope(ctx) -> None:
    if ctx.output.has("Scope") and ctx.input.has("Scope"):
        ctx.output.set("Scope", ctx.input.get("Scope"))


def scope_savepoint_program(ctx) -> int:
    """Set a savepoint named after the activity (``SP_<step>``)."""
    scope = _scope_of(ctx)
    _passthrough_scope(ctx)
    if scope is None:
        return SAGA_ABORT_RC
    try:
        scope.savepoint(ctx.activity)
    except TransactionAborted:
        return SAGA_ABORT_RC
    return SAGA_COMMIT_RC


def scope_rollback_to_program(ctx) -> int:
    """Roll the scope back to the matching savepoint: activity
    ``RB_<step>`` targets savepoint ``SP_<step>``."""
    scope = _scope_of(ctx)
    _passthrough_scope(ctx)
    if scope is None:
        return SAGA_ABORT_RC
    name = SAVEPOINT_PREFIX + ctx.activity[len(ROLLBACK_TO_PREFIX):]
    try:
        scope.rollback_to_savepoint(name)
    except TransactionAborted:
        return SAGA_ABORT_RC
    return SAGA_COMMIT_RC


def scope_commit_program(ctx) -> int:
    """Commit the scope.  An injected ``scope.commit`` fault raises
    out of here (the engine's retry/escalation policy applies, like
    any crashing external program)."""
    scope = _scope_of(ctx)
    committed = False
    if scope is not None:
        try:
            scope.commit()
            committed = True
        except TransactionAborted:
            committed = False
    if ctx.output.has("State"):
        ctx.output.set("State", 1 if committed else 0)
    return SAGA_COMMIT_RC if committed else SAGA_ABORT_RC


def scope_rollback_program(ctx) -> int:
    """Roll the scope back.  Idempotent by design: unknown or already
    finished handles are a success, so replay and the root-finish
    safety net can both fire it unconditionally."""
    manager = _manager(ctx)
    handle = ctx.input.get("Scope") if ctx.input.has("Scope") else ""
    if manager is not None and handle:
        manager.rollback(handle, reason="workflow rollback")
    if ctx.output.has("State"):
        ctx.output.set("State", 1)
    return SAGA_COMMIT_RC


def make_begin_program(isolation: IsolationLevel, timeout: int | None):
    """A ``Begin`` program opening a scope for the invoking instance."""

    def scope_begin(ctx) -> int:
        manager = _manager(ctx)
        if manager is None:
            return SAGA_ABORT_RC
        try:
            scope = manager.begin(
                ctx.instance_id, isolation=isolation, timeout=timeout
            )
        except (ScopeError, TransactionAborted):
            return SAGA_ABORT_RC
        ctx.output.set("Scope", scope.handle)
        return SAGA_COMMIT_RC

    return scope_begin


def make_scoped_step_program(body):
    """Adapt a body (callable taking the open scope) into a program.

    Mirrors :meth:`Subtransaction.as_program`, but the transaction is
    the *shared scope* — the body's writes survive or vanish with it.
    """

    def scoped_step(ctx) -> int:
        scope = _scope_of(ctx)
        committed = False
        if scope is not None:
            try:
                body(scope)
                committed = True
            except TransactionAborted:
                committed = False
        if ctx.output.has("State"):
            ctx.output.set("State", 1 if committed else 0)
        return SAGA_COMMIT_RC if committed else SAGA_ABORT_RC

    return scoped_step


def install_scope_service(
    engine: Engine, manager: ScopeManager
) -> None:
    """Install ``manager`` as the engine's scope service and register
    the generic scope programs."""
    engine.services[SCOPE_SERVICE] = manager
    engine.register_program(
        SCOPE_SAVEPOINT_PROGRAM,
        scope_savepoint_program,
        "scope savepoint",
        replace=True,
    )
    engine.register_program(
        SCOPE_ROLLBACK_TO_PROGRAM,
        scope_rollback_to_program,
        "scope rollback-to-savepoint",
        replace=True,
    )
    engine.register_program(
        SCOPE_COMMIT_PROGRAM, scope_commit_program, "scope commit", replace=True
    )
    engine.register_program(
        SCOPE_ROLLBACK_PROGRAM,
        scope_rollback_program,
        "scope rollback",
        replace=True,
    )


# ---------------------------------------------------------------------------
# translation: saga over a shared scope
# ---------------------------------------------------------------------------

def translate_scoped_saga(
    spec: SagaSpec,
    *,
    isolation: IsolationLevel = IsolationLevel.SERIALIZABLE,
    timeout: int | None = None,
    optional_steps: tuple[str, ...] | list[str] = (),
) -> ScopedSagaTranslation:
    """Translate a linear saga into a process over one shared scope.

    ``optional_steps`` get savepoint-partial-rollback semantics: a
    savepoint before the step, rollback-to-savepoint on its failure,
    and the chain continues either way (the successor is an OR-join).
    Failure anywhere else routes to the full ``Rollback``.
    """
    if not spec.is_linear:
        raise SpecificationError(
            "scoped sagas are defined for linear sagas (one shared "
            "transaction has one serial history)"
        )
    optional = tuple(optional_steps)
    known = {step.name for step in spec.steps}
    for name in optional:
        if name not in known:
            raise SpecificationError(
                "optional step %r is not a step of saga %s"
                % (name, spec.name)
            )
    scope_decl = VariableDecl("Scope", DataType.STRING)
    state_decl = VariableDecl("State", DataType.LONG)
    process = ProcessDefinition(
        "ScopedSaga_%s" % spec.name,
        description="saga %r over one shared transaction scope" % spec.name,
        output_spec=[
            VariableDecl(state_var(step.name), DataType.LONG)
            for step in spec.steps
        ]
        + [
            VariableDecl("Committed", DataType.LONG),
            VariableDecl("RolledBack", DataType.LONG),
        ],
    )
    begin_program = "scope_begin_%s" % spec.name
    process.add_activity(
        Activity(
            "Begin",
            program=begin_program,
            output_spec=[scope_decl],
            description="open the shared scope",
        )
    )
    process.add_activity(
        Activity(
            "Rollback",
            program=SCOPE_ROLLBACK_PROGRAM,
            input_spec=[scope_decl],
            output_spec=[state_decl],
            start_condition=StartCondition.ANY,
            description="roll the scope back (any failure routes here)",
        )
    )
    process.connect("Begin", "Rollback", "RC <> %d" % SAGA_COMMIT_RC)
    scope_users: list[str] = ["Rollback"]
    # sources feeding the next chain element: (activity, condition).
    pending: list[str] = ["Begin"]
    for step in spec.steps:
        # The chain element receiving the predecessors' edges is the
        # savepoint for optional steps, the step itself otherwise; it
        # is an OR-join when the predecessor was optional (exactly one
        # of step / RB fires, the other is dead-path-eliminated).
        join = (
            StartCondition.ANY if len(pending) > 1 else StartCondition.ALL
        )
        entry = step.name
        if step.name in optional:
            entry = SAVEPOINT_PREFIX + step.name
            process.add_activity(
                Activity(
                    entry,
                    program=SCOPE_SAVEPOINT_PROGRAM,
                    input_spec=[scope_decl],
                    output_spec=[scope_decl],
                    start_condition=join,
                    description="savepoint before optional %s" % step.name,
                )
            )
            process.connect(
                entry, "Rollback", "RC <> %d" % SAGA_COMMIT_RC
            )
            scope_users.append(entry)
        process.add_activity(
            Activity(
                step.name,
                program="sc_%s" % step.program,
                input_spec=[scope_decl],
                output_spec=[state_decl],
                start_condition=(
                    StartCondition.ALL if entry != step.name else join
                ),
                description="scoped step %s" % step.name,
            )
        )
        scope_users.append(step.name)
        for source in pending:
            process.connect(source, entry, "RC = %d" % SAGA_COMMIT_RC)
        if entry != step.name:
            process.connect(entry, step.name, "RC = %d" % SAGA_COMMIT_RC)
        process.map_data(
            step.name, PROCESS_OUTPUT, [("State", state_var(step.name))]
        )
        if step.name in optional:
            rb = ROLLBACK_TO_PREFIX + step.name
            process.add_activity(
                Activity(
                    rb,
                    program=SCOPE_ROLLBACK_TO_PROGRAM,
                    input_spec=[scope_decl],
                    output_spec=[scope_decl],
                    description="absorb %s's failure via its savepoint"
                    % step.name,
                )
            )
            scope_users.append(rb)
            process.connect(step.name, rb, "RC <> %d" % SAGA_COMMIT_RC)
            process.connect(rb, "Rollback", "RC <> %d" % SAGA_COMMIT_RC)
            pending = [step.name, rb]
        else:
            process.connect(
                step.name, "Rollback", "RC <> %d" % SAGA_COMMIT_RC
            )
            pending = [step.name]
    process.add_activity(
        Activity(
            "Commit",
            program=SCOPE_COMMIT_PROGRAM,
            input_spec=[scope_decl],
            output_spec=[state_decl],
            start_condition=(
                StartCondition.ANY if len(pending) > 1 else StartCondition.ALL
            ),
            description="commit the shared scope",
        )
    )
    scope_users.append("Commit")
    for source in pending:
        process.connect(source, "Commit", "RC = %d" % SAGA_COMMIT_RC)
    process.connect("Commit", "Rollback", "RC <> %d" % SAGA_COMMIT_RC)
    for user in scope_users:
        process.map_data("Begin", user, [("Scope", "Scope")])
    process.map_data(
        "Commit", PROCESS_OUTPUT, [("State", "Committed"), ("_RC", "_RC")]
    )
    process.map_data(
        "Rollback", PROCESS_OUTPUT, [("State", "RolledBack"), ("_RC", "_RC")]
    )
    process.validate()
    required = {
        begin_program: "open the shared scope",
        SCOPE_COMMIT_PROGRAM: "commit the shared scope",
        SCOPE_ROLLBACK_PROGRAM: "roll the shared scope back",
    }
    if optional:
        required[SCOPE_SAVEPOINT_PROGRAM] = "set a savepoint"
        required[SCOPE_ROLLBACK_TO_PROGRAM] = "roll back to a savepoint"
    for step in spec.steps:
        required["sc_%s" % step.program] = "scoped step %s" % step.name
    return ScopedSagaTranslation(
        spec=spec,
        process=process,
        isolation=isolation,
        timeout=timeout,
        optional_steps=optional,
        begin_program=begin_program,
        required_programs=required,
    )


def register_scoped_saga_programs(
    engine: Engine,
    translation: ScopedSagaTranslation,
    bodies: dict,
    manager: ScopeManager,
) -> None:
    """Install the scope service and every program the scoped saga
    references.  ``bodies`` maps step name -> callable(scope)."""
    install_scope_service(engine, manager)
    engine.register_program(
        translation.begin_program,
        make_begin_program(translation.isolation, translation.timeout),
        "open scope for saga %s" % translation.spec.name,
        replace=True,
    )
    for step in translation.spec.steps:
        if step.name not in bodies:
            raise SpecificationError("no body bound for %r" % step.name)
        engine.register_program(
            "sc_%s" % step.program,
            make_scoped_step_program(bodies[step.name]),
            "scoped step %s" % step.name,
            replace=True,
        )


# ---------------------------------------------------------------------------
# translation: pivot-then-retriable chain
# ---------------------------------------------------------------------------

def translate_pivot_chain(
    name: str,
    scoped_steps: list[str],
    retriable_steps: list[str],
    *,
    isolation: IsolationLevel = IsolationLevel.SERIALIZABLE,
    timeout: int | None = None,
    max_retriable_attempts: int = 100,
) -> PivotChainTranslation:
    """The §4.2 pivot shape over a scope.

    The compensatable prefix runs inside the scope (its "compensation"
    is WAL undo), the **pivot is the scope commit**, and each
    retriable step re-executes until it commits (exit condition
    ``RC = 0``), exactly the forward-recovery discipline the pivot
    licenses.
    """
    if not scoped_steps:
        raise SpecificationError("pivot chain %s has no scoped prefix" % name)
    overlap = set(scoped_steps) & set(retriable_steps)
    if overlap:
        raise SpecificationError(
            "pivot chain %s: steps %s are both scoped and retriable"
            % (name, sorted(overlap))
        )
    scope_decl = VariableDecl("Scope", DataType.STRING)
    state_decl = VariableDecl("State", DataType.LONG)
    process = ProcessDefinition(
        "Pivot_%s" % name,
        description="pivot-then-retriable chain %r over one scope" % name,
        output_spec=[
            VariableDecl("Committed", DataType.LONG),
            VariableDecl("RolledBack", DataType.LONG),
        ],
    )
    begin_program = "scope_begin_%s" % name
    process.add_activity(
        Activity("Begin", program=begin_program, output_spec=[scope_decl])
    )
    process.add_activity(
        Activity(
            "Rollback",
            program=SCOPE_ROLLBACK_PROGRAM,
            input_spec=[scope_decl],
            output_spec=[state_decl],
            start_condition=StartCondition.ANY,
        )
    )
    process.connect("Begin", "Rollback", "RC <> %d" % SAGA_COMMIT_RC)
    previous = "Begin"
    for step in scoped_steps:
        process.add_activity(
            Activity(
                step,
                program="sc_txn_%s" % step,
                input_spec=[scope_decl],
                output_spec=[state_decl],
            )
        )
        process.connect(previous, step, "RC = %d" % SAGA_COMMIT_RC)
        process.connect(step, "Rollback", "RC <> %d" % SAGA_COMMIT_RC)
        process.map_data("Begin", step, [("Scope", "Scope")])
        previous = step
    process.add_activity(
        Activity(
            "Pivot",
            program=SCOPE_COMMIT_PROGRAM,
            input_spec=[scope_decl],
            output_spec=[state_decl],
            description="the pivot: commit the scope",
        )
    )
    process.connect(previous, "Pivot", "RC = %d" % SAGA_COMMIT_RC)
    process.connect("Pivot", "Rollback", "RC <> %d" % SAGA_COMMIT_RC)
    process.map_data("Begin", "Pivot", [("Scope", "Scope")])
    process.map_data("Begin", "Rollback", [("Scope", "Scope")])
    previous = "Pivot"
    for step in retriable_steps:
        # Retriable: the exit condition re-runs the activity until it
        # commits — after the pivot, only forward recovery is legal.
        process.add_activity(
            Activity(
                step,
                program="ret_txn_%s" % step,
                output_spec=[state_decl],
                exit_condition="RC = %d" % SAGA_COMMIT_RC,
                max_iterations=max_retriable_attempts,
            )
        )
        process.connect(previous, step, "RC = %d" % SAGA_COMMIT_RC)
        previous = step
    process.map_data(
        "Pivot", PROCESS_OUTPUT, [("State", "Committed"), ("_RC", "_RC")]
    )
    process.map_data(
        "Rollback", PROCESS_OUTPUT, [("State", "RolledBack"), ("_RC", "_RC")]
    )
    process.validate()
    required = {
        begin_program: "open the scope",
        SCOPE_COMMIT_PROGRAM: "the pivot (scope commit)",
        SCOPE_ROLLBACK_PROGRAM: "roll the scope back",
    }
    for step in scoped_steps:
        required["sc_txn_%s" % step] = "scoped step %s" % step
    for step in retriable_steps:
        required["ret_txn_%s" % step] = "retriable step %s" % step
    return PivotChainTranslation(
        name=name,
        process=process,
        isolation=isolation,
        timeout=timeout,
        scoped_steps=tuple(scoped_steps),
        retriable_steps=tuple(retriable_steps),
        begin_program=begin_program,
        required_programs=required,
    )


def register_pivot_chain_programs(
    engine: Engine,
    translation: PivotChainTranslation,
    bodies: dict,
    retriable: dict[str, Subtransaction],
    manager: ScopeManager,
) -> None:
    """Install the scope service and the pivot chain's programs.

    ``bodies`` maps scoped step name -> callable(scope);
    ``retriable`` maps retriable step name -> :class:`Subtransaction`.
    """
    install_scope_service(engine, manager)
    engine.register_program(
        translation.begin_program,
        make_begin_program(translation.isolation, translation.timeout),
        "open scope for chain %s" % translation.name,
        replace=True,
    )
    for step in translation.scoped_steps:
        if step not in bodies:
            raise SpecificationError("no body bound for %r" % step)
        engine.register_program(
            "sc_txn_%s" % step,
            make_scoped_step_program(bodies[step]),
            "scoped step %s" % step,
            replace=True,
        )
    for step in translation.retriable_steps:
        if step not in retriable:
            raise SpecificationError(
                "no retriable subtransaction bound for %r" % step
            )
        engine.register_program(
            "ret_txn_%s" % step,
            retriable[step].as_program(
                commit_rc=SAGA_COMMIT_RC, abort_rc=SAGA_ABORT_RC
            ),
            "retriable step %s" % step,
            replace=True,
        )


# ---------------------------------------------------------------------------
# outcome extraction
# ---------------------------------------------------------------------------

def workflow_scoped_outcome(
    engine: Engine, translation: ScopedSagaTranslation, instance_id: str
) -> ScopedOutcome:
    """Reconstruct the model-level outcome of a scoped saga run."""
    output = engine.output(instance_id)
    executed = [
        step.name
        for step in translation.spec.steps
        if output.get(state_var(step.name)) == 1
    ]
    order = engine.execution_order(instance_id, include_children=True)
    partially = [
        name[len(ROLLBACK_TO_PREFIX):]
        for name in order
        if name.startswith(ROLLBACK_TO_PREFIX)
    ]
    return ScopedOutcome(
        committed=output.get("Committed") == 1,
        rolled_back=output.get("RolledBack") == 1,
        executed=executed,
        partially_rolled_back=partially,
    )
