"""The FMTM specification language (§5).

"The user creates a specification that contains the advanced
transaction model to be used and the set of transactions to be
executed."  The language is line-oriented; names are single-quoted;
``//`` starts a comment.

Saga::

    MODEL SAGA 'travel'
      STEP 'book_flight' PROGRAM 'p_book_flight' COMPENSATION 'p_cancel'
      STEP 'book_hotel'
    END 'travel'

Flexible transaction (Figure 3's example)::

    MODEL FLEXIBLE 'reservation'
      SUBTRANSACTION 't1' COMPENSATABLE
      SUBTRANSACTION 't2' PIVOT
      SUBTRANSACTION 't3' RETRIABLE
      SUBTRANSACTION 't4' PIVOT
      SUBTRANSACTION 't5' COMPENSATABLE
      SUBTRANSACTION 't6' COMPENSATABLE
      SUBTRANSACTION 't7' RETRIABLE
      SUBTRANSACTION 't8' PIVOT
      PATH 't1' 't2' 't4' 't5' 't6' 't8'
      PATH 't1' 't2' 't4' 't7'
      PATH 't1' 't2' 't3'
    END 'reservation'

``PATH`` lines are in preference order.  ``PROGRAM``/``COMPENSATION``
override the default program names (``txn_<name>`` / ``comp_<name>``).
"""

from __future__ import annotations

from repro.errors import SpecSyntaxError
from repro.core.flexible import FlexibleMember, FlexibleSpec
from repro.core.sagas import SagaSpec, SagaStep

_KEYWORDS = {
    "MODEL",
    "SAGA",
    "FLEXIBLE",
    "CONTRACT",
    "STEP",
    "PROGRAM",
    "COMPENSATION",
    "SUBTRANSACTION",
    "COMPENSATABLE",
    "RETRIABLE",
    "PIVOT",
    "PATH",
    "ORDER",
    "CONTEXT",
    "WHEN",
    "CRITICAL",
    "LONG",
    "FLOAT",
    "STRING",
    "BINARY",
    "END",
}

_CONTEXT_TYPES = {"LONG", "FLOAT", "STRING", "BINARY"}


def _tokenize_line(line: str, lineno: int) -> list[tuple[str, str]]:
    """Tokens of one line: (kind, value) with kind KEYWORD or NAME."""
    tokens: list[tuple[str, str]] = []
    i, n = 0, len(line)
    while i < n:
        ch = line[i]
        if ch.isspace():
            i += 1
            continue
        if line[i : i + 2] == "//":
            break
        if ch == "'":
            end = line.find("'", i + 1)
            if end < 0:
                raise SpecSyntaxError("unterminated name", lineno)
            tokens.append(("NAME", line[i + 1 : end]))
            i = end + 1
            continue
        if ch == '"':
            end = line.find('"', i + 1)
            if end < 0:
                raise SpecSyntaxError("unterminated condition", lineno)
            tokens.append(("STRING", line[i + 1 : end]))
            i = end + 1
            continue
        if ch.isalpha():
            start = i
            while i < n and (line[i].isalnum() or line[i] == "_"):
                i += 1
            word = line[start:i].upper()
            if word not in _KEYWORDS:
                raise SpecSyntaxError(
                    "unknown keyword %r (names are quoted)" % line[start:i],
                    lineno,
                )
            tokens.append(("KEYWORD", word))
            continue
        raise SpecSyntaxError("illegal character %r" % ch, lineno)
    return tokens


def parse_spec(text: str) -> SagaSpec | FlexibleSpec:
    """Parse one FMTM specification into a model spec object."""
    specs = parse_specs(text)
    if len(specs) != 1:
        raise SpecSyntaxError(
            "expected exactly one MODEL, found %d" % len(specs)
        )
    return specs[0]


def parse_specs(text: str) -> list[SagaSpec | FlexibleSpec]:
    """Parse a document that may contain several MODEL sections."""
    lines = [
        (lineno, _tokenize_line(raw, lineno))
        for lineno, raw in enumerate(text.splitlines(), start=1)
    ]
    lines = [(lineno, tokens) for lineno, tokens in lines if tokens]
    specs: list[SagaSpec | FlexibleSpec] = []
    index = 0
    while index < len(lines):
        lineno, tokens = lines[index]
        if tokens[0] != ("KEYWORD", "MODEL"):
            raise SpecSyntaxError("expected MODEL", lineno)
        if len(tokens) != 3 or tokens[2][0] != "NAME":
            raise SpecSyntaxError(
                "expected MODEL SAGA|FLEXIBLE 'name'", lineno
            )
        kind = tokens[1]
        name = tokens[2][1]
        body: list[tuple[int, list[tuple[str, str]]]] = []
        index += 1
        closed = False
        while index < len(lines):
            lineno2, tokens2 = lines[index]
            if tokens2[0] == ("KEYWORD", "END"):
                if len(tokens2) != 2 or tokens2[1] != ("NAME", name):
                    raise SpecSyntaxError(
                        "END must close %r" % name, lineno2
                    )
                closed = True
                index += 1
                break
            body.append((lineno2, tokens2))
            index += 1
        if not closed:
            raise SpecSyntaxError("missing END %r" % name, lineno)
        if kind == ("KEYWORD", "SAGA"):
            specs.append(_parse_saga(name, body))
        elif kind == ("KEYWORD", "FLEXIBLE"):
            specs.append(_parse_flexible(name, body))
        elif kind == ("KEYWORD", "CONTRACT"):
            specs.append(_parse_contract(name, body))
        else:
            raise SpecSyntaxError(
                "unknown model kind %r" % (kind[1],), lineno
            )
    return specs


def _parse_saga(
    name: str, body: list[tuple[int, list[tuple[str, str]]]]
) -> SagaSpec:
    steps: list[SagaStep] = []
    order: list[tuple[str, str]] = []
    for lineno, tokens in body:
        if tokens[0] == ("KEYWORD", "ORDER"):
            # ORDER 'a' 'b' — a DAG edge (parallel/generalised sagas).
            edge = [value for kind, value in tokens[1:] if kind == "NAME"]
            if len(edge) != 2 or len(tokens) != 3:
                raise SpecSyntaxError(
                    "ORDER lines name exactly two steps", lineno
                )
            order.append((edge[0], edge[1]))
            continue
        if tokens[0] != ("KEYWORD", "STEP"):
            raise SpecSyntaxError(
                "saga bodies contain STEP and ORDER lines", lineno
            )
        if len(tokens) < 2 or tokens[1][0] != "NAME":
            raise SpecSyntaxError("STEP needs a quoted name", lineno)
        step_name = tokens[1][1]
        program = ""
        compensation = ""
        rest = tokens[2:]
        while rest:
            if len(rest) >= 2 and rest[0] == ("KEYWORD", "PROGRAM") and rest[1][0] == "NAME":
                program = rest[1][1]
                rest = rest[2:]
            elif (
                len(rest) >= 2
                and rest[0] == ("KEYWORD", "COMPENSATION")
                and rest[1][0] == "NAME"
            ):
                compensation = rest[1][1]
                rest = rest[2:]
            else:
                raise SpecSyntaxError(
                    "unexpected tokens after STEP %r" % step_name, lineno
                )
        steps.append(
            SagaStep(step_name, program=program, compensation_program=compensation)
        )
    return SagaSpec(name, steps, order=order or None)


def _parse_flexible(
    name: str, body: list[tuple[int, list[tuple[str, str]]]]
) -> FlexibleSpec:
    members: list[FlexibleMember] = []
    paths: list[list[str]] = []
    for lineno, tokens in body:
        if tokens[0] == ("KEYWORD", "SUBTRANSACTION"):
            if len(tokens) < 2 or tokens[1][0] != "NAME":
                raise SpecSyntaxError(
                    "SUBTRANSACTION needs a quoted name", lineno
                )
            member_name = tokens[1][1]
            compensatable = False
            retriable = False
            pivot_stated = False
            program = ""
            compensation = ""
            rest = tokens[2:]
            while rest:
                head = rest[0]
                if head == ("KEYWORD", "COMPENSATABLE"):
                    compensatable = True
                    rest = rest[1:]
                elif head == ("KEYWORD", "RETRIABLE"):
                    retriable = True
                    rest = rest[1:]
                elif head == ("KEYWORD", "PIVOT"):
                    pivot_stated = True
                    rest = rest[1:]
                elif (
                    head == ("KEYWORD", "PROGRAM")
                    and len(rest) >= 2
                    and rest[1][0] == "NAME"
                ):
                    program = rest[1][1]
                    rest = rest[2:]
                elif (
                    head == ("KEYWORD", "COMPENSATION")
                    and len(rest) >= 2
                    and rest[1][0] == "NAME"
                ):
                    compensation = rest[1][1]
                    rest = rest[2:]
                else:
                    raise SpecSyntaxError(
                        "unexpected tokens after SUBTRANSACTION %r"
                        % member_name,
                        lineno,
                    )
            if pivot_stated and (compensatable or retriable):
                raise SpecSyntaxError(
                    "%r: PIVOT excludes COMPENSATABLE/RETRIABLE"
                    % member_name,
                    lineno,
                )
            members.append(
                FlexibleMember(
                    member_name,
                    compensatable=compensatable,
                    retriable=retriable,
                    program=program,
                    compensation_program=compensation,
                )
            )
        elif tokens[0] == ("KEYWORD", "PATH"):
            path = [value for kind, value in tokens[1:] if kind == "NAME"]
            if len(path) != len(tokens) - 1 or not path:
                raise SpecSyntaxError(
                    "PATH lines list quoted member names", lineno
                )
            paths.append(path)
        else:
            raise SpecSyntaxError(
                "flexible bodies contain SUBTRANSACTION and PATH lines",
                lineno,
            )
    return FlexibleSpec(name, members, paths)


def _parse_contract(
    name: str, body: list[tuple[int, list[tuple[str, str]]]]
):
    """Parse a MODEL CONTRACT section::

        MODEL CONTRACT 'order'
          CONTEXT 'Amount' LONG
          STEP 'reserve'
          STEP 'insure' WHEN "Amount > 100"
          STEP 'charge' WHEN "Amount > 0" CRITICAL
        END 'order'
    """
    from repro.wfms.datatypes import DataType, VariableDecl
    from repro.core.contract import ContractSpec, ContractStep

    context: list[VariableDecl] = []
    steps: list[ContractStep] = []
    for lineno, tokens in body:
        if tokens[0] == ("KEYWORD", "CONTEXT"):
            if (
                len(tokens) != 3
                or tokens[1][0] != "NAME"
                or tokens[2][0] != "KEYWORD"
                or tokens[2][1] not in _CONTEXT_TYPES
            ):
                raise SpecSyntaxError(
                    "CONTEXT lines are: CONTEXT 'name' TYPE", lineno
                )
            context.append(
                VariableDecl(tokens[1][1], DataType[tokens[2][1]])
            )
        elif tokens[0] == ("KEYWORD", "STEP"):
            if len(tokens) < 2 or tokens[1][0] != "NAME":
                raise SpecSyntaxError("STEP needs a quoted name", lineno)
            step_name = tokens[1][1]
            entry = ""
            critical = False
            program = ""
            compensation = ""
            rest = tokens[2:]
            while rest:
                head = rest[0]
                if head == ("KEYWORD", "WHEN") and len(rest) >= 2 and rest[1][0] == "STRING":
                    entry = rest[1][1]
                    rest = rest[2:]
                elif head == ("KEYWORD", "CRITICAL"):
                    critical = True
                    rest = rest[1:]
                elif head == ("KEYWORD", "PROGRAM") and len(rest) >= 2 and rest[1][0] == "NAME":
                    program = rest[1][1]
                    rest = rest[2:]
                elif (
                    head == ("KEYWORD", "COMPENSATION")
                    and len(rest) >= 2
                    and rest[1][0] == "NAME"
                ):
                    compensation = rest[1][1]
                    rest = rest[2:]
                else:
                    raise SpecSyntaxError(
                        "unexpected tokens after STEP %r" % step_name, lineno
                    )
            steps.append(
                ContractStep(
                    step_name,
                    entry_condition=entry,
                    critical=critical,
                    program=program,
                    compensation_program=compensation,
                )
            )
        else:
            raise SpecSyntaxError(
                "contract bodies contain CONTEXT and STEP lines", lineno
            )
    return ContractSpec(name, context, steps)


def format_saga_spec(spec: SagaSpec) -> str:
    """Serialise a saga back to the specification language."""
    lines = ["MODEL SAGA '%s'" % spec.name]
    for step in spec.steps:
        lines.append(
            "  STEP '%s' PROGRAM '%s' COMPENSATION '%s'"
            % (step.name, step.program, step.compensation_program)
        )
    if not spec.is_linear:
        for source, target in spec.order:
            lines.append("  ORDER '%s' '%s'" % (source, target))
    lines.append("END '%s'" % spec.name)
    return "\n".join(lines) + "\n"


def format_contract_spec(spec) -> str:
    """Serialise a ConTract back to the specification language."""
    from repro.wfms.datatypes import DataType

    lines = ["MODEL CONTRACT '%s'" % spec.name]
    for decl in spec.context:
        assert isinstance(decl.type, DataType)
        lines.append("  CONTEXT '%s' %s" % (decl.name, decl.type.value))
    for step in spec.steps:
        parts = ["  STEP '%s'" % step.name]
        if step.entry_condition:
            parts.append('WHEN "%s"' % step.entry_condition)
        if step.critical:
            parts.append("CRITICAL")
        parts.append("PROGRAM '%s'" % step.program)
        parts.append("COMPENSATION '%s'" % step.compensation_program)
        lines.append(" ".join(parts))
    lines.append("END '%s'" % spec.name)
    return "\n".join(lines) + "\n"


def format_flexible_spec(spec: FlexibleSpec) -> str:
    """Serialise a flexible transaction back to the language."""
    lines = ["MODEL FLEXIBLE '%s'" % spec.name]
    for name in spec.members:
        member = spec.members[name]
        flags = []
        if member.compensatable:
            flags.append("COMPENSATABLE")
        if member.retriable:
            flags.append("RETRIABLE")
        if member.pivot:
            flags.append("PIVOT")
        parts = ["  SUBTRANSACTION '%s'" % name] + flags
        parts.append("PROGRAM '%s'" % member.program)
        if member.compensatable:
            parts.append("COMPENSATION '%s'" % member.compensation_program)
        lines.append(" ".join(parts))
    for path in spec.paths:
        lines.append("  PATH " + " ".join("'%s'" % m for m in path))
    lines.append("END '%s'" % spec.name)
    return "\n".join(lines) + "\n"
