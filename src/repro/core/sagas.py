"""Sagas [GMS87] (§4.1).

A saga is a sequence of subtransactions ``T1..Tn`` with compensations
``C1..Cn``; the system guarantees either ``T1..Tn`` executes, or
``T1..Tj; Cj..C1`` for some ``0 <= j < n``.

This module holds the *specification* (:class:`SagaSpec` — pure
structure plus program names, consumed by the Figure 2 translator) and
the *native executor* (:class:`NativeSagaExecutor`) — the transaction
model's own runtime, used as the baseline the workflow implementation
is compared against.

Parallel/generalised sagas [GMGK+91b] are supported as a DAG of steps
(``order`` edges); the linear case is an empty/chained order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from graphlib import CycleError, TopologicalSorter

from repro.errors import ExecutionContractViolation, SpecificationError
from repro.tx.subtransaction import Subtransaction, SubtransactionOutcome


@dataclass(frozen=True)
class SagaStep:
    """One subtransaction of a saga, with its compensation.

    ``program`` / ``compensation_program`` are the *registered program
    names* the translated workflow will invoke; they default to the
    conventional ``txn_<name>`` / ``comp_<name>``.
    """

    name: str
    program: str = ""
    compensation_program: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("saga step needs a name")
        if not self.program:
            object.__setattr__(self, "program", "txn_%s" % self.name)
        if not self.compensation_program:
            object.__setattr__(
                self, "compensation_program", "comp_%s" % self.name
            )


class SagaSpec:
    """A saga specification: ordered steps plus optional DAG edges."""

    def __init__(
        self,
        name: str,
        steps: list[SagaStep],
        order: list[tuple[str, str]] | None = None,
    ):
        if not name:
            raise SpecificationError("saga needs a name")
        if not steps:
            raise SpecificationError("saga %s has no steps" % name)
        self.name = name
        self.steps = list(steps)
        names = [step.name for step in steps]
        if len(set(names)) != len(names):
            raise SpecificationError("saga %s has duplicate steps" % name)
        self._by_name = {step.name: step for step in steps}
        if order is None:
            # Linear saga: chain the steps in list order.
            order = [
                (steps[i].name, steps[i + 1].name)
                for i in range(len(steps) - 1)
            ]
        self.order = list(order)
        for source, target in self.order:
            if source not in self._by_name or target not in self._by_name:
                raise SpecificationError(
                    "saga %s: order edge %s -> %s references unknown step"
                    % (name, source, target)
                )
        self._check_acyclic()

    @property
    def is_linear(self) -> bool:
        """Whether the order is a single chain in list order."""
        expected = [
            (self.steps[i].name, self.steps[i + 1].name)
            for i in range(len(self.steps) - 1)
        ]
        return self.order == expected

    def step(self, name: str) -> SagaStep:
        try:
            return self._by_name[name]
        except KeyError:
            raise SpecificationError(
                "saga %s has no step %r" % (self.name, name)
            ) from None

    def topological_names(self) -> list[str]:
        sorter: TopologicalSorter[str] = TopologicalSorter()
        for step in self.steps:
            sorter.add(step.name)
        for source, target in self.order:
            sorter.add(target, source)
        return list(sorter.static_order())

    def predecessors(self, name: str) -> list[str]:
        return [s for s, t in self.order if t == name]

    def _check_acyclic(self) -> None:
        try:
            self.topological_names()
        except CycleError as exc:
            raise SpecificationError(
                "saga %s has a cyclic order: %s" % (self.name, exc.args[1])
            ) from exc

    def __repr__(self) -> str:
        return "SagaSpec(%r, %d steps)" % (self.name, len(self.steps))


@dataclass
class SagaOutcome:
    """What a saga execution did."""

    committed: bool
    executed: list[str] = field(default_factory=list)
    compensated: list[str] = field(default_factory=list)
    history: list[SubtransactionOutcome] = field(default_factory=list)

    def sequence(self) -> list[str]:
        """The full T/C sequence, compensations marked ``comp_<name>``."""
        return list(self.executed) + [
            "comp_%s" % name for name in self.compensated
        ]


class NativeSagaExecutor:
    """The saga model's own runtime (the paper's baseline).

    ``actions`` / ``compensations`` map step names to
    :class:`Subtransaction` objects.  Compensations are treated as
    retriable ("compensations are in general considered retriable, in
    the sense that the compensation must be executed"): each is retried
    until it commits, bounded by ``max_compensation_attempts``.
    """

    def __init__(
        self,
        spec: SagaSpec,
        actions: dict[str, Subtransaction],
        compensations: dict[str, Subtransaction],
        *,
        max_compensation_attempts: int = 100,
    ):
        missing = [s.name for s in spec.steps if s.name not in actions]
        if missing:
            raise SpecificationError(
                "saga %s: no action bound for steps %s" % (spec.name, missing)
            )
        missing = [s.name for s in spec.steps if s.name not in compensations]
        if missing:
            raise SpecificationError(
                "saga %s: no compensation bound for steps %s"
                % (spec.name, missing)
            )
        self.spec = spec
        self.actions = actions
        self.compensations = compensations
        self.max_compensation_attempts = max_compensation_attempts

    def run(self, *, compensate_completed: bool = False) -> SagaOutcome:
        """Execute the saga; returns the outcome.

        With ``compensate_completed`` the saga is compensated even when
        every step commits (§4.1: "it is possible that users may
        require to compensate an already completed saga").
        """
        outcome = SagaOutcome(committed=True)
        aborted = False
        for name in self.spec.topological_names():
            result = self.actions[name].execute()
            outcome.history.append(result)
            if result.committed:
                outcome.executed.append(name)
            else:
                aborted = True
                break
        if aborted or compensate_completed:
            outcome.committed = not aborted
            for name in reversed(outcome.executed):
                self._compensate(name, outcome)
            if aborted:
                outcome.committed = False
        self._check_contract(outcome, compensate_completed)
        return outcome

    def _compensate(self, name: str, outcome: SagaOutcome) -> None:
        compensation = self.compensations[name]
        for __ in range(self.max_compensation_attempts):
            result = compensation.execute()
            outcome.history.append(result)
            if result.committed:
                outcome.compensated.append(name)
                return
        raise ExecutionContractViolation(
            "compensation of %s did not commit within %d attempts"
            % (name, self.max_compensation_attempts)
        )

    def _check_contract(
        self, outcome: SagaOutcome, compensate_completed: bool
    ) -> None:
        """Assert the saga guarantee on the produced history."""
        if outcome.committed and not compensate_completed:
            if outcome.compensated:
                raise ExecutionContractViolation(
                    "committed saga must not compensate"
                )
            if len(outcome.executed) != len(self.spec.steps):
                raise ExecutionContractViolation(
                    "committed saga executed %d of %d steps"
                    % (len(outcome.executed), len(self.spec.steps))
                )
            return
        if outcome.compensated != list(reversed(outcome.executed)):
            raise ExecutionContractViolation(
                "compensations %s are not the reverse of executions %s"
                % (outcome.compensated, outcome.executed)
            )


def verify_saga_guarantee(
    spec: SagaSpec, executed: list[str], compensated: list[str]
) -> bool:
    """Check ``T1..Tn`` or ``T1..Tj;Cj..C1`` against a *linear* spec.

    Used by the experiments to validate histories produced by the
    *workflow* implementation, which the native executor's built-in
    check does not see.
    """
    names = [step.name for step in spec.steps]
    if executed == names and not compensated:
        return True
    j = len(executed)
    if j >= len(names):
        return compensated == list(reversed(names))
    return executed == names[:j] and compensated == list(reversed(executed))
