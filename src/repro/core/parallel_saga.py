"""Parallel / generalised sagas as workflow processes (§4.1's "the
same ideas apply to the more general case" [GMGK+91b]).

A parallel saga's steps form a DAG; the forward block mirrors it
directly (Figure 2's construction already handles any order).  The
compensation side cannot reuse Figure 2's dead-path chain, which
assumes the executed steps form a *prefix* of a single chain.  For a
DAG, the committed set after an abort is an arbitrary downward-closed
set, so this module uses the **guarded** construction:

* the compensation block contains one compensating activity per step,
  wired with the *reversed* DAG edges, all unconditional;
* every compensating activity always executes, but its program is
  *guarded*: it first reads the forward step's ``State`` flag from its
  input container and returns success immediately (``DidRun = 0``)
  when the step never committed;
* therefore compensations run in reverse topological order of the
  forward DAG and exactly the committed steps are compensated.

The guarded construction also works for linear sagas, which makes it
the natural **ablation** against Figure 2: dead-path elimination skips
never-executed compensations inside the navigator (j activities run at
abort position j), while guarding runs all n compensating activities
and skips inside the program.  ``benchmarks/bench_ablation_comp.py``
compares them; both are behaviourally identical.
"""

from __future__ import annotations

from repro.errors import SpecificationError
from repro.tx.subtransaction import Subtransaction
from repro.wfms.datatypes import DataType, VariableDecl
from repro.wfms.engine import Engine
from repro.wfms.model import (
    PROCESS_INPUT,
    PROCESS_OUTPUT,
    Activity,
    ActivityKind,
    ProcessDefinition,
)
from repro.core.bindings import nop_program
from repro.core.compblock import NOP_PROGRAM, state_var
from repro.core.sagas import SagaOutcome, SagaSpec
from repro.core.saga_translator import (
    SAGA_ABORT_RC,
    SAGA_COMMIT_RC,
    SagaTranslation,
    _forward_block,
)


def translate_parallel_saga(
    spec: SagaSpec, *, max_compensation_attempts: int = 100
) -> SagaTranslation:
    """Translate a (possibly DAG-shaped) saga using the guarded
    compensation construction; linear sagas are accepted too."""
    forward = _forward_block(spec)
    compensation = _guarded_compensation_block(
        spec, max_compensation_attempts
    )
    state_decls = [
        VariableDecl(state_var(step.name), DataType.LONG)
        for step in spec.steps
    ]
    process = ProcessDefinition(
        "PSaga_%s" % spec.name,
        description="guarded (parallel-saga) translation of %r" % spec.name,
        output_spec=list(state_decls)
        + [VariableDecl("Compensated", DataType.LONG)],
    )
    process.add_activity(
        Activity(
            "Forward",
            kind=ActivityKind.BLOCK,
            block=forward,
            output_spec=list(state_decls),
            description="forward block (DAG of subtransactions)",
        )
    )
    process.add_activity(
        Activity(
            "Compensation",
            kind=ActivityKind.BLOCK,
            block=compensation,
            input_spec=list(state_decls),
            output_spec=[VariableDecl("Done", DataType.LONG)],
            description="guarded compensation block (reversed DAG)",
        )
    )
    # Figure 2 gates compensation on the block RC, whose last-writer
    # semantics only hold for a chain: in a DAG a parallel sibling can
    # terminate (successfully) *after* the aborted step.  Gate on the
    # State flags instead: compensate iff any step did not commit.
    failed = " OR ".join(
        "%s = 0" % state_var(step.name) for step in spec.steps
    )
    process.connect("Forward", "Compensation", failed)
    mappings = [(state_var(s.name), state_var(s.name)) for s in spec.steps]
    process.map_data("Forward", "Compensation", mappings)
    process.map_data(
        "Forward", PROCESS_OUTPUT, mappings + [("_RC", "_RC")]
    )
    process.map_data("Compensation", PROCESS_OUTPUT, [("Done", "Compensated")])
    process.validate()
    required = {NOP_PROGRAM: "null activity"}
    for step in spec.steps:
        required[step.program] = "subtransaction %s" % step.name
        required["g" + step.compensation_program] = (
            "guarded compensation of %s" % step.name
        )
    return SagaTranslation(spec, process, forward, compensation, required)


def _guarded_compensation_block(
    spec: SagaSpec, max_attempts: int
) -> ProcessDefinition:
    states = [state_var(step.name) for step in spec.steps]
    state_decls = [VariableDecl(s, DataType.LONG) for s in states]
    block = ProcessDefinition(
        "GComp_%s" % spec.name,
        description="guarded compensation block of %s" % spec.name,
        input_spec=list(state_decls),
        output_spec=[VariableDecl("Done", DataType.LONG)],
    )
    block.add_activity(
        Activity(
            "NOP",
            program=NOP_PROGRAM,
            input_spec=list(state_decls),
            output_spec=list(state_decls),
        )
    )
    block.map_data(PROCESS_INPUT, "NOP", [(s, s) for s in states])
    # Sinks of the forward DAG are the sources of the compensation DAG.
    forward_successors = {step.name: [] for step in spec.steps}
    for source, target in spec.order:
        forward_successors[source].append(target)
    for step in spec.steps:
        comp_name = "Comp_%s" % step.name
        block.add_activity(
            Activity(
                comp_name,
                program="g" + step.compensation_program,
                input_spec=list(state_decls),
                output_spec=[VariableDecl("DidRun", DataType.LONG)],
                exit_condition="RC = %d" % SAGA_COMMIT_RC,
                max_iterations=max_attempts,
                description="guarded compensation of %s" % step.name,
            )
        )
        block.map_data(PROCESS_INPUT, comp_name, [(s, s) for s in states])
        block.map_data(
            comp_name, PROCESS_OUTPUT, [("DidRun", "Done"), ("_RC", "_RC")]
        )
        if not forward_successors[step.name]:
            block.connect("NOP", comp_name)  # compensation source
    for source, target in spec.order:
        # Reverse the edge: compensate target before source.
        block.connect("Comp_%s" % target, "Comp_%s" % source)
    return block


def guarded_compensation_program(
    compensation: Subtransaction, step_name: str
):
    """Program wrapper: skip when the forward step never committed."""
    guard = state_var(step_name)

    def program(ctx) -> int:
        if not ctx.input.has(guard) or ctx.input.get(guard) != 1:
            ctx.output.set("DidRun", 0)
            return SAGA_COMMIT_RC
        outcome = compensation.execute()
        if outcome.committed:
            ctx.output.set("DidRun", 1)
            return SAGA_COMMIT_RC
        return SAGA_ABORT_RC

    program.__name__ = "guarded_comp_%s" % step_name
    return program


def register_parallel_saga_programs(
    engine: Engine,
    translation: SagaTranslation,
    actions: dict[str, Subtransaction],
    compensations: dict[str, Subtransaction],
) -> None:
    """Register forward programs and guarded compensation programs."""
    spec = translation.spec
    engine.register_program(NOP_PROGRAM, nop_program, replace=True)
    for step in spec.steps:
        if step.name not in actions:
            raise SpecificationError("no action bound for %r" % step.name)
        if step.name not in compensations:
            raise SpecificationError(
                "no compensation bound for %r" % step.name
            )
        engine.register_program(
            step.program,
            actions[step.name].as_program(
                commit_rc=SAGA_COMMIT_RC, abort_rc=SAGA_ABORT_RC
            ),
            replace=True,
        )
        engine.register_program(
            "g" + step.compensation_program,
            guarded_compensation_program(
                compensations[step.name], step.name
            ),
            replace=True,
        )


def workflow_parallel_saga_outcome(
    engine: Engine, translation: SagaTranslation, instance_id: str
) -> SagaOutcome:
    """Outcome of a guarded-translation run.

    ``compensated`` lists the steps whose compensation *actually ran*
    (guards skipped the rest), in termination order.
    """
    spec = translation.spec
    output = engine.output(instance_id)
    executed = [
        step.name
        for step in spec.steps
        if output.get(state_var(step.name)) == 1
    ]
    compensated: list[str] = []
    instance = engine.navigator.instance(instance_id)
    comp_ai = instance.activities.get("Compensation")
    if comp_ai is not None and comp_ai.child_instance:
        child = engine.navigator.instance(comp_ai.child_instance)
        for name in engine.audit.execution_order(comp_ai.child_instance):
            if not name.startswith("Comp_"):
                continue
            ai = child.activity(name)
            if ai.output is not None and ai.output.resolver("DidRun") == 1:
                compensated.append(name[len("Comp_"):])
    committed = len(executed) == len(spec.steps) and not compensated
    return SagaOutcome(
        committed=committed, executed=executed, compensated=compensated
    )
