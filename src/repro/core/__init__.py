"""The paper's contribution: advanced transaction models implemented
as workflow processes.

* :mod:`repro.core.sagas` — Linear and Parallel Sagas [GMS87] with a
  native (transaction-model) executor used as the baseline.
* :mod:`repro.core.flexible` — Flexible Transactions [ELLR90, MRSK92,
  ZNBB94]: typed subtransactions, alternative execution paths, a native
  executor, and the well-formedness checker
  (:mod:`repro.core.wellformed`).
* :mod:`repro.core.saga_translator` — the Figure 2 construction:
  saga → workflow process (forward block + compensation block).
* :mod:`repro.core.flexible_translator` — the §4.2 seven-rule
  construction: flexible transaction → workflow process (Figure 4).
* :mod:`repro.core.speclang` — the textual specification language the
  Exotica/FMTM pre-processor consumes.
* :mod:`repro.core.fmtm` — the Figure 5 pipeline: specification →
  format check → FDL → import → semantic check → executable template →
  run-time instances.
"""

from repro.core.sagas import (
    SagaOutcome,
    SagaSpec,
    SagaStep,
    NativeSagaExecutor,
)
from repro.core.flexible import (
    FlexibleMember,
    FlexibleOutcome,
    FlexibleSpec,
    NativeFlexibleExecutor,
)
from repro.core.wellformed import check_well_formed
from repro.core.saga_translator import translate_saga
from repro.core.parallel_saga import translate_parallel_saga
from repro.core.flexible_translator import translate_flexible
from repro.core.contract import (
    ContractOutcome,
    ContractSpec,
    ContractStep,
    NativeContractExecutor,
    translate_contract,
)
from repro.core.speclang import parse_spec
from repro.core.fmtm import FMTMPipeline, PipelineReport
from repro.core.scoped import (
    ScopedOutcome,
    install_scope_service,
    register_pivot_chain_programs,
    register_scoped_saga_programs,
    translate_pivot_chain,
    translate_scoped_saga,
    workflow_scoped_outcome,
)

__all__ = [
    "ContractOutcome",
    "ContractSpec",
    "ContractStep",
    "FMTMPipeline",
    "FlexibleMember",
    "FlexibleOutcome",
    "FlexibleSpec",
    "NativeContractExecutor",
    "NativeFlexibleExecutor",
    "NativeSagaExecutor",
    "PipelineReport",
    "SagaOutcome",
    "SagaSpec",
    "SagaStep",
    "ScopedOutcome",
    "check_well_formed",
    "install_scope_service",
    "parse_spec",
    "register_pivot_chain_programs",
    "register_scoped_saga_programs",
    "translate_contract",
    "translate_flexible",
    "translate_parallel_saga",
    "translate_saga",
    "translate_scoped_saga",
    "workflow_scoped_outcome",
]
