"""Flexible transaction → workflow process: the §4.2 construction
(Figure 4).

The seven translation rules of the paper, realised over the
alternative-path tree:

1. Every subtransaction (and compensating subtransaction) becomes an
   activity; RC convention of §4.2: ``1`` = committed, ``0`` = aborted.
2. Ordering follows the path tree: consecutive members of a segment are
   chained with ``RC = 1`` control connectors.
3. Activities that may abort permanently (non-retriable — pivots and
   plain compensatables) are branching points: a second outgoing
   connector with condition ``RC = 0`` routes to the failure handler.
4. Retriable activities carry exit condition ``RC = 1`` so they are
   "repeated until the subtransaction commits"; they emit no failure
   connector.
5. + 6. Each tree node owns one *compensation block* covering the
   compensatable members of its segment (built by
   :mod:`repro.core.compblock`); the members' ``State`` flags flow into
   the block through data connectors.
6. The compensation block's start condition is OR over the node's
   failure connectors, so any failure within the segment (or the
   exhaustion of the node's alternatives) triggers it.
7. Path switching "as a linear succession of events by taking advantage
   of the dead path elimination": after a node's compensation block
   terminates, control flows to the next alternative's entry activity;
   when the last alternative of a branch fails, control flows to the
   *parent* node's compensation block instead, cascading the failure
   upwards.  Branches never taken are eliminated as dead paths, so the
   process always runs to completion.

A node that cannot fail (all members retriable, or its first
alternative cannot fail) makes later alternatives unreachable; the
translator prunes them and records a note.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TranslationError
from repro.wfms.datatypes import DataType, VariableDecl
from repro.wfms.model import (
    PROCESS_OUTPUT,
    Activity,
    ActivityKind,
    ProcessDefinition,
    StartCondition,
)
from repro.core.compblock import (
    NOP_PROGRAM,
    build_compensation_block,
    state_var,
)
from repro.core.flexible import FlexibleSpec, PathTree

#: RC convention of §4.2: 1 = committed, 0 = aborted.
FLEX_COMMIT_RC = 1
FLEX_ABORT_RC = 0


@dataclass
class FlexibleTranslation:
    """The translator's output."""

    spec: FlexibleSpec
    process: ProcessDefinition
    #: program name -> description, for the FDL PROGRAM section.
    required_programs: dict[str, str]
    #: human-readable notes (e.g. pruned unreachable alternatives).
    notes: list[str] = field(default_factory=list)

    @property
    def process_name(self) -> str:
        return self.process.name


def comp_block_activity(node_id: str) -> str:
    return "CompBlock_%s" % node_id


def translate_flexible(
    spec: FlexibleSpec, *, max_retries: int = 100
) -> FlexibleTranslation:
    """Translate ``spec`` into a workflow process (Figure 4)."""
    spec.validate()
    process = ProcessDefinition(
        "Flexible_%s" % spec.name,
        description="§4.2 translation of flexible transaction %r" % spec.name,
        output_spec=[VariableDecl("Committed", DataType.LONG)]
        + [
            VariableDecl(state_var(name), DataType.LONG)
            for name in sorted(spec.members)
        ],
    )
    translation = FlexibleTranslation(
        spec,
        process,
        required_programs={NOP_PROGRAM: "null activity (compensation trigger)"},
    )
    builder = _Builder(spec, process, translation, max_retries)
    builder.build(spec.tree(), node_id="n", entry=None, failure_parent=None)
    process.validate()
    return translation


class _Builder:
    def __init__(
        self,
        spec: FlexibleSpec,
        process: ProcessDefinition,
        translation: FlexibleTranslation,
        max_retries: int,
    ):
        self.spec = spec
        self.process = process
        self.translation = translation
        self.max_retries = max_retries

    # -- failure analysis ---------------------------------------------------

    def can_fail(self, node: PathTree) -> bool:
        segment_can_fail = any(
            not self.spec.member(m).retriable for m in node.segment
        )
        if segment_can_fail:
            return True
        if node.children:
            return self.can_fail(node.children[-1])
        return False

    # -- construction ------------------------------------------------------------

    def build(
        self,
        node: PathTree,
        node_id: str,
        entry: str | None,
        failure_parent: str | None,
    ) -> None:
        """Build ``node``'s activities into the process.

        ``entry`` is the upstream activity whose commit (``RC = 1``)
        starts this node (None for the process start).
        ``failure_parent`` is the compensation-block activity of the
        enclosing node to cascade into when this node's alternatives
        are exhausted (None at the root: total failure just ends the
        process, aborted).
        """
        failure_sources: list[tuple[str, str]] = []  # (activity, condition)
        segment_activities: list[tuple[str, str]] = []  # (member, activity)
        previous = entry
        previous_condition = "RC = %d" % FLEX_COMMIT_RC
        for name in node.segment:
            member = self.spec.member(name)
            activity_name = self._add_member_activity(name, node_id)
            segment_activities.append((name, activity_name))
            if previous is not None:
                self.process.connect(previous, activity_name, previous_condition)
            if not member.retriable:
                failure_sources.append(
                    (activity_name, "RC = %d" % FLEX_ABORT_RC)
                )
            previous = activity_name
            previous_condition = "RC = %d" % FLEX_COMMIT_RC

        children = self._prune_children(node, node_id)
        # A compensation block is built only when something can trigger
        # it: a failure connector from the segment, or the exhaustion
        # cascade from a last alternative that can itself fail.
        comp_needed = bool(failure_sources) or (
            bool(children) and self.can_fail(children[-1])
        )
        comp_name = comp_block_activity(node_id) if comp_needed else None

        # Build children (alternatives) in preference order.  Failure
        # of alternative i continues into alternative i+1 (through i's
        # compensation block); only the *last* alternative cascades
        # into this node's own compensation block.
        for index, child in enumerate(children):
            child_id = "%s_%d" % (node_id, index + 1)
            if index == 0:
                child_entry = previous  # enter on segment commit
            else:
                # Entered after the previous alternative's compensation
                # block terminates.
                child_entry = comp_block_activity(
                    "%s_%d" % (node_id, index)
                )
            is_last = index == len(children) - 1
            self.build(
                child,
                child_id,
                entry=child_entry,
                failure_parent=comp_name if is_last else None,
            )
            if index > 0:
                # The entry condition from a compensation block is
                # unconditional (the block always completes).
                self._relax_entry_condition(child_entry)

        if comp_needed:
            self._add_comp_block(
                node_id, segment_activities, failure_sources
            )
            # Cascade into the parent's compensation block when this
            # node's alternatives are exhausted.
            if failure_parent is not None:
                self.process.connect(comp_name, failure_parent, "TRUE")

        if not children and node.segment:
            # Leaf: the last member committing commits the transaction.
            self.process.map_data(
                segment_activities[-1][1],
                PROCESS_OUTPUT,
                [("State", "Committed")],
            )

    def _prune_children(
        self, node: PathTree, node_id: str
    ) -> list[PathTree]:
        children = list(node.children)
        for index, child in enumerate(children):
            if not self.can_fail(child) and index + 1 < len(children):
                dropped = [
                    "->".join(p)
                    for sibling in children[index + 1:]
                    for p in sibling.paths()
                ]
                self.translation.notes.append(
                    "node %s: alternative(s) %s are unreachable (the "
                    "preferred alternative cannot fail) and were pruned"
                    % (node_id, dropped)
                )
                return children[: index + 1]
        return children

    def _add_member_activity(self, name: str, node_id: str) -> str:
        """Add the activity for member ``name``; returns its activity
        name (qualified with the node id when the same member appears
        in a sibling alternative)."""
        member = self.spec.member(name)
        activity_name = name
        if activity_name in self.process.activities:
            activity_name = "%s__%s" % (name, node_id)
        exit_condition = (
            "RC = %d" % FLEX_COMMIT_RC if member.retriable else "TRUE"
        )
        self.process.add_activity(
            Activity(
                activity_name,
                program=member.program,
                output_spec=[VariableDecl("State", DataType.LONG)],
                exit_condition=exit_condition,
                max_iterations=self.max_retries if member.retriable else 0,
                description="%s subtransaction %s" % (member.kind, name),
            )
        )
        self.process.map_data(
            activity_name, PROCESS_OUTPUT, [("State", state_var(name))]
        )
        self.translation.required_programs[member.program] = (
            "%s subtransaction %s" % (member.kind, name)
        )
        if member.compensatable:
            self.translation.required_programs[member.compensation_program] = (
                "compensation of %s" % name
            )
        return activity_name

    def _add_comp_block(
        self,
        node_id: str,
        segment_activities: list[tuple[str, str]],
        failure_sources: list[tuple[str, str]],
    ) -> None:
        items = [
            (member, self.spec.member(member).compensation_program)
            for member, __ in segment_activities
            if self.spec.member(member).compensatable
        ]
        block = build_compensation_block(
            "CompDef_%s" % node_id,
            items,
            commit_rc=FLEX_COMMIT_RC,
            max_attempts=self.max_retries,
            description="compensates segment of node %s" % node_id,
        )
        comp_name = comp_block_activity(node_id)
        states = [state_var(member) for member, __ in items]
        self.process.add_activity(
            Activity(
                comp_name,
                kind=ActivityKind.BLOCK,
                block=block,
                input_spec=[VariableDecl(s, DataType.LONG) for s in states],
                output_spec=[VariableDecl("Done", DataType.LONG)],
                start_condition=StartCondition.ANY,
                description="failure handler of node %s" % node_id,
            )
        )
        # Failure connectors trigger the block; when this node has
        # alternatives, the last alternative's compensation block also
        # cascades here (that edge is wired by the child's build).
        for source, condition in failure_sources:
            self.process.connect(source, comp_name, condition)
        compensatable = {member for member, __ in items}
        for member, activity_name in segment_activities:
            if member in compensatable:
                self.process.map_data(
                    activity_name, comp_name, [("State", state_var(member))]
                )

    def _relax_entry_condition(self, source: str) -> None:
        """Rewrite the (single) outgoing edge of ``source`` — a
        compensation block feeding the next alternative — to be
        unconditional: the block always completes successfully."""
        outgoing = [
            (i, c)
            for i, c in enumerate(self.process.control_connectors)
            if c.source == source
        ]
        if len(outgoing) != 1:
            raise TranslationError(
                "internal: expected exactly one edge out of %s, found %d"
                % (source, len(outgoing))
            )
        index, connector = outgoing[0]
        self.process.control_connectors[index] = type(connector)(
            connector.source, connector.target, "TRUE"
        )
