"""Exotica/FMTM — the Figure 5 pre-processor pipeline (§5).

"The pre-processor checks that the user specification meets the format
of the advanced transaction model specified.  It then takes the user
specification and converts it into a FlowMark process in FDL format.
... This FDL output is then imported into FlowMark and an internal
representation of the process is created.  During this conversion the
import module checks for inconsistencies in the syntax of the process
definition.  Finally this internal format is translated into an
executable FlowMark process.  Here the translator checks the semantics
of the FlowMark process to see if the specified user transactions are
valid, i.e., a suitable program definition exists, if the control
connectors are legal, etc.  This executable FlowMark process is
essentially a template that will be utilized to create run-time
instances of the process."

:class:`FMTMPipeline` reproduces each stage and records what every
stage produced and how long it took, so the FIG5 benchmark can report
per-stage costs.  Stage timing runs on :mod:`repro.obs` spans: when
the bound engine has observability enabled the stages appear in its
tracer (one ``fmtm.pipeline`` span with a child per stage) and feed an
``fmtm_stage_seconds`` histogram; otherwise a private throwaway tracer
provides the same durations for :class:`PipelineReport` without
touching any global state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import SpecificationError
from repro.obs.tracing import Span, Tracer
from repro.fdl.exporter import export_document
from repro.fdl.importer import ImportResult, import_text
from repro.wfms.engine import Engine
from repro.core.contract import (
    ContractSpec,
    ContractTranslation,
    translate_contract,
)
from repro.core.flexible import FlexibleSpec
from repro.core.flexible_translator import FlexibleTranslation, translate_flexible
from repro.core.parallel_saga import translate_parallel_saga
from repro.core.sagas import SagaSpec
from repro.core.saga_translator import SagaTranslation, translate_saga
from repro.core.speclang import parse_spec
from repro.core.wellformed import check_well_formed


@dataclass
class StageRecord:
    name: str
    seconds: float
    detail: str = ""


@dataclass
class PipelineReport:
    """Everything the pipeline produced, stage by stage."""

    spec: SagaSpec | FlexibleSpec | ContractSpec | None = None
    translation: (
        SagaTranslation | FlexibleTranslation | ContractTranslation | None
    ) = None
    fdl_text: str = ""
    import_result: ImportResult | None = None
    process_name: str = ""
    stages: list[StageRecord] = field(default_factory=list)

    def stage(self, name: str) -> StageRecord:
        for record in self.stages:
            if record.name == name:
                return record
        raise KeyError(name)

    def stage_names(self) -> list[str]:
        return [record.name for record in self.stages]


#: The stages of Figure 5, in order.
STAGES = (
    "parse_specification",
    "check_model_format",
    "translate_to_process",
    "emit_fdl",
    "import_fdl",
    "build_template",
)


class FMTMPipeline:
    """The pre-processor, bound to one engine (the "FlowMark")."""

    def __init__(self, engine: Engine, *, max_retries: int = 100):
        self.engine = engine
        self.max_retries = max_retries
        obs = engine.obs
        if obs.tracer.enabled:
            self._tracer = obs.tracer
            self._h_stage_seconds = obs.metrics.histogram(
                "fmtm_stage_seconds",
                "Seconds per Figure 5 pre-processor stage",
                labels=("stage",),
            )
        else:
            # Private tracer: stage durations still power the report,
            # but nothing escapes the pipeline.
            self._tracer = Tracer(max_spans=256)
            self._h_stage_seconds = None

    def process_specification(
        self,
        text: str,
        *,
        compensate_completed: bool = False,
    ) -> PipelineReport:
        """Run the full pipeline on a specification text.

        On return the executable template is registered with the
        engine; ``report.process_name`` starts instances.
        """
        report = PipelineReport()
        pipeline_span = self._tracer.start_span(
            "fmtm.pipeline", kind="fmtm", attributes={"chars": len(text)}
        )
        try:
            self._run_stages(
                report,
                text,
                pipeline_span,
                compensate_completed=compensate_completed,
            )
        except BaseException:
            pipeline_span.finish(status="error")
            raise
        pipeline_span.set_attribute("process", report.process_name)
        pipeline_span.finish()
        return report

    def _run_stages(
        self,
        report: PipelineReport,
        text: str,
        pipeline_span: Span,
        *,
        compensate_completed: bool,
    ) -> None:
        # Stage 1: parse the user specification.
        spec = self._timed(
            report, pipeline_span, "parse_specification",
            lambda: parse_spec(text),
        )
        report.spec = spec

        # Stage 2: "checks that the user specification meets the
        # format of the advanced transaction model specified".
        def check() -> str:
            if isinstance(spec, FlexibleSpec):
                check_well_formed(spec)
                return "well-formed flexible transaction"
            if isinstance(spec, SagaSpec):
                # SagaSpec construction already validated structure.
                return "valid saga" if spec.is_linear else "valid DAG saga"
            if isinstance(spec, ContractSpec):
                # ContractSpec construction validated context references.
                return "valid contract"
            raise SpecificationError(
                "unsupported model %r" % type(spec).__name__
            )

        self._timed(report, pipeline_span, "check_model_format", check)

        # Stage 3: convert into a process definition.
        def translate():
            if isinstance(spec, SagaSpec):
                if spec.is_linear:
                    return translate_saga(
                        spec,
                        compensate_completed=compensate_completed,
                        max_compensation_attempts=self.max_retries,
                    )
                return translate_parallel_saga(
                    spec, max_compensation_attempts=self.max_retries
                )
            if isinstance(spec, ContractSpec):
                return translate_contract(
                    spec, max_compensation_attempts=self.max_retries
                )
            return translate_flexible(spec, max_retries=self.max_retries)

        translation = self._timed(
            report, pipeline_span, "translate_to_process", translate
        )
        report.translation = translation

        # Stage 4: emit FDL.
        def emit() -> str:
            definitions = [translation.process]
            return export_document(
                definitions, translation.required_programs
            )

        report.fdl_text = self._timed(report, pipeline_span, "emit_fdl", emit)

        # Stage 5: import the FDL (syntax + structural checks).
        report.import_result = self._timed(
            report, pipeline_span, "import_fdl",
            lambda: import_text(report.fdl_text),
        )

        # Stage 6: build the executable template (semantic checks:
        # "a suitable program definition exists, ... the control
        # connectors are legal").
        def build() -> str:
            definition = report.import_result.definition(
                translation.process_name
            )
            self.engine.register_definition(definition)
            self.engine.verify_executable(definition.name)
            return definition.name

        report.process_name = self._timed(
            report, pipeline_span, "build_template", build
        )

    def create_instance(
        self, report: PipelineReport, input_values: dict[str, Any] | None = None
    ) -> str:
        """Create a run-time instance from the template."""
        return self.engine.start_process(report.process_name, input_values)

    def _timed(
        self, report: PipelineReport, parent: Span, name: str, thunk
    ):
        span = self._tracer.start_span(
            "fmtm.%s" % name, parent=parent, kind="fmtm"
        )
        try:
            result = thunk()
        except BaseException:
            span.finish(status="error")
            raise
        span.finish()
        detail = ""
        if isinstance(result, str):
            detail = result if len(result) < 60 else "%d chars" % len(result)
        report.stages.append(StageRecord(name, span.duration, detail))
        if self._h_stage_seconds is not None:
            self._h_stage_seconds.labels(name).observe(span.duration)
        return result
