"""Saga → workflow process: the Figure 2 construction (§4.1).

"All the subtransactions of the saga are grouped into a block.  The
flow of control within the block reflects that of the saga ... The
control connectors have a condition ... that the previous activity
must have terminated successfully.  If a transaction aborts ... by
dead path elimination, no other activity in the block will be
executed ... Each activity must also register its status ... mapping
the return code of the output data container of each activity to the
appropriate variable in the output data container of the block.

The second phase is implemented in another block containing the
compensating activities in reverse order.  There is also a null
activity whose purpose is to trigger the execution of the compensation
at the correct point. ... The condition on those control connectors is
whether the corresponding forward activity was executed or not."

Return-code convention (appendix): RC ``0`` means the subtransaction
committed.  Each forward activity writes ``State = 1`` on commit,
mapped to ``State_<step>`` in the block's output container; the block's
own ``_RC`` ends up as the RC of the *last executed* activity, so it is
``0`` iff the whole saga committed (Figure 2's ``RC_FB``).

One engine-semantics note: in our navigator a transition condition
reads the *source* activity's output container, so the NOP trigger
activity first copies the ``State_i`` flags from the compensation
block's input container into its own output container, and the trigger
connectors read them there.  The trigger condition for step *i* is
``State_i = 1 AND State_{i+1} = 0`` (only the most recently executed
step starts compensation); the reverse chain then advances through a
``Next = 1`` flag each compensating activity passes through, so
compensation proceeds strictly in reverse execution order while dead-
path elimination silently skips steps that never executed — exactly
the behaviour narrated in the paper's appendix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TranslationError
from repro.wfms.datatypes import DataType, VariableDecl
from repro.wfms.model import (
    PROCESS_OUTPUT,
    Activity,
    ActivityKind,
    ProcessDefinition,
)
from repro.core.compblock import (
    NOP_PROGRAM,
    build_compensation_block,
    passthrough_for_items,
    state_var,
)
from repro.core.sagas import SagaSpec

#: RC conventions of the saga section (appendix): 0 = committed.
SAGA_COMMIT_RC = 0
SAGA_ABORT_RC = 1


@dataclass
class SagaTranslation:
    """The translator's output."""

    spec: SagaSpec
    process: ProcessDefinition
    forward_block: ProcessDefinition
    compensation_block: ProcessDefinition
    #: Program names the engine must have registered before execution,
    #: mapped to a human description (forms the FDL PROGRAM section).
    required_programs: dict[str, str]

    @property
    def process_name(self) -> str:
        return self.process.name


def translate_saga(
    spec: SagaSpec,
    *,
    compensate_completed: bool = False,
    max_compensation_attempts: int = 100,
) -> SagaTranslation:
    """Translate ``spec`` into a workflow process (Figure 2).

    With ``compensate_completed`` the compensation block runs even when
    the saga committed ("users may require to compensate an already
    completed saga.  In these cases all activities must be
    compensated.").
    """
    forward = _forward_block(spec)
    compensation = _compensation_block(spec, max_compensation_attempts)
    state_decls = [
        VariableDecl(state_var(step.name), DataType.LONG)
        for step in spec.steps
    ]
    process = ProcessDefinition(
        "Saga_%s" % spec.name,
        description="Figure 2 translation of saga %r" % spec.name,
        output_spec=list(state_decls)
        + [VariableDecl("Compensated", DataType.LONG)],
    )
    process.add_activity(
        Activity(
            "Forward",
            kind=ActivityKind.BLOCK,
            block=forward,
            output_spec=list(state_decls),
            description="forward block: the saga's subtransactions",
        )
    )
    process.add_activity(
        Activity(
            "Compensation",
            kind=ActivityKind.BLOCK,
            block=compensation,
            input_spec=list(state_decls),
            output_spec=[VariableDecl("Done", DataType.LONG)],
            description="compensation block (reverse order)",
        )
    )
    # RC_FB gates the compensation block (appendix: "In the case that
    # it is 0, the compensation block is not executed").
    condition = "TRUE" if compensate_completed else "RC <> 0"
    process.connect("Forward", "Compensation", condition)
    process.map_data(
        "Forward",
        "Compensation",
        [(state_var(s.name), state_var(s.name)) for s in spec.steps],
    )
    process.map_data(
        "Forward",
        PROCESS_OUTPUT,
        [(state_var(s.name), state_var(s.name)) for s in spec.steps]
        + [("_RC", "_RC")],
    )
    process.map_data(
        "Compensation", PROCESS_OUTPUT, [("Done", "Compensated")]
    )
    process.validate()
    required = {NOP_PROGRAM: "null activity (compensation trigger)"}
    for step in spec.steps:
        required[step.program] = "subtransaction %s" % step.name
        required[step.compensation_program] = "compensation of %s" % step.name
    return SagaTranslation(spec, process, forward, compensation, required)


def _forward_block(spec: SagaSpec) -> ProcessDefinition:
    block = ProcessDefinition(
        "Fwd_%s" % spec.name,
        description="forward block of saga %s" % spec.name,
        output_spec=[
            VariableDecl(state_var(step.name), DataType.LONG)
            for step in spec.steps
        ],
    )
    for step in spec.steps:
        block.add_activity(
            Activity(
                step.name,
                program=step.program,
                output_spec=[VariableDecl("State", DataType.LONG)],
                description="subtransaction %s" % step.name,
            )
        )
        # Register execution status in the block's output container.
        block.map_data(
            step.name, PROCESS_OUTPUT, [("State", state_var(step.name)), ("_RC", "_RC")]
        )
    for source, target in spec.order:
        # "the previous activity must have terminated successfully".
        block.connect(source, target, "RC = %d" % SAGA_COMMIT_RC)
    return block


def _compensation_block(
    spec: SagaSpec,
    max_compensation_attempts: int,
) -> ProcessDefinition:
    if not spec.is_linear:
        raise TranslationError(
            "the Figure 2 compensation construction is defined for "
            "linear sagas; use translate_parallel_saga for DAG sagas"
        )
    return build_compensation_block(
        "Comp_%s" % spec.name,
        [(step.name, step.compensation_program) for step in spec.steps],
        commit_rc=SAGA_COMMIT_RC,
        max_attempts=max_compensation_attempts,
        description="compensation block of saga %s" % spec.name,
    )


def passthrough_for(spec: SagaSpec, step_name: str) -> tuple[tuple[str, str], ...]:
    """Passthrough pairs for the compensation program of ``step_name``
    (see :func:`repro.core.compblock.passthrough_for_items`)."""
    items = [(step.name, step.compensation_program) for step in spec.steps]
    return passthrough_for_items(items, step_name)
