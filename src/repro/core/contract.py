"""ConTract-lite: a third advanced transaction model for FMTM.

The paper notes that conditions "provide the means for discarding some
branches of the control flow and for implementing structures similar
to if-then-else.  Such features are not found in any transaction
model, except in the ConTract model [WR92]" — and §5 claims the
pre-processor "can [be extended] to convert any advanced transaction
model specification".  This module is that extension: a minimal
ConTract model — a script of steps with *entry invariants* and
compensation-based backward recovery — and its translation.

Model semantics (native executor):

* steps run in script order;
* before a step runs, its entry invariant (a condition over the
  contract's context) is evaluated; if false the step is **skipped**,
  unless it is marked ``critical``, in which case the contract fails;
* a step whose subtransaction aborts fails the contract;
* a failed contract compensates every *executed* step in reverse
  order (backward recovery); a completed one commits.

Translation: each step becomes an ``Eval`` activity (a NOP that copies
the context so its outgoing transition conditions can read it)
followed by the step activity; the invariant and its negation label
the two outgoing connectors — exactly the if-then-else the paper says
transaction models lack.  Failures route to a guarded compensation
block (shared with the parallel-saga construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import SpecificationError
from repro.tx.subtransaction import Subtransaction, SubtransactionOutcome
from repro.wfms.conditions import parse_condition
from repro.wfms.datatypes import DataType, VariableDecl
from repro.wfms.engine import Engine
from repro.wfms.model import (
    PROCESS_INPUT,
    PROCESS_OUTPUT,
    Activity,
    ActivityKind,
    ProcessDefinition,
    StartCondition,
)
from repro.core.bindings import nop_program
from repro.core.compblock import NOP_PROGRAM, state_var
from repro.core.parallel_saga import guarded_compensation_program
from repro.core.saga_translator import SAGA_ABORT_RC, SAGA_COMMIT_RC


@dataclass(frozen=True)
class ContractStep:
    """One step of a ConTract script."""

    name: str
    entry_condition: str = ""     # empty = always runs
    critical: bool = False        # invariant failure aborts the contract
    program: str = ""
    compensation_program: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("contract step needs a name")
        parse_condition(self.entry_condition or None)  # validate early
        if not self.program:
            object.__setattr__(self, "program", "txn_%s" % self.name)
        if not self.compensation_program:
            object.__setattr__(
                self, "compensation_program", "comp_%s" % self.name
            )


class ContractSpec:
    """A ConTract: typed context plus a script of steps."""

    def __init__(
        self,
        name: str,
        context: list[VariableDecl],
        steps: list[ContractStep],
    ):
        if not name:
            raise SpecificationError("contract needs a name")
        if not steps:
            raise SpecificationError("contract %s has no steps" % name)
        names = [step.name for step in steps]
        if len(set(names)) != len(names):
            raise SpecificationError(
                "contract %s has duplicate steps" % name
            )
        self.name = name
        self.context = list(context)
        self.steps = list(steps)
        context_members = {decl.name for decl in self.context}
        for step in steps:
            for path in parse_condition(step.entry_condition or None).variables():
                root = path.split(".", 1)[0]
                if root not in context_members:
                    raise SpecificationError(
                        "contract %s step %s: entry condition references "
                        "%r which is not a context member"
                        % (name, step.name, path)
                    )

    def __repr__(self) -> str:
        return "ContractSpec(%r, %d steps)" % (self.name, len(self.steps))


@dataclass
class ContractOutcome:
    committed: bool
    executed: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    compensated: list[str] = field(default_factory=list)
    failed_step: str = ""
    history: list[SubtransactionOutcome] = field(default_factory=list)


class NativeContractExecutor:
    """The ConTract model's own runtime (the baseline)."""

    def __init__(
        self,
        spec: ContractSpec,
        actions: dict[str, Subtransaction],
        compensations: dict[str, Subtransaction],
        *,
        max_compensation_attempts: int = 100,
    ):
        for step in spec.steps:
            if step.name not in actions:
                raise SpecificationError(
                    "no action bound for %r" % step.name
                )
            if step.name not in compensations:
                raise SpecificationError(
                    "no compensation bound for %r" % step.name
                )
        self.spec = spec
        self.actions = actions
        self.compensations = compensations
        self.max_compensation_attempts = max_compensation_attempts

    def run(self, context: dict[str, Any]) -> ContractOutcome:
        outcome = ContractOutcome(committed=True)
        env = dict(context)
        for step in self.spec.steps:
            condition = parse_condition(step.entry_condition or None)
            if not condition.evaluate(lambda p: env.get(p)):
                if step.critical:
                    outcome.failed_step = step.name
                    outcome.committed = False
                    break
                outcome.skipped.append(step.name)
                continue
            result = self.actions[step.name].execute()
            outcome.history.append(result)
            if result.committed:
                outcome.executed.append(step.name)
            else:
                outcome.failed_step = step.name
                outcome.committed = False
                break
        if not outcome.committed:
            for name in reversed(outcome.executed):
                self._compensate(name, outcome)
        return outcome

    def _compensate(self, name: str, outcome: ContractOutcome) -> None:
        compensation = self.compensations[name]
        for __ in range(self.max_compensation_attempts):
            result = compensation.execute()
            outcome.history.append(result)
            if result.committed:
                outcome.compensated.append(name)
                return
        raise SpecificationError(
            "compensation of %s never committed" % name
        )


@dataclass
class ContractTranslation:
    spec: ContractSpec
    process: ProcessDefinition
    required_programs: dict[str, str]

    @property
    def process_name(self) -> str:
        return self.process.name


def translate_contract(
    spec: ContractSpec, *, max_compensation_attempts: int = 100
) -> ContractTranslation:
    """Translate a ConTract into a workflow process.

    Shape per step i: ``Eval_i`` (NOP copying the context) with two
    outgoing connectors — the entry invariant to ``Step_i`` and its
    complement to ``Eval_{i+1}`` (the skip, or ``Done`` for the last
    step; a critical step's complement routes to the compensation
    block instead).  ``Step_i`` commits to ``Eval_{i+1}`` / ``Done``
    and aborts to the compensation block.
    """
    context_decls = list(spec.context)
    state_decls = [
        VariableDecl(state_var(step.name), DataType.LONG)
        for step in spec.steps
    ]
    process = ProcessDefinition(
        "Contract_%s" % spec.name,
        description="ConTract-lite translation of %r" % spec.name,
        input_spec=context_decls,
        output_spec=[VariableDecl("Committed", DataType.LONG)]
        + list(state_decls),
    )
    required = {NOP_PROGRAM: "null activity"}

    comp_items = [(s.name, s.compensation_program) for s in spec.steps]
    comp_block = _contract_compensation_block(
        spec, max_compensation_attempts
    )
    states = [state_var(s.name) for s in spec.steps]

    def eval_name(index: int) -> str:
        return "Eval_%s" % spec.steps[index].name

    # Done marker: committed contracts end here.
    process.add_activity(
        Activity(
            "Done",
            program="contract_done",
            output_spec=[VariableDecl("Committed", DataType.LONG)],
            start_condition=StartCondition.ANY,
            description="contract completed",
        )
    )
    required["contract_done"] = "marks the contract committed"

    failure_edges: list[tuple[str, str]] = []
    for index, step in enumerate(spec.steps):
        evaluator = eval_name(index)
        process.add_activity(
            Activity(
                evaluator,
                program=NOP_PROGRAM,
                input_spec=list(context_decls),
                output_spec=list(context_decls),
                start_condition=StartCondition.ANY,
                description="entry invariant of %s" % step.name,
            )
        )
        if context_decls:
            process.map_data(
                PROCESS_INPUT,
                evaluator,
                [(d.name, d.name) for d in context_decls],
            )
        process.add_activity(
            Activity(
                step.name,
                program=step.program,
                output_spec=[VariableDecl("State", DataType.LONG)],
                description="contract step %s" % step.name,
            )
        )
        process.map_data(
            step.name, PROCESS_OUTPUT, [("State", state_var(step.name))]
        )
        entry = step.entry_condition.strip() or "TRUE"
        complement = "NOT (%s)" % entry if entry != "TRUE" else "FALSE"
        next_target = (
            eval_name(index + 1) if index + 1 < len(spec.steps) else "Done"
        )
        process.connect(evaluator, step.name, entry)
        if step.critical:
            # Invariant violation fails the contract.
            failure_edges.append((evaluator, complement))
        else:
            if complement != "FALSE":
                process.connect(evaluator, next_target, complement)
        process.connect(step.name, next_target, "RC = %d" % SAGA_COMMIT_RC)
        failure_edges.append((step.name, "RC <> %d" % SAGA_COMMIT_RC))
        required[step.program] = "contract step %s" % step.name
        required["g" + step.compensation_program] = (
            "guarded compensation of %s" % step.name
        )

    process.add_activity(
        Activity(
            "Backward",
            kind=ActivityKind.BLOCK,
            block=comp_block,
            input_spec=[VariableDecl(s, DataType.LONG) for s in states],
            output_spec=[VariableDecl("Done", DataType.LONG)],
            start_condition=StartCondition.ANY,
            description="backward recovery (guarded compensation)",
        )
    )
    for source, condition in failure_edges:
        process.connect(source, "Backward", condition)
    for step in spec.steps:
        process.map_data(
            step.name, "Backward", [("State", state_var(step.name))]
        )
    process.map_data("Done", PROCESS_OUTPUT, [("Committed", "Committed")])
    process.validate()
    return ContractTranslation(spec, process, required)


def _contract_compensation_block(
    spec: ContractSpec, max_attempts: int
) -> ProcessDefinition:
    # Reverse-chain guarded compensation (skipped/never-run steps have
    # State 0 and their guards pass through).
    states = [state_var(s.name) for s in spec.steps]
    state_decls = [VariableDecl(s, DataType.LONG) for s in states]
    block = ProcessDefinition(
        "Backward_%s" % spec.name,
        description="backward recovery of contract %s" % spec.name,
        input_spec=list(state_decls),
        output_spec=[VariableDecl("Done", DataType.LONG)],
    )
    block.add_activity(
        Activity(
            "NOP",
            program=NOP_PROGRAM,
            input_spec=list(state_decls),
            output_spec=list(state_decls),
        )
    )
    block.map_data(PROCESS_INPUT, "NOP", [(s, s) for s in states])
    previous = "NOP"
    for step in reversed(spec.steps):
        comp_name = "Comp_%s" % step.name
        block.add_activity(
            Activity(
                comp_name,
                program="g" + step.compensation_program,
                input_spec=list(state_decls),
                output_spec=[VariableDecl("DidRun", DataType.LONG)],
                exit_condition="RC = %d" % SAGA_COMMIT_RC,
                max_iterations=max_attempts,
            )
        )
        block.map_data(PROCESS_INPUT, comp_name, [(s, s) for s in states])
        block.map_data(
            comp_name, PROCESS_OUTPUT, [("DidRun", "Done"), ("_RC", "_RC")]
        )
        block.connect(previous, comp_name)
        previous = comp_name
    return block


def register_contract_programs(
    engine: Engine,
    translation: ContractTranslation,
    actions: dict[str, Subtransaction],
    compensations: dict[str, Subtransaction],
) -> None:
    spec = translation.spec
    engine.register_program(NOP_PROGRAM, nop_program, replace=True)

    def done_program(ctx) -> int:
        ctx.output.set("Committed", 1)
        return 0

    engine.register_program("contract_done", done_program, replace=True)
    for step in spec.steps:
        if step.name not in actions:
            raise SpecificationError("no action bound for %r" % step.name)
        if step.name not in compensations:
            raise SpecificationError(
                "no compensation bound for %r" % step.name
            )
        engine.register_program(
            step.program,
            actions[step.name].as_program(
                commit_rc=SAGA_COMMIT_RC, abort_rc=SAGA_ABORT_RC
            ),
            replace=True,
        )
        engine.register_program(
            "g" + step.compensation_program,
            guarded_compensation_program(compensations[step.name], step.name),
            replace=True,
        )


def workflow_contract_outcome(
    engine: Engine, translation: ContractTranslation, instance_id: str
) -> ContractOutcome:
    spec = translation.spec
    output = engine.output(instance_id)
    order = engine.execution_order(instance_id, include_children=False)
    executed = [
        step.name
        for step in spec.steps
        if output.get(state_var(step.name)) == 1
    ]
    ran = set(order)
    skipped = [
        step.name
        for step in spec.steps
        if not step.critical  # a critical step fails, it never skips
        and step.name not in ran
        and "Eval_%s" % step.name in ran
    ]
    compensated: list[str] = []
    instance = engine.navigator.instance(instance_id)
    backward = instance.activities.get("Backward")
    if backward is not None and backward.child_instance:
        child = engine.navigator.instance(backward.child_instance)
        for name in engine.audit.execution_order(backward.child_instance):
            if name.startswith("Comp_"):
                ai = child.activity(name)
                if ai.output is not None and ai.output.resolver("DidRun") == 1:
                    compensated.append(name[len("Comp_"):])
    committed = output.get("Committed") == 1
    return ContractOutcome(
        committed=committed,
        executed=executed,
        skipped=skipped,
        compensated=compensated,
    )
