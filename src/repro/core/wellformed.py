"""Well-formedness of flexible transactions (§4.2).

"A flexible transaction is well-formed when the possible orders of
execution do not violate the data dependencies between subtransactions
and the flexible transaction is 'atomic' (its effects can be undone or
by retrying subtransactions it will eventually commit)."

The concrete rules implemented here (after [MRSK92] and the [ZNBB94]
relaxation):

For every path *p* and every member *m* of *p* that may fail
permanently (i.e. is not retriable), consider the worst case where all
of *p* before *m* has committed and *m* aborts:

* If every committed member is compensatable, full rollback is
  available — fine.
* Otherwise the committed non-compensatable members (the pivots that
  already fired) can never be undone, so there must exist an
  **alternative path** that (a) does not contain *m*, (b) contains
  every committed non-compensatable member (so nothing needs undoing
  that cannot be), and (c) whose not-yet-committed members are all
  retriable — a *guaranteed* continuation.

Corollaries the test-suite checks: a single-path flexible transaction
must have at most one pivot, everything before it compensatable and
everything after it retriable — exactly [MRSK92]'s statement — and the
[ZNBB94] example of Figure 3 passes while obvious violations fail.
"""

from __future__ import annotations

from repro.errors import WellFormednessError
from repro.core.flexible import FlexibleSpec


def check_well_formed(spec: FlexibleSpec) -> None:
    """Raise :class:`WellFormednessError` when ``spec`` is not
    well-formed; otherwise return normally."""
    problems = well_formedness_violations(spec)
    if problems:
        raise WellFormednessError(
            "flexible transaction %s is not well-formed:\n  %s"
            % (spec.name, "\n  ".join(problems))
        )


def well_formedness_violations(spec: FlexibleSpec) -> list[str]:
    """All violations found (empty when well-formed)."""
    problems: list[str] = []
    depth = len(spec.paths)
    for path_index, path in enumerate(spec.paths):
        for position, name in enumerate(path):
            if spec.member(name).retriable:
                continue  # cannot fail permanently
            committed = frozenset(path[:position])
            if _recoverable(spec, committed, frozenset({name}), depth):
                continue
            stuck = sorted(
                c for c in committed if not spec.member(c).compensatable
            )
            problems.append(
                "path %d (%s): if %s aborts after %s committed, the "
                "non-compensatable %s cannot be undone and no "
                "guaranteed alternative path exists"
                % (
                    path_index + 1,
                    "->".join(path),
                    name,
                    sorted(committed),
                    stuck,
                )
            )
    return problems


def _recoverable(
    spec: FlexibleSpec,
    committed: frozenset[str],
    dead: frozenset[str],
    depth: int,
) -> bool:
    """Whether the transaction can still terminate correctly.

    ``committed`` is the worst-case set of committed members, ``dead``
    the members that aborted permanently.  Recovery means either full
    rollback (nothing non-compensatable committed) or some viable path
    that contains every stuck member and is itself guaranteed: each of
    its remaining non-retriable members must be recoverable in turn.
    """
    stuck = {c for c in committed if not spec.member(c).compensatable}
    if not stuck:
        return True  # everything committed can be compensated
    if depth <= 0:
        return False
    for candidate in spec.paths:
        if dead & set(candidate):
            continue
        if not stuck <= set(candidate):
            continue
        guaranteed = True
        for position, name in enumerate(candidate):
            if name in committed or spec.member(name).retriable:
                continue
            worst_case = committed | frozenset(candidate[:position])
            if not _recoverable(
                spec, worst_case, dead | frozenset({name}), depth - 1
            ):
                guaranteed = False
                break
        if guaranteed:
            return True
    return False


def single_path_shape(spec: FlexibleSpec) -> dict[str, list[str]]:
    """[MRSK92] decomposition of a single-path spec around its pivot.

    Returns ``{"before": [...], "pivot": [...], "after": [...]}``;
    raises :class:`WellFormednessError` for multi-path specs or when
    there is more than one pivot.
    """
    if len(spec.paths) != 1:
        raise WellFormednessError(
            "single_path_shape applies to single-path specifications"
        )
    path = spec.paths[0]
    pivots = [m for m in path if spec.member(m).pivot]
    if len(pivots) > 1:
        raise WellFormednessError(
            "a well-formed single-path flexible transaction contains at "
            "most one pivot, found %s" % pivots
        )
    if not pivots:
        return {"before": list(path), "pivot": [], "after": []}
    index = path.index(pivots[0])
    return {
        "before": path[:index],
        "pivot": [pivots[0]],
        "after": path[index + 1:],
    }
