"""Bindings: connect translated processes to real subtransactions.

The translators produce pure process definitions that reference
*program names*.  This module registers the actual programs — built
from :class:`~repro.tx.subtransaction.Subtransaction` objects with the
right RC conventions — on an engine, and extracts model-level outcomes
(:class:`SagaOutcome` / :class:`FlexibleOutcome`) back out of a
workflow execution so experiments can compare the workflow
implementation against the native executors on equal terms.
"""

from __future__ import annotations

from repro.errors import SpecificationError
from repro.tx.subtransaction import Subtransaction
from repro.wfms.engine import Engine
from repro.core.compblock import NOP_PROGRAM, state_var
from repro.core.flexible import FlexibleOutcome, FlexibleSpec
from repro.core.flexible_translator import (
    FLEX_ABORT_RC,
    FLEX_COMMIT_RC,
    FlexibleTranslation,
)
from repro.core.sagas import SagaOutcome, SagaSpec
from repro.core.saga_translator import (
    SAGA_ABORT_RC,
    SAGA_COMMIT_RC,
    SagaTranslation,
    passthrough_for,
)
from repro.core.compblock import passthrough_for_items


def nop_program(ctx) -> int:
    """The null activity: copies matching input members to output."""
    for name in list(ctx.output.members()):
        if name != "_RC" and ctx.input.has(name):
            ctx.output.set(name, ctx.input.get(name))
    return 0


def register_saga_programs(
    engine: Engine,
    translation: SagaTranslation,
    actions: dict[str, Subtransaction],
    compensations: dict[str, Subtransaction],
) -> None:
    """Register every program the translated saga references."""
    spec = translation.spec
    engine.register_program(
        NOP_PROGRAM, nop_program, "null activity", replace=True
    )
    for step in spec.steps:
        if step.name not in actions:
            raise SpecificationError("no action bound for %r" % step.name)
        if step.name not in compensations:
            raise SpecificationError(
                "no compensation bound for %r" % step.name
            )
        engine.register_program(
            step.program,
            actions[step.name].as_program(
                commit_rc=SAGA_COMMIT_RC, abort_rc=SAGA_ABORT_RC
            ),
            "subtransaction %s" % step.name,
            replace=True,
        )
        engine.register_program(
            step.compensation_program,
            compensations[step.name].as_program(
                commit_rc=SAGA_COMMIT_RC,
                abort_rc=SAGA_ABORT_RC,
                passthrough=passthrough_for(spec, step.name),
            ),
            "compensation of %s" % step.name,
            replace=True,
        )


def workflow_saga_outcome(
    engine: Engine, translation: SagaTranslation, instance_id: str
) -> SagaOutcome:
    """Reconstruct the saga-level outcome of a workflow execution."""
    spec = translation.spec
    output = engine.output(instance_id)
    executed = [
        step.name
        for step in spec.steps
        if output.get(state_var(step.name)) == 1
    ]
    order = engine.execution_order(instance_id, include_children=True)
    compensated = [
        name[len("Comp_"):]
        for name in order
        if name.startswith("Comp_") and name != "NOP"
    ]
    committed = len(executed) == len(spec.steps) and output.get("_RC") == 0
    return SagaOutcome(
        committed=committed,
        executed=executed,
        compensated=compensated,
    )


def register_flexible_programs(
    engine: Engine,
    translation: FlexibleTranslation,
    actions: dict[str, Subtransaction],
    compensations: dict[str, Subtransaction],
) -> None:
    """Register every program the translated flexible tx references."""
    spec = translation.spec
    engine.register_program(
        NOP_PROGRAM, nop_program, "null activity", replace=True
    )
    for name, member in spec.members.items():
        if name not in actions:
            raise SpecificationError("no action bound for %r" % name)
        engine.register_program(
            member.program,
            actions[name].as_program(
                commit_rc=FLEX_COMMIT_RC, abort_rc=FLEX_ABORT_RC
            ),
            "%s subtransaction %s" % (member.kind, name),
            replace=True,
        )
        if member.compensatable:
            if name not in compensations:
                raise SpecificationError(
                    "no compensation bound for %r" % name
                )
            engine.register_program(
                member.compensation_program,
                compensations[name].as_program(
                    commit_rc=FLEX_COMMIT_RC,
                    abort_rc=FLEX_ABORT_RC,
                    passthrough=_flexible_passthrough(spec, translation, name),
                ),
                "compensation of %s" % name,
                replace=True,
            )


def _flexible_passthrough(
    spec: FlexibleSpec, translation: FlexibleTranslation, member: str
) -> tuple[tuple[str, str], ...]:
    """Passthrough pairs for a flexible compensation: within the tree
    node whose segment contains ``member``, forward the previous
    compensatable member's State as ``Next``."""
    for segment in _segments(spec):
        compensatable = [
            m for m in segment if spec.member(m).compensatable
        ]
        if member in compensatable:
            items = [
                (m, spec.member(m).compensation_program)
                for m in compensatable
            ]
            return passthrough_for_items(items, member)
    raise SpecificationError(
        "member %r is not compensatable on any segment" % member
    )


def _segments(spec: FlexibleSpec) -> list[list[str]]:
    segments: list[list[str]] = []
    stack = [spec.tree()]
    while stack:
        node = stack.pop()
        segments.append(list(node.segment))
        stack.extend(node.children)
    return segments


def workflow_flexible_outcome(
    engine: Engine, translation: FlexibleTranslation, instance_id: str
) -> FlexibleOutcome:
    """Reconstruct the flexible-transaction outcome of a workflow run."""
    spec = translation.spec
    output = engine.output(instance_id)
    order = engine.execution_order(instance_id, include_children=True)
    compensated = [
        name[len("Comp_"):]
        for name in order
        if name.startswith("Comp_") and name != "NOP"
    ]
    raw = [
        _member_of(activity)
        for activity in order
        if not activity.startswith("Comp")
        and activity != "NOP"
        and _member_of(activity) in spec.members
        and output.get(state_var(_member_of(activity))) == 1
    ]
    # A member may appear twice when it sits on two alternatives (the
    # first attempt aborted, the second committed): keep the last.
    committed_members: list[str] = []
    seen: set[str] = set()
    for member in reversed(raw):
        if member not in seen:
            seen.add(member)
            committed_members.append(member)
    committed_members.reverse()
    committed_members = [
        m for m in committed_members if m not in compensated
    ]
    committed = output.get("Committed") == 1
    committed_path: list[str] = []
    if committed:
        for path in spec.paths:
            if set(path) == set(committed_members):
                committed_path = list(path)
                break
    return FlexibleOutcome(
        committed=committed,
        committed_path=committed_path,
        committed_members=committed_members,
        compensated=compensated,
    )


def _member_of(activity: str) -> str:
    """Strip the sibling-qualification suffix from an activity name."""
    return activity.split("__", 1)[0]
