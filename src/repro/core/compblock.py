"""Shared compensation-block construction.

Both translations need Figure 2's second phase: a block holding the
compensating activities in reverse order, entered through a null (NOP)
activity whose outgoing connectors test which forward activities
executed.  The saga translation compensates a whole saga; the flexible
translation builds one such block per alternative branch (covering
§4.2 rule 5's grouping of consecutive compensatable subtransactions
and rule 6's compensating block).

Wiring recap (see :mod:`repro.core.saga_translator` for the rationale):

* the block's input container carries ``State_<m>`` (1 = member *m*
  committed, 0 = never ran or rolled itself back);
* the NOP copies these flags to its output so its outgoing transition
  conditions can read them;
* NOP → Comp_m fires only for the most recently executed member
  (``State_m = 1 AND State_next = 0``);
* the reverse chain Comp_m → Comp_prev advances on a ``Next`` flag each
  compensating activity passes through, so compensation runs strictly
  in reverse execution order;
* dead-path elimination silently skips members that never executed;
* each compensating activity is retried until its exit condition
  (``RC = commit``) holds — "compensations are in general considered
  retriable".
"""

from __future__ import annotations

from repro.wfms.datatypes import DataType, VariableDecl
from repro.wfms.model import (
    PROCESS_INPUT,
    PROCESS_OUTPUT,
    Activity,
    ProcessDefinition,
    StartCondition,
)

#: Program name of the null (no-operation) trigger activity.
NOP_PROGRAM = "nop"


def state_var(name: str) -> str:
    """Container member recording whether member ``name`` committed."""
    return "State_%s" % name


def comp_activity_name(member: str) -> str:
    return "Comp_%s" % member


def build_compensation_block(
    block_name: str,
    items: list[tuple[str, str]],
    *,
    commit_rc: int,
    max_attempts: int,
    description: str = "",
) -> ProcessDefinition:
    """Build a compensation block.

    ``items`` lists ``(member_name, compensation_program)`` in *forward
    execution order*; compensation runs in the reverse order.
    ``commit_rc`` is the return code meaning "compensation committed"
    under the enclosing model's convention.
    """
    states = [state_var(member) for member, __ in items]
    block = ProcessDefinition(
        block_name,
        description=description or "compensation block",
        input_spec=[VariableDecl(s, DataType.LONG) for s in states],
        output_spec=[VariableDecl("Done", DataType.LONG)],
    )
    state_decls = [VariableDecl(s, DataType.LONG) for s in states]
    block.add_activity(
        Activity(
            "NOP",
            program=NOP_PROGRAM,
            input_spec=list(state_decls),
            output_spec=list(state_decls),
            description="null activity triggering compensation",
        )
    )
    if states:
        block.map_data(PROCESS_INPUT, "NOP", [(s, s) for s in states])
    for index, (member, comp_program) in enumerate(items):
        comp_name = comp_activity_name(member)
        block.add_activity(
            Activity(
                comp_name,
                program=comp_program,
                input_spec=list(state_decls),
                output_spec=[VariableDecl("Next", DataType.LONG)],
                start_condition=StartCondition.ANY,
                exit_condition="RC = %d" % commit_rc,
                max_iterations=max_attempts,
                description="compensation of %s" % member,
            )
        )
        block.map_data(PROCESS_INPUT, comp_name, [(s, s) for s in states])
        if index == len(items) - 1:
            trigger = "%s = 1" % states[index]
        else:
            trigger = "%s = 1 AND %s = 0" % (states[index], states[index + 1])
        block.connect("NOP", comp_name, trigger)
        if index > 0:
            block.connect(
                comp_name, comp_activity_name(items[index - 1][0]), "Next = 1"
            )
        block.map_data(
            comp_name, PROCESS_OUTPUT, [("Next", "Done"), ("_RC", "_RC")]
        )
    return block


def passthrough_for_items(
    items: list[tuple[str, str]], member: str
) -> tuple[tuple[str, str], ...]:
    """Passthrough pairs for ``member``'s compensation program: forward
    the *previous* member's State flag as ``Next`` so the reverse chain
    can continue (the first member forwards its own flag, which simply
    terminates the chain)."""
    names = [name for name, __ in items]
    index = names.index(member)
    source = names[index - 1] if index > 0 else member
    return ((state_var(source), "Next"),)
