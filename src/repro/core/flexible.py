"""Flexible Transactions [ELLR90, MRSK92, ZNBB94] (§4.2).

A flexible transaction is a set of typed subtransactions —
*compensatable* (undoable after commit), *retriable* (will eventually
commit if retried), *pivot* (neither) — organised into alternative
execution paths in preference order.  The transaction commits when any
path completes; failures switch paths after compensating the committed
subtransactions unique to the abandoned path.

This module holds the specification (:class:`FlexibleSpec`), the
alternative-path tree the translator consumes (:class:`PathTree`), the
outcome record, and the native executor used as the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    ExecutionContractViolation,
    SpecificationError,
)
from repro.tx.subtransaction import Subtransaction, SubtransactionOutcome


@dataclass(frozen=True)
class FlexibleMember:
    """One subtransaction of a flexible transaction.

    A member may be compensatable, retriable, both, or neither
    (a *pivot*) [MRSK92].
    """

    name: str
    compensatable: bool = False
    retriable: bool = False
    program: str = ""
    compensation_program: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("flexible member needs a name")
        if not self.program:
            object.__setattr__(self, "program", "txn_%s" % self.name)
        if self.compensatable and not self.compensation_program:
            object.__setattr__(
                self, "compensation_program", "comp_%s" % self.name
            )

    @property
    def pivot(self) -> bool:
        return not self.compensatable and not self.retriable

    @property
    def kind(self) -> str:
        if self.pivot:
            return "pivot"
        parts = []
        if self.compensatable:
            parts.append("compensatable")
        if self.retriable:
            parts.append("retriable")
        return "+".join(parts)


@dataclass
class PathTree:
    """Alternative paths folded into a prefix-sharing tree.

    ``segment`` is the run of members executed in order at this node;
    ``children`` are the alternative continuations in preference order
    (empty for a leaf).
    """

    segment: list[str] = field(default_factory=list)
    children: list["PathTree"] = field(default_factory=list)

    def paths(self) -> list[list[str]]:
        if not self.children:
            return [list(self.segment)]
        out = []
        for child in self.children:
            for suffix in child.paths():
                out.append(list(self.segment) + suffix)
        return out


class FlexibleSpec:
    """A flexible transaction: members plus preference-ordered paths."""

    def __init__(
        self,
        name: str,
        members: list[FlexibleMember],
        paths: list[list[str]],
    ):
        if not name:
            raise SpecificationError("flexible transaction needs a name")
        if not members:
            raise SpecificationError("flexible transaction %s has no members" % name)
        if not paths:
            raise SpecificationError("flexible transaction %s has no paths" % name)
        self.name = name
        self.members = {m.name: m for m in members}
        if len(self.members) != len(members):
            raise SpecificationError(
                "flexible transaction %s has duplicate members" % name
            )
        self.paths = [list(p) for p in paths]
        for path in self.paths:
            if not path:
                raise SpecificationError("empty path in %s" % name)
            if len(set(path)) != len(path):
                raise SpecificationError(
                    "path %s repeats a member" % (path,)
                )
            for member in path:
                if member not in self.members:
                    raise SpecificationError(
                        "path references unknown member %r" % member
                    )
        if len({tuple(p) for p in self.paths}) != len(self.paths):
            raise SpecificationError("duplicate paths in %s" % name)
        for shorter in self.paths:
            for longer in self.paths:
                if len(shorter) < len(longer) and longer[: len(shorter)] == shorter:
                    raise SpecificationError(
                        "path %s is a strict prefix of %s: the shorter "
                        "one could never be chosen" % (shorter, longer)
                    )
        on_paths = {m for p in self.paths for m in p}
        unused = set(self.members) - on_paths
        if unused:
            raise SpecificationError(
                "members %s appear on no path" % sorted(unused)
            )

    def member(self, name: str) -> FlexibleMember:
        try:
            return self.members[name]
        except KeyError:
            raise SpecificationError(
                "flexible transaction %s has no member %r" % (self.name, name)
            ) from None

    def tree(self) -> PathTree:
        """Fold the preference-ordered paths into a prefix tree."""
        return _build_tree(self.paths)

    def validate(self) -> None:
        """Structural + well-formedness validation."""
        from repro.core.wellformed import check_well_formed

        check_well_formed(self)

    def __repr__(self) -> str:
        return "FlexibleSpec(%r, %d members, %d paths)" % (
            self.name,
            len(self.members),
            len(self.paths),
        )


def _build_tree(paths: list[list[str]]) -> PathTree:
    # Longest common prefix of all paths becomes this node's segment;
    # paths then group by their next member, preserving preference
    # order of first appearance.
    prefix: list[str] = []
    for position in range(min(len(p) for p in paths)):
        candidates = {p[position] for p in paths}
        if len(candidates) == 1:
            prefix.append(paths[0][position])
        else:
            break
    suffixes = [p[len(prefix):] for p in paths]
    if all(not s for s in suffixes):
        return PathTree(segment=prefix)
    if any(not s for s in suffixes):
        raise SpecificationError(
            "a path may not be a strict prefix of another "
            "(the shorter one could never be chosen): %s" % (paths,)
        )
    groups: dict[str, list[list[str]]] = {}
    order: list[str] = []
    for suffix in suffixes:
        head = suffix[0]
        if head not in groups:
            groups[head] = []
            order.append(head)
        groups[head].append(suffix)
    children = [_build_tree(groups[head]) for head in order]
    return PathTree(segment=prefix, children=children)


@dataclass
class FlexibleOutcome:
    """What a flexible transaction execution did."""

    committed: bool
    committed_path: list[str] = field(default_factory=list)
    committed_members: list[str] = field(default_factory=list)
    compensated: list[str] = field(default_factory=list)
    dead: list[str] = field(default_factory=list)  # permanently aborted
    history: list[SubtransactionOutcome] = field(default_factory=list)


class NativeFlexibleExecutor:
    """The flexible-transaction model's own runtime (the baseline).

    Semantics: try paths in preference order; a retriable member is
    retried until it commits; a non-retriable member that aborts is
    *dead* — every path containing it becomes unviable.  On switching
    paths, committed members not on the new path are compensated in
    reverse commit order.  If no path remains viable, the transaction
    aborts and everything compensatable is compensated.
    """

    def __init__(
        self,
        spec: FlexibleSpec,
        actions: dict[str, Subtransaction],
        compensations: dict[str, Subtransaction],
        *,
        max_retries: int = 100,
    ):
        for name in spec.members:
            if name not in actions:
                raise SpecificationError("no action bound for %r" % name)
        for name, member in spec.members.items():
            if member.compensatable and name not in compensations:
                raise SpecificationError(
                    "no compensation bound for compensatable %r" % name
                )
        self.spec = spec
        self.actions = actions
        self.compensations = compensations
        self.max_retries = max_retries

    def run(self) -> FlexibleOutcome:
        outcome = FlexibleOutcome(committed=False)
        committed: list[str] = []  # in commit order
        dead: set[str] = set()
        for path in self.spec.paths:
            if dead & set(path):
                continue  # path contains a permanently failed member
            self._switch_to(path, committed, outcome)
            if self._run_path(path, committed, dead, outcome):
                outcome.committed = True
                outcome.committed_path = list(path)
                break
        if not outcome.committed:
            self._compensate_all(committed, outcome)
        outcome.committed_members = list(committed)
        outcome.dead = sorted(dead)
        self._check_contract(outcome)
        return outcome

    # -- internals -------------------------------------------------------

    def _run_path(
        self,
        path: list[str],
        committed: list[str],
        dead: set[str],
        outcome: FlexibleOutcome,
    ) -> bool:
        for name in path:
            if name in committed:
                continue  # shared prefix already done
            member = self.spec.member(name)
            if member.retriable:
                if not self._run_retriable(name, outcome):
                    raise ExecutionContractViolation(
                        "retriable %s did not commit within %d attempts"
                        % (name, self.max_retries)
                    )
                committed.append(name)
                continue
            result = self.actions[name].execute()
            outcome.history.append(result)
            if result.committed:
                committed.append(name)
            else:
                dead.add(name)
                return False
        return True

    def _run_retriable(self, name: str, outcome: FlexibleOutcome) -> bool:
        for __ in range(self.max_retries):
            result = self.actions[name].execute()
            outcome.history.append(result)
            if result.committed:
                return True
        return False

    def _switch_to(
        self,
        path: list[str],
        committed: list[str],
        outcome: FlexibleOutcome,
    ) -> None:
        """Compensate committed members that are not on ``path``."""
        for name in reversed(list(committed)):
            if name in path:
                continue
            member = self.spec.member(name)
            if not member.compensatable:
                raise ExecutionContractViolation(
                    "would need to compensate non-compensatable %s to "
                    "switch paths (specification is not well-formed)" % name
                )
            self._compensate(name, outcome)
            committed.remove(name)

    def _compensate_all(
        self, committed: list[str], outcome: FlexibleOutcome
    ) -> None:
        for name in reversed(list(committed)):
            member = self.spec.member(name)
            if not member.compensatable:
                raise ExecutionContractViolation(
                    "flexible transaction aborted with committed "
                    "non-compensatable member %s" % name
                )
            self._compensate(name, outcome)
            committed.remove(name)

    def _compensate(self, name: str, outcome: FlexibleOutcome) -> None:
        compensation = self.compensations[name]
        for __ in range(self.max_retries):
            result = compensation.execute()
            outcome.history.append(result)
            if result.committed:
                outcome.compensated.append(name)
                return
        raise ExecutionContractViolation(
            "compensation of %s did not commit within %d attempts"
            % (name, self.max_retries)
        )

    def _check_contract(self, outcome: FlexibleOutcome) -> None:
        if outcome.committed:
            missing = [
                m
                for m in outcome.committed_path
                if m not in outcome.committed_members
            ]
            if missing:
                raise ExecutionContractViolation(
                    "committed path %s has uncommitted members %s"
                    % (outcome.committed_path, missing)
                )
        else:
            if outcome.committed_members:
                raise ExecutionContractViolation(
                    "aborted flexible transaction left members committed: %s"
                    % outcome.committed_members
                )
