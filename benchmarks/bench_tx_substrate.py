"""TX — the transactional substrate (lock manager, WAL, restart).

Substrate benchmark: commit/abort throughput of SimDatabase, lock
manager acquisition rates, and restart-recovery cost as a function of
log length.
"""

import pytest

from repro.tx import SimDatabase
from repro.tx.lockmgr import LockManager, LockMode

from _helpers import print_table


def test_commit_throughput(benchmark):
    db = SimDatabase()

    def txn_cycle():
        with db.begin() as txn:
            txn.write("hot", 1)
            txn.read("hot")

    benchmark(txn_cycle)
    assert db.commits > 0


def test_abort_rollback_cost(benchmark):
    db = SimDatabase()

    def abort_cycle():
        txn = db.begin()
        for i in range(10):
            txn.write("k%d" % i, i)
        txn.abort()

    benchmark(abort_cycle)
    assert db.snapshot() == {}


def test_lock_acquisition_rate(benchmark):
    lm = LockManager()
    keys = ["k%02d" % i for i in range(50)]
    state = {"txn": 0}

    def acquire_release():
        state["txn"] += 1
        txn = "t%d" % state["txn"]
        for key in keys:
            lm.acquire(txn, key, LockMode.SHARED)
        lm.release_all(txn)

    benchmark(acquire_release)


@pytest.mark.parametrize("updates", [10, 100, 1000])
def test_restart_recovery_cost_vs_log_length(benchmark, updates):
    def build_crashed_db():
        db = SimDatabase()
        for i in range(updates):
            with db.begin() as txn:
                txn.write("k%d" % (i % 25), i)
        loser = db.begin()
        loser.write("k0", -1)
        db.flush()
        db.crash()
        return db

    def crash_and_recover():
        db = build_crashed_db()
        return db.restart()

    stats = benchmark(crash_and_recover)
    assert stats["losers"] == 1
    assert stats["redone"] == updates + 1


def test_recovery_stats_table(benchmark):
    rows = []
    for updates in (10, 100, 1000):
        db = SimDatabase()
        for i in range(updates):
            with db.begin() as txn:
                txn.write("k%d" % (i % 25), i)
        loser = db.begin()
        loser.write("k0", -1)
        db.flush()
        db.crash()
        stats = db.restart()
        rows.append(
            (updates, stats["winners"], stats["losers"], stats["redone"],
             stats["undone"])
        )
    print_table(
        "TX: restart recovery statistics vs committed updates",
        ["updates", "winners", "losers", "redone", "undone"],
        rows,
    )
    db = SimDatabase()

    def one_txn():
        with db.begin() as txn:
            txn.write("x", 1)

    benchmark(one_txn)


def test_checkpoint_bounds_recovery(benchmark):
    """A checkpoint shortens restart: only post-checkpoint work is
    redone (1000 pre-checkpoint updates vs 10 after)."""

    def crash_and_recover():
        db = SimDatabase()
        for i in range(1000):
            with db.begin() as txn:
                txn.write("k%d" % (i % 25), i)
        db.checkpoint()
        for i in range(10):
            with db.begin() as txn:
                txn.write("t%d" % i, i)
        db.crash()
        return db.restart()

    stats = benchmark(crash_and_recover)
    assert stats["redone"] == 10


def test_multidb_isolation_throughput(benchmark):
    from repro.tx import Multidatabase

    mdb = Multidatabase()
    for i in range(4):
        mdb.add_site("site%d" % i)

    def federation_round():
        for i in range(4):
            with mdb.begin_at("site%d" % i) as txn:
                txn.increment("counter", 1)

    benchmark(federation_round)
    totals = [mdb.site("site%d" % i).get("counter") for i in range(4)]
    assert len(set(totals)) == 1  # all sites advanced equally
