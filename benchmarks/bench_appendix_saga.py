"""APP-S — the appendix's saga execution example, step by step.

The appendix narrates: activities report return codes; each activity's
State_i is mapped into the forward block's output container; RC_FB
gates the compensation block; the NOP's connectors test State_i;
compensation runs in reverse order "starting from the last activity
executed"; failed compensations are retried through exit conditions.
Every sentence is asserted here against the audit trail.
"""

import pytest

from repro.tx import AbortScript, FailNTimes, SimDatabase
from repro.wfms.audit import AuditEvent
from repro.core.bindings import (
    register_saga_programs,
    workflow_saga_outcome,
)
from repro.core.compblock import state_var
from repro.core.saga_translator import translate_saga
from repro.wfms.engine import Engine
from repro.workloads.generator import saga_bindings

from _helpers import linear_saga, print_table


def run_with_trace(policies, comp_policies=None):
    spec = linear_saga(3)
    db = SimDatabase()
    actions, comps = saga_bindings(spec, db, policies=dict(policies))
    for name, policy in (comp_policies or {}).items():
        comps[name].policy = policy
    translation = translate_saga(spec)
    engine = Engine()
    register_saga_programs(engine, translation, actions, comps)
    engine.register_definition(translation.process)
    result = engine.run_process(translation.process_name)
    return engine, translation, result, spec


def test_appendix_saga_success_trace(benchmark):
    """All three activities execute; compensation block is eliminated
    by dead-path (RC_FB = 0)."""
    engine, tr, result, spec = run_with_trace({})
    assert result.output["_RC"] == 0                       # RC_FB
    assert result.dead_activities == ["Compensation"]      # dead path
    for step in spec.steps:
        assert result.output[state_var(step.name)] == 1    # State_i

    benchmark(lambda: run_with_trace({}))


def test_appendix_saga_abort_trace(benchmark):
    """T3 aborts: RC_FB <> 0, compensation starts at the last executed
    activity and proceeds in reverse order."""
    engine, tr, result, spec = run_with_trace({"t03": AbortScript([1])})
    assert result.output["_RC"] != 0
    assert "Compensation" not in result.dead_activities
    order = engine.execution_order(result.instance_id)
    # Forward: t01 t02 t03(aborted, still terminated with RC=1 => the
    # connector evaluated false and dead-path killed nothing further);
    # compensation: NOP, then Comp_t02 before Comp_t01.
    assert order.index("Comp_t02") < order.index("Comp_t01")
    assert order.index("NOP") < order.index("Comp_t02")
    # "If an activity did not execute, its compensation will not take
    # place since its start condition will never become true."
    comp_child = [
        i.instance_id
        for i in engine.navigator.instances()
        if i.parent_activity == "Compensation"
    ][0]
    assert "Comp_t03" in engine.audit.dead_activities(comp_child)

    rows = [(a,) for a in order]
    print_table("APP-S: termination order, abort at T3", ["activity"], rows)

    benchmark(lambda: run_with_trace({"t03": AbortScript([1])}))


def test_appendix_saga_retriable_compensation(benchmark):
    """"Compensation activities will not finish until the return code
    from the transaction indicates that it has committed." """
    engine, tr, result, spec = run_with_trace(
        {"t03": AbortScript([1])},
        comp_policies={"t01": FailNTimes(3)},
    )
    outcome = workflow_saga_outcome(engine, tr, result.instance_id)
    assert outcome.compensated == ["t02", "t01"]
    comp_child = [
        i.instance_id
        for i in engine.navigator.instances()
        if i.parent_activity == "Compensation"
    ][0]
    assert engine.audit.attempts(comp_child, "Comp_t01") == 4
    rescheduled = engine.audit.records(
        comp_child, AuditEvent.ACTIVITY_RESCHEDULED, "Comp_t01"
    )
    assert len(rescheduled) == 3

    benchmark(
        lambda: run_with_trace(
            {"t03": AbortScript([1])},
            comp_policies={"t01": FailNTimes(3)},
        )
    )
