"""ENG — navigator throughput over generated DAG processes.

Substrate benchmark: activities navigated per second as the process
graph grows (width x depth sweep), plus the cost of dead-path
elimination when conditions kill branches.
"""

import pytest

from repro.wfms.engine import Engine
from repro.workloads.generator import DAG_PROGRAM, random_dag_process

from _helpers import print_table

SHAPES = [(2, 2), (4, 4), (8, 4), (8, 8), (16, 8), (16, 16)]

#: Large-N configuration: this is where the indexed ready queue pays —
#: with N instances in flight the former per-pop scan was O(N x width).
CONCURRENT_INSTANCES = 200
CONCURRENT_SHAPE = (3, 3)


def engine_for(definition, fail_every=0):
    engine = Engine()
    counter = {"n": 0}

    def work(ctx) -> int:
        counter["n"] += 1
        if fail_every and counter["n"] % fail_every == 0:
            return 1
        return 0

    engine.register_program(DAG_PROGRAM, work)
    engine.register_definition(definition)
    return engine


@pytest.mark.parametrize("layers,width", SHAPES)
def test_navigation_throughput(benchmark, layers, width):
    definition = random_dag_process(layers=layers, width=width, seed=42)
    engine = engine_for(definition)

    def run_instance():
        return engine.run_process(definition.name)

    result = benchmark(run_instance)
    assert result.finished


def test_throughput_table(benchmark):
    rows = []
    import time

    for layers, width in SHAPES:
        definition = random_dag_process(layers=layers, width=width, seed=42)
        engine = engine_for(definition)
        start = time.perf_counter()
        runs = 20
        for __ in range(runs):
            engine.run_process(definition.name)
        elapsed = time.perf_counter() - start
        activities = layers * width * runs
        rows.append(
            (
                "%dx%d" % (layers, width),
                layers * width,
                "%.0f" % (activities / elapsed),
            )
        )
    print_table(
        "ENG: navigator throughput (20 instances per shape)",
        ["shape (layers x width)", "activities/instance", "activities/sec"],
        rows,
    )
    definition = random_dag_process(layers=4, width=4, seed=42)
    engine = engine_for(definition)
    benchmark(lambda: engine.run_process(definition.name))


def test_dead_path_elimination_cost(benchmark):
    """Processes where conditions kill branches finish just as fast:
    dead-path elimination is a graph walk, not program execution."""
    definition = random_dag_process(
        layers=8, width=4, seed=7, fail_probability=0.5
    )
    engine = engine_for(definition, fail_every=3)

    def run_instance():
        return engine.run_process(definition.name)

    result = benchmark(run_instance)
    assert result.finished
    states = engine.activity_states(result.instance_id)
    assert all(s in ("terminated", "dead") for s in states.values())


def concurrent_batch_setup():
    """Build the large-N concurrent scenario (shared with compare.py)."""
    layers, width = CONCURRENT_SHAPE
    definition = random_dag_process(layers=layers, width=width, seed=9)
    return engine_for(definition), definition


def run_concurrent_batch(engine, definition, count=CONCURRENT_INSTANCES):
    ids = [engine.start_process(definition.name) for __ in range(count)]
    engine.run()
    return ids


def test_many_concurrent_instances(benchmark):
    engine, definition = concurrent_batch_setup()

    def run_batch():
        return run_concurrent_batch(engine, definition)

    ids = benchmark(run_batch)
    assert len(ids) == CONCURRENT_INSTANCES
    assert all(engine.instance_state(i) == "finished" for i in ids)
