"""FIG3 — the flexible-transaction example of Figure 3, executed by the
*native* model runtime (the transaction-model baseline).

Regenerates the path-preference behaviour: p1 > p2 > p3, with
compensation and retries exactly as §4.2 describes.
"""

import pytest

from repro.tx import AbortScript, FailNTimes

from _helpers import print_table, run_fig3_native

SCENARIOS = [
    ("all commit", {}, True, ["t1", "t2", "t4", "t5", "t6", "t8"], []),
    ("t1 aborts", {"t1": AbortScript([1])}, False, [], []),
    ("t2 aborts", {"t2": AbortScript([1])}, False, [], ["t1"]),
    (
        "t4 aborts",
        {"t4": AbortScript([1]), "t3": FailNTimes(2)},
        True,
        ["t1", "t2", "t3"],
        [],
    ),
    ("t5 aborts", {"t5": AbortScript([1])}, True, ["t1", "t2", "t4", "t7"], []),
    (
        "t6 aborts",
        {"t6": AbortScript([1])},
        True,
        ["t1", "t2", "t4", "t7"],
        ["t5"],
    ),
    (
        "t8 aborts",
        {"t8": AbortScript([1])},
        True,
        ["t1", "t2", "t4", "t7"],
        ["t6", "t5"],
    ),
]


def test_fig3_native_path_selection(benchmark):
    rows = []
    for label, policies, committed, path, compensated in SCENARIOS:
        outcome, __ = run_fig3_native(dict(policies))
        assert outcome.committed == committed, label
        assert outcome.committed_path == path, label
        assert outcome.compensated == compensated, label
        rows.append(
            (
                label,
                "commit" if outcome.committed else "abort",
                "->".join(outcome.committed_path) or "-",
                ",".join(outcome.compensated) or "-",
            )
        )
    print_table(
        "FIG3: native flexible-transaction behaviour (p1 > p2 > p3)",
        ["scenario", "outcome", "committed path", "compensated"],
        rows,
    )

    def preferred_path():
        outcome, __ = run_fig3_native({})
        return outcome

    outcome = benchmark(preferred_path)
    assert outcome.committed


@pytest.mark.parametrize(
    "label,policies",
    [(s[0], s[1]) for s in SCENARIOS],
    ids=[s[0].replace(" ", "_") for s in SCENARIOS],
)
def test_fig3_scenario_cost(benchmark, label, policies):
    outcome, __ = benchmark(lambda: run_fig3_native(dict(policies)))
    assert outcome is not None
