"""SHARD — sharded-engine throughput and multiprocess scaling.

Two scenarios over the same large-N workload as
``bench_engine_throughput`` (200 roots of a 3x3 DAG):

* the in-process :class:`~repro.wfms.sharding.ShardedEngine`
  partitioning the batch over N shards under the deterministic
  round-robin pump — measures partitioning/pump overhead against the
  single-engine ``engine.concurrent_200x3x3`` metric;

* the :class:`~repro.wfms.sharding.MultiprocessShardPool` backend
  pushing the same batch through 1/2/4 worker processes — measures
  real-core scaling (entirely host-dependent: on a single-core
  container the sweep is flat and the speedup hovers around 1.0x).

Shared with ``compare.py`` (``engine.sharded_*`` metrics).
"""

import time

from repro.wfms.sharding import MultiprocessShardPool, ShardedEngine
from repro.workloads.generator import DAG_PROGRAM, random_dag_process

from _helpers import print_table

SHARDED_INSTANCES = 200
SHARDED_SHAPE = (3, 3)
SHARDED_SEED = 9
SHARDED_SHARDS = 4
MP_SWEEP = (1, 2, 4)


def sharded_definition():
    layers, width = SHARDED_SHAPE
    return random_dag_process(layers=layers, width=width, seed=SHARDED_SEED)


def _dag_work(ctx) -> int:
    return 0


def sharded_setup(num_shards=SHARDED_SHARDS):
    """An in-process ShardedEngine with the concurrent DAG registered
    on every shard (shared with compare.py)."""
    definition = sharded_definition()
    sharded = ShardedEngine(num_shards, steps_per_slice=50)

    def configure(node):
        node.engine.register_program(DAG_PROGRAM, _dag_work, replace=True)
        if definition.name not in node.engine.definitions():
            node.engine.register_definition(definition)

    sharded.configure(configure)
    return sharded, definition


def run_sharded_batch(sharded, definition, count=SHARDED_INSTANCES):
    ids = [sharded.start_process(definition.name) for __ in range(count)]
    sharded.run()
    return ids


def mp_engine_factory(index, num_shards):
    """Top-level (picklable) per-worker engine factory for the
    multiprocessing backend — each worker builds its own registry."""
    from repro.wfms.engine import Engine

    engine = Engine()
    engine.register_program(DAG_PROGRAM, _dag_work)
    engine.register_definition(sharded_definition())
    return engine


def mp_throughput(num_shards, count=SHARDED_INSTANCES):
    """activities/sec pushing ``count`` DAG roots through an N-worker
    multiprocess pool.  Timed after the workers are up (one empty run
    as the readiness barrier), so the metric covers batch dispatch,
    navigation and the result sweep — not process spawn."""
    layers, width = SHARDED_SHAPE
    name = sharded_definition().name
    with MultiprocessShardPool(num_shards, mp_engine_factory) as pool:
        pool.run()
        start = time.perf_counter()
        pool.start_batch(name, count)
        pool.run()
        elapsed = time.perf_counter() - start
        finished = pool.finished_roots()
    assert finished == count, finished
    return layers * width * count / elapsed


def mp_scaling_sweep(workers=MP_SWEEP, count=SHARDED_INSTANCES, repeats=3):
    """{worker count: activities/sec} over the multiprocess backend.

    Best-of-``repeats`` per point: pool throughput on throttled/shared
    hosts swings hard run-to-run, and a single sample can make the
    sweep look like scaling (or collapse) that is not there."""
    return {
        n: max(mp_throughput(n, count) for __ in range(repeats))
        for n in workers
    }


def test_sharded_batch_matches_single_engine(benchmark):
    """Every root finishes, spread over all shards."""
    sharded, definition = sharded_setup()

    def run_batch():
        sharded, definition = sharded_setup()
        return sharded, run_sharded_batch(sharded, definition)

    sharded, ids = benchmark(run_batch)
    assert len(ids) == SHARDED_INSTANCES
    assert all(sharded.instance_state(i) == "finished" for i in ids)
    populated = [
        s for s in sharded.snapshot()["shards"] if s["live_instances"] >= 0
    ]
    assert len(populated) == SHARDED_SHARDS


def test_mp_scaling_table(benchmark):
    sweep = mp_scaling_sweep(count=60)
    base = sweep[MP_SWEEP[0]]
    print_table(
        "SHARD: multiprocess scaling (60 roots of 3x3 DAG)",
        ["workers", "activities/sec", "speedup vs 1"],
        [
            (str(n), "%.0f" % tp, "%.2fx" % (tp / base))
            for n, tp in sweep.items()
        ],
    )
    benchmark(lambda: mp_throughput(1, count=20))
