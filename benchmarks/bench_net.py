"""Socket-transport benchmarks: request/reply cost and open-loop tail.

Three numbers the performance gate tracks:

* ``request_reply_throughput`` — bus RPC round-trips/sec over a live
  broker (send → receive → ack cycles on one connection, three
  round-trips per message).  This is the floor cost a WorkflowNode
  pays per remote message versus the in-memory bus: framing, one
  loopback TCP round-trip, broker dispatch;
* ``durable_request_reply_throughput`` — the same cycle against a
  broker with the write-ahead bus log armed (``sync="batch"``): every
  send and ack is journaled before the reply frame goes out.  The
  gap to the in-memory number is the committed durability overhead
  README.md quotes;
* ``open_loop_p99_seconds`` — tail latency from the open-loop traffic
  driver (:mod:`repro.workloads.traffic`) at a rate the broker
  sustains on one core.  The gate stores its reciprocal so "bigger is
  better" holds like every other metric.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_net.py
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

#: send→receive→ack cycles per throughput measurement.
MESSAGES = 300

#: Open-loop point: modest rate, fixed spacing — the healthy regime;
#: overload behaviour is the chaos/test suite's business, the gate
#: tracks the no-queueing tail.
OPEN_LOOP_RATE = 150.0
OPEN_LOOP_REQUESTS = 150


def request_reply_throughput(messages: int = MESSAGES) -> float:
    """RPC round-trips/sec for send→receive→ack over one connection."""
    from repro.net.client import SocketBus
    from repro.net.server import BusServerThread

    queue = "node:bench"
    with BusServerThread() as broker:
        with SocketBus(*broker.address, name="bench-rr") as bus:
            # Warmup: connection, first-frame costs.
            mid = bus.send(queue, {"warm": True})
            bus.ack(queue, bus.receive(queue)[0])
            start = time.perf_counter()
            for index in range(messages):
                bus.send(queue, {"i": index})
                taken = bus.receive(queue)
                bus.ack(queue, taken[0])
            elapsed = time.perf_counter() - start
    return (3 * messages) / elapsed


def durable_request_reply_throughput(
    messages: int = MESSAGES, sync: str = "batch"
) -> float:
    """RPC round-trips/sec with the write-ahead bus log journaling
    every send/ack (``batch`` sync: buffered writes, fsync at commit
    points — the recommended production policy)."""
    from repro.net.client import SocketBus
    from repro.net.server import BusServerThread

    queue = "node:bench"
    base = "/dev/shm" if os.path.isdir("/dev/shm") else None
    directory = tempfile.mkdtemp(prefix="bench-buslog-", dir=base)
    try:
        with BusServerThread(
            durable_dir=directory, durable_sync=sync
        ) as broker:
            with SocketBus(*broker.address, name="bench-durable") as bus:
                bus.send(queue, {"warm": True})
                bus.ack(queue, bus.receive(queue)[0])
                start = time.perf_counter()
                for index in range(messages):
                    bus.send(queue, {"i": index})
                    taken = bus.receive(queue)
                    bus.ack(queue, taken[0])
                elapsed = time.perf_counter() - start
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    return (3 * messages) / elapsed


def open_loop_p99_seconds(
    rate: float = OPEN_LOOP_RATE, requests: int = OPEN_LOOP_REQUESTS
) -> float:
    """p99 request→reply latency (seconds) at a sustainable rate."""
    from repro.net.client import SocketBus
    from repro.net.server import BusServerThread
    from repro.workloads.traffic import run_open_loop

    with BusServerThread() as broker:
        address = broker.address
        report = run_open_loop(
            lambda name: SocketBus(*address, name=name),
            rate=rate,
            requests=requests,
            distribution="fixed",
        )
    return report["latency"]["p99_ms"] / 1e3


if __name__ == "__main__":
    volatile = request_reply_throughput()
    durable = durable_request_reply_throughput()
    print("request_reply          %10.1f round-trips/sec" % volatile)
    print(
        "durable_request_reply  %10.1f round-trips/sec (%.1f%% overhead)"
        % (durable, 100.0 * (1.0 - durable / volatile))
    )
    print("open_loop_p99          %10.3f ms" % (1e3 * open_loop_p99_seconds()))
