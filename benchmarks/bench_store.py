"""STORE — durable state store: checkpointed recovery and compaction.

Two claims, one per test group:

* **Checkpointed recovery is flat.**  A plain journal replays the whole
  history, so recovery cost grows linearly with completed work; the
  durable store restores the latest snapshot and replays only the
  journal suffix past its covered offset, so its replay debt is bounded
  by the checkpoint cadence no matter how long the history is.  The
  record counts are asserted (not eyeballed); the timed variants show
  the same shape in wall-clock.
* **Compaction throughput.**  ``compact()`` drops segments wholly
  covered by the checkpoint and sparse-rewrites the straddler; the
  table reports records retired per second.
"""

import shutil
import time

import pytest

from repro.store import DurableStore
from repro.wfms import Activity, Engine, ProcessDefinition

from _helpers import print_table

#: Checkpoint cadence used throughout (journal records per snapshot).
CHECKPOINT_EVERY = 16
#: Journal records one Flow instance writes (start + 3 acts + finish).
RECORDS_PER_INSTANCE = 5
HISTORIES = (8, 32, 128)


def register(engine):
    engine.register_program("p", lambda ctx: 0)
    defn = ProcessDefinition("Flow")
    for name in ("A", "B", "C"):
        defn.add_activity(Activity(name, program="p"))
    defn.connect("A", "B")
    defn.connect("B", "C")
    engine.register_definition(defn)
    return engine


def store_engine(directory, **kwargs):
    kwargs.setdefault("checkpoint_every_records", CHECKPOINT_EVERY)
    return register(Engine(store=DurableStore(directory, **kwargs)))


def journal_engine(path):
    return register(Engine(journal_path=str(path)))


def run_history(engine, instances):
    for __ in range(instances):
        engine.start_process("Flow")
        engine.run()


def test_replay_debt_flat_vs_linear(tmp_path):
    """The acceptance check, by record count: full replay grows with
    history, the checkpointed suffix does not."""
    rows, suffixes, fulls = [], [], []
    for instances in HISTORIES:
        engine = store_engine(tmp_path / ("s%d" % instances))
        run_history(engine, instances)
        engine.crash()
        rebuilt = store_engine(tmp_path / ("s%d" % instances))
        rebuilt.recover()
        summary = rebuilt.store.last_recovery
        rebuilt.close()

        journal_path = tmp_path / ("j%d.jsonl" % instances)
        plain = journal_engine(journal_path)
        run_history(plain, instances)
        plain.crash()
        plain2 = journal_engine(journal_path)
        plain2.recover()
        total = instances * RECORDS_PER_INSTANCE
        plain2.close()

        rows.append((instances, total, summary["suffix_records"]))
        fulls.append(total)
        suffixes.append(summary["suffix_records"])
    print_table(
        "STORE: replay debt vs history (checkpoint every %d records)"
        % CHECKPOINT_EVERY,
        ["instances", "full replay records", "checkpointed suffix"],
        rows,
    )
    # Full replay is linear in history; the suffix is bounded by the
    # cadence plus the records one in-flight instance can add.
    assert fulls[-1] == fulls[0] * (HISTORIES[-1] // HISTORIES[0])
    bound = CHECKPOINT_EVERY + RECORDS_PER_INSTANCE
    assert all(suffix <= bound for suffix in suffixes)


@pytest.mark.parametrize("instances", HISTORIES)
def test_checkpointed_recovery_time(benchmark, tmp_path, instances):
    """Wall-clock recovery with checkpoints: flat across history."""
    directory = tmp_path / "store"
    engine = store_engine(directory)
    run_history(engine, instances)
    engine.crash()

    def recover_once():
        rebuilt = store_engine(directory)
        rebuilt.recover()
        summary = rebuilt.store.last_recovery
        rebuilt.close()
        return summary

    summary = benchmark(recover_once)
    assert summary["checkpoint"] is not None
    assert summary["suffix_records"] <= CHECKPOINT_EVERY + RECORDS_PER_INSTANCE


@pytest.mark.parametrize("instances", HISTORIES)
def test_full_replay_recovery_time(benchmark, tmp_path, instances):
    """Wall-clock recovery without checkpoints: linear across history."""
    journal_path = tmp_path / "journal.jsonl"
    engine = journal_engine(journal_path)
    run_history(engine, instances)
    engine.crash()

    def recover_once():
        fresh = journal_engine(journal_path)
        replayed = fresh.recover()
        fresh.close()
        return replayed

    assert benchmark(recover_once) == instances * 3


def test_compaction_throughput(tmp_path):
    """Records retired per second when a checkpoint covers most of the
    journal.  Compaction is destructive, so each sample runs against a
    fresh copy of the same pre-built store directory."""
    instances = 200
    master = tmp_path / "master"
    engine = store_engine(
        master,
        checkpoint_every_records=10_000,  # no automatic checkpoints
        compact_on_checkpoint=False,
        segment_max_records=64,
    )
    run_history(engine, instances)
    engine.checkpoint()
    engine.close()

    rows, best = [], 0.0
    for sample in range(3):
        copy = tmp_path / ("run%d" % sample)
        shutil.copytree(master, copy)
        store = DurableStore(copy, compact_on_checkpoint=False)
        store.attach()
        start = time.perf_counter()
        stats = store.compact()
        elapsed = time.perf_counter() - start
        store.close()
        retired = stats["records_dropped"]
        assert retired > 0 and stats["segments_dropped"] > 0
        best = max(best, retired / elapsed)
        rows.append(
            (
                sample,
                retired,
                stats["segments_dropped"],
                "%.0f" % (retired / elapsed),
            )
        )
    print_table(
        "STORE: compaction throughput (%d instances, 64-record segments)"
        % instances,
        ["run", "records retired", "segments dropped", "records/sec"],
        rows,
    )
    assert best > 0.0


def store_disabled_throughput(runs=30):
    """activities/sec on the 8x8 DAG with *no* store configured.

    The store hooks on the navigator hot path (checkpoint cadence
    check, archive-on-finish) must collapse to one attribute read when
    no store is attached; ``compare.py`` gates exactly this number.
    """
    from repro.workloads.generator import DAG_PROGRAM, random_dag_process

    layers, width = 8, 8
    definition = random_dag_process(layers=layers, width=width, seed=42)
    engine = Engine()
    engine.register_program(DAG_PROGRAM, lambda ctx: 0)
    engine.register_definition(definition)
    engine.run_process(definition.name)  # warmup
    start = time.perf_counter()
    for __ in range(runs):
        assert engine.run_process(definition.name).finished
    elapsed = time.perf_counter() - start
    return layers * width * runs / elapsed


def test_store_disabled_throughput(benchmark):
    from repro.workloads.generator import DAG_PROGRAM, random_dag_process

    definition = random_dag_process(layers=8, width=8, seed=42)
    engine = Engine()
    engine.register_program(DAG_PROGRAM, lambda ctx: 0)
    engine.register_definition(definition)
    result = benchmark(lambda: engine.run_process(definition.name))
    assert result.finished
