"""RES — cost of the resilience subsystem.

Two questions, one per test group:

* **Disabled** (the default): an engine with no fault injector and no
  policies must run at the pre-resilience throughput.  The guards are
  one ``None``/emptiness test per site (program invocation, journal
  append/fsync, bus send, completion bookkeeping); ``compare.py``
  gates exactly this number.
* **Installed-but-idle**: an injector whose rules never match and a
  retry policy that never triggers — the bookkeeping cost of having
  the machinery armed.  Informational, but keeps the factor honest.
"""

import time

from repro.resilience import FaultInjector, FaultRule, RetryPolicy
from repro.wfms.engine import Engine
from repro.workloads.generator import DAG_PROGRAM, random_dag_process

from _helpers import print_table

#: Shape of the measured DAG workload (matches bench_observability).
SHAPE = (8, 8)
RUNS = 30


def engine_for(definition, fault_injector=None, retry=False):
    engine = Engine(fault_injector=fault_injector)
    engine.register_program(DAG_PROGRAM, lambda ctx: 0)
    engine.register_definition(definition)
    if retry:
        engine.set_retry(DAG_PROGRAM, RetryPolicy(3, backoff="fixed"))
    return engine


def idle_injector():
    """Rules that match no site key the DAG workload ever touches."""
    return FaultInjector(
        [FaultRule("program", match="no_such_program", probability=1.0)]
    )


def resilience_throughput(fault_injector=None, retry=False, runs=RUNS):
    """activities/sec on the standard DAG with the given setup."""
    layers, width = SHAPE
    definition = random_dag_process(layers=layers, width=width, seed=42)
    engine = engine_for(definition, fault_injector, retry)
    engine.run_process(definition.name)  # warmup
    start = time.perf_counter()
    for __ in range(runs):
        assert engine.run_process(definition.name).finished
    elapsed = time.perf_counter() - start
    return layers * width * runs / elapsed


def test_overhead_table():
    """No-injector vs armed-but-idle throughput with overhead factors."""
    disabled = resilience_throughput()
    variants = [
        ("disabled (default)", disabled),
        ("idle injector", resilience_throughput(idle_injector())),
        (
            "idle injector + retry policy",
            resilience_throughput(idle_injector(), retry=True),
        ),
    ]
    rows = [
        (name, "%.0f" % value, "%.2fx" % (disabled / value))
        for name, value in variants
    ]
    print_table(
        "RES: resilience overhead (8x8 DAG, activities/sec)",
        ["configuration", "activities/sec", "slowdown vs disabled"],
        rows,
    )
    # An armed-but-idle injector does one fnmatch per program call; a
    # factor beyond ~5x would mean the sites left the constant-work
    # regime.
    idle = variants[1][1]
    assert disabled / idle < 5.0


def test_disabled_throughput(benchmark):
    layers, width = SHAPE
    definition = random_dag_process(layers=layers, width=width, seed=42)
    engine = engine_for(definition)
    result = benchmark(lambda: engine.run_process(definition.name))
    assert result.finished


def test_idle_injector_throughput(benchmark):
    layers, width = SHAPE
    definition = random_dag_process(layers=layers, width=width, seed=42)
    engine = engine_for(definition, idle_injector(), retry=True)
    result = benchmark(lambda: engine.run_process(definition.name))
    assert result.finished
