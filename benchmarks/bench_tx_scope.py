"""SCOPE — cross-activity transaction scopes over the tx substrate.

Two claims, one per test group:

* **One scope beats N subtransactions.**  A scoped chain runs all its
  steps inside a single ``repro.tx`` transaction (one BEGIN, one
  COMMIT, locks acquired once), where the per-activity translation
  pays a full begin/commit cycle per step.  The table reports both,
  over identical write workloads, and asserts the final states agree.
* **Zero overhead when off.**  The navigator consults the
  ``tx_scopes`` service only at root-instance finish, and the lookup
  must collapse to one ``dict.get`` when no scope manager is
  installed; ``compare.py`` gates the scope-less 8x8 DAG throughput.
"""

import time

from repro.tx import ScopeManager, SimDatabase, Subtransaction
from repro.tx.subtransaction import write_value
from repro.wfms import Engine

from _helpers import print_table

#: Steps per chain (writes inside the scope / subtransactions).
CHAIN_STEPS = 8
#: Scope operations one chain performs: begin + savepoint + writes +
#: commit — the unit behind ``tx.scope_chain.ops_per_sec``.
OPS_PER_CHAIN = CHAIN_STEPS + 3


def run_scoped_chain(manager, root, marker):
    scope = manager.begin(root)
    scope.savepoint("sp")
    for step in range(CHAIN_STEPS):
        scope.write("k%d" % step, marker)
    scope.commit()


def run_per_activity_chain(db, marker):
    for step in range(CHAIN_STEPS):
        outcome = Subtransaction(
            "t%d" % step, db, write_value("k%d" % step, marker)
        ).execute()
        assert outcome.committed


def scope_chain_throughput(chains=200):
    """scope ops/sec over ``chains`` sequential scoped chains.

    This is the hot path of every scoped saga: handle registry,
    logical-clock tick, strict-2PL acquisition and WAL logging per
    write, savepoint watermark, commit.  ``compare.py`` gates it.
    """
    db = SimDatabase()
    manager = ScopeManager(db)
    start = time.perf_counter()
    for i in range(chains):
        run_scoped_chain(manager, "root-%d" % i, i)
    elapsed = time.perf_counter() - start
    return chains * OPS_PER_CHAIN / elapsed


def scope_disabled_throughput(runs=30):
    """activities/sec on the 8x8 DAG with *no* scope manager installed.

    The only scope hook on the navigator hot path is the
    ``services.get("tx_scopes")`` probe at root finish; this number
    regresses if scope support ever taxes scope-less workflows more
    than that one lookup.
    """
    from repro.workloads.generator import DAG_PROGRAM, random_dag_process

    layers, width = 8, 8
    definition = random_dag_process(layers=layers, width=width, seed=42)
    engine = Engine()
    engine.register_program(DAG_PROGRAM, lambda ctx: 0)
    engine.register_definition(definition)
    engine.run_process(definition.name)  # warmup
    start = time.perf_counter()
    for __ in range(runs):
        assert engine.run_process(definition.name).finished
    elapsed = time.perf_counter() - start
    return layers * width * runs / elapsed


def test_scope_vs_per_activity_cost():
    """The amortisation claim: one transaction per chain instead of
    one per step, same final state."""
    chains = 100
    rows = []

    scoped_db = SimDatabase()
    manager = ScopeManager(scoped_db)
    start = time.perf_counter()
    for i in range(chains):
        run_scoped_chain(manager, "root-%d" % i, i)
    scoped = time.perf_counter() - start

    plain_db = SimDatabase()
    start = time.perf_counter()
    for i in range(chains):
        run_per_activity_chain(plain_db, i)
    plain = time.perf_counter() - start

    assert scoped_db.snapshot() == plain_db.snapshot()
    # One commit per chain vs one per step: 1 + steps*(begin+commit).
    rows.append(
        ("scoped (1 txn/chain)", chains, "%.1f" % (chains / scoped))
    )
    rows.append(
        ("per-activity (%d txn/chain)" % CHAIN_STEPS, chains,
         "%.1f" % (chains / plain))
    )
    print_table(
        "SCOPE: %d-step chain, scoped vs per-activity" % CHAIN_STEPS,
        ["variant", "chains", "chains/sec"],
        rows,
    )


def test_scope_chain_throughput(benchmark):
    db = SimDatabase()
    manager = ScopeManager(db)
    counter = iter(range(1_000_000))

    def one_chain():
        i = next(counter)
        run_scoped_chain(manager, "root-%d" % i, i)

    benchmark(one_chain)
    assert db.get("k0") is not None
    assert db.active_transactions() == []


def test_scope_disabled_throughput(benchmark):
    from repro.workloads.generator import DAG_PROGRAM, random_dag_process

    definition = random_dag_process(layers=8, width=8, seed=42)
    engine = Engine()
    engine.register_program(DAG_PROGRAM, lambda ctx: 0)
    engine.register_definition(definition)
    result = benchmark(lambda: engine.run_process(definition.name))
    assert result.finished
