"""ABL-COMP — ablation: dead-path vs guarded compensation.

DESIGN.md calls out one real design choice in the Figure 2
construction: never-executed compensations can be skipped either

* **dead-path** (the paper's way): the navigator's dead-path
  elimination kills the compensating activities whose State triggers
  are false — only the j needed compensations *run*; or
* **guarded** (needed for DAG sagas): every compensating activity
  runs, and a guard inside the program returns immediately when the
  forward step never committed.

Both must be behaviourally identical on linear sagas; the ablation
measures what the choice costs as the fraction of needed compensation
shrinks (abort early in a long saga = most compensations unnecessary).
"""

import pytest

from repro.tx import SimDatabase
from repro.wfms.engine import Engine
from repro.core.bindings import (
    register_saga_programs,
    workflow_saga_outcome,
)
from repro.core.parallel_saga import (
    register_parallel_saga_programs,
    translate_parallel_saga,
    workflow_parallel_saga_outcome,
)
from repro.core.saga_translator import translate_saga
from repro.workloads.generator import saga_bindings

from _helpers import abort_policy_at, linear_saga, print_table

N = 12


def run_deadpath(spec, policies):
    db = SimDatabase()
    actions, comps = saga_bindings(spec, db, policies=dict(policies))
    translation = translate_saga(spec)
    engine = Engine()
    register_saga_programs(engine, translation, actions, comps)
    engine.register_definition(translation.process)
    result = engine.run_process(translation.process_name)
    return (
        workflow_saga_outcome(engine, translation, result.instance_id),
        engine,
        result.instance_id,
        db,
    )


def run_guarded(spec, policies):
    db = SimDatabase()
    actions, comps = saga_bindings(spec, db, policies=dict(policies))
    translation = translate_parallel_saga(spec)
    engine = Engine()
    register_parallel_saga_programs(engine, translation, actions, comps)
    engine.register_definition(translation.process)
    result = engine.run_process(translation.process_name)
    return (
        workflow_parallel_saga_outcome(
            engine, translation, result.instance_id
        ),
        engine,
        result.instance_id,
        db,
    )


def comp_activities_started(engine, instance_id):
    """How many compensating activities actually *started*."""
    root = engine.navigator.instance(instance_id)
    comp = root.activities.get("Compensation")
    if comp is None or not comp.child_instance:
        return 0
    started = engine.audit.started_order(comp.child_instance)
    return sum(1 for name in started if name.startswith("Comp_"))


def test_constructions_agree_everywhere(benchmark):
    spec = linear_saga(N)
    rows = []
    for j in [1, N // 4, N // 2, N]:
        policies = abort_policy_at(spec, j)
        dead, dead_engine, dead_iid, dead_db = run_deadpath(spec, policies)
        guard, guard_engine, guard_iid, guard_db = run_guarded(spec, policies)
        assert dead.executed == guard.executed, j
        assert dead.compensated == guard.compensated, j
        assert dead_db.snapshot() == guard_db.snapshot(), j
        rows.append(
            (
                j,
                len(dead.compensated),
                comp_activities_started(dead_engine, dead_iid),
                comp_activities_started(guard_engine, guard_iid),
            )
        )
    print_table(
        "ABL-COMP: compensating activities started (n=%d saga)" % N,
        [
            "abort at",
            "needed",
            "dead-path construction",
            "guarded construction",
        ],
        rows,
    )
    # Dead-path starts only what is needed; guarded always starts n.
    for j, needed, dead_started, guard_started in rows:
        assert dead_started == needed
        assert guard_started == N

    benchmark(lambda: run_deadpath(spec, abort_policy_at(spec, 1)))


@pytest.mark.parametrize("construction", ["deadpath", "guarded"])
@pytest.mark.parametrize("abort_at", [1, N])
def test_ablation_cost(benchmark, construction, abort_at):
    spec = linear_saga(N)
    policies = abort_policy_at(spec, abort_at)
    runner = run_deadpath if construction == "deadpath" else run_guarded
    outcome, *__ = benchmark(lambda: runner(spec, policies))
    assert not outcome.committed
