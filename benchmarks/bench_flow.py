"""FLOW — the durable decorator front end (``repro.flow``).

Two claims, one per measured number:

* **Replay is cheap.**  Each workflow attempt re-runs the Python body
  from the top and answers every already-journaled step from the
  journal map — an n-step flow performs O(n^2) replays, so replay must
  be a dict probe, not a re-execution.  The table reports journal
  replays/sec; ``compare.py`` gates it.
* **Zero overhead when off.**  Flows are opt-in: an engine without
  ``install_flows`` has no flow service, no ``flow_drive`` program,
  and no per-activity hook.  ``compare.py`` gates the flow-less 8x8
  DAG throughput so the front end can never tax plain workflows.
"""

import time

from repro.flow import install_flows, step, workflow
from repro.wfms import Engine

from _helpers import print_table

#: Steps per flow — attempt k replays k-1 steps, so one flow performs
#: STEPS * (STEPS - 1) / 2 journal replays.
STEPS = 24
#: Flows per timed run.
FLOWS = 8
#: Journal replays one run performs (the unit behind
#: ``flow.step_replay.ops_per_sec``).
REPLAYS_PER_RUN = FLOWS * STEPS * (STEPS - 1) // 2


def build_runtime():
    @step
    def bump(x):
        return x + 1

    @workflow
    def ladder(flow, n):
        total = 0
        for __ in range(n):
            total = bump(total)
        return total

    engine = Engine()
    return engine, install_flows(engine, [ladder], seed=0)


def step_replay_throughput(flows=FLOWS):
    """journal replays/sec across ``flows`` sequential ladder flows.

    The deferred-suspend loop's hot path: canonicalize the call,
    probe the journal map by function id, hand back the recorded
    result.  ``compare.py`` gates it.
    """
    engine, rt = build_runtime()
    for i in range(flows):
        rt.start("ladder", STEPS)
    start = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - start
    replayed = rt.counters["steps_replayed_loop"]
    assert replayed == flows * STEPS * (STEPS - 1) // 2
    return replayed / elapsed


def flow_disabled_dag_throughput(runs=30):
    """activities/sec on the 8x8 DAG with *no* flow runtime installed.

    Flows ride ordinary definitions and a dedicated program; an engine
    that never calls ``install_flows`` must run plain workflows at
    full speed.  This number regresses if the front end ever grows a
    hook on the navigator hot path.
    """
    from repro.workloads.generator import DAG_PROGRAM, random_dag_process

    layers, width = 8, 8
    definition = random_dag_process(layers=layers, width=width, seed=42)
    engine = Engine()
    engine.register_program(DAG_PROGRAM, lambda ctx: 0)
    engine.register_definition(definition)
    engine.run_process(definition.name)  # warmup
    start = time.perf_counter()
    for __ in range(runs):
        assert engine.run_process(definition.name).finished
    elapsed = time.perf_counter() - start
    return layers * width * runs / elapsed


def test_replay_scales_quadratically_but_stays_cheap():
    """The replay-cost claim: doubling the step count quadruples the
    replays but the per-replay cost stays flat (same order)."""
    rows = []
    per_replay = {}
    for steps in (8, 16, 24):
        @step
        def bump(x):
            return x + 1

        @workflow
        def ladder(flow, n):
            total = 0
            for __ in range(n):
                total = bump(total)
            return total

        engine = Engine()
        rt = install_flows(engine, [ladder], seed=0)
        rt.start("ladder", steps)
        start = time.perf_counter()
        engine.run()
        elapsed = time.perf_counter() - start
        replays = rt.counters["steps_replayed_loop"]
        assert replays == steps * (steps - 1) // 2
        per_replay[steps] = elapsed / max(replays, 1)
        rows.append(
            (steps, replays, "%.1f" % (replays / elapsed))
        )
    # Flat per-replay cost within an order of magnitude.
    assert per_replay[24] < per_replay[8] * 10
    print_table(
        "FLOW: ladder replay cost vs step count",
        ["steps", "replays", "replays/sec"],
        rows,
    )


def test_step_replay_throughput(benchmark):
    engine, rt = build_runtime()

    def one_flow():
        rt.start("ladder", STEPS)
        engine.run()

    benchmark(one_flow)
    assert rt.counters["steps_replayed_loop"] > 0


def test_flow_disabled_dag_throughput(benchmark):
    from repro.workloads.generator import DAG_PROGRAM, random_dag_process

    definition = random_dag_process(layers=8, width=8, seed=42)
    engine = Engine()
    engine.register_program(DAG_PROGRAM, lambda ctx: 0)
    engine.register_definition(definition)
    result = benchmark(lambda: engine.run_process(definition.name))
    assert result.finished
