"""ORG — worklists and load balancing (§3.3).

"the same activity may appear in several worklists simultaneously,
however, as soon as a user selects that activity for execution, it
disappears from all other worklists.  This can be effectively used to
perform load balancing."

Offers many manual activities to a pool of clerks who claim greedily;
asserts the claim semantics and reports the resulting load balance.
"""

import pytest

from repro.wfms import Activity, Engine, ProcessDefinition
from repro.wfms.model import StaffAssignment, StartMode
from repro.wfms.organization import Organization

from _helpers import print_table

USERS = ["u1", "u2", "u3", "u4"]
ITEMS = 200

#: Large-N configuration: every claim used to rescan all items ever
#: created, so claiming a big backlog was quadratic before the
#: per-user / per-slot worklist indexes.
CLAIM_ITEMS = 600


def build_engine():
    org = Organization()
    org.add_role("clerk")
    for user in USERS:
        org.add_person(user, roles=("clerk",))
    engine = Engine(organization=org)
    engine.register_program("noop", lambda ctx: 0)
    defn = ProcessDefinition("ManualStep")
    defn.add_activity(
        Activity(
            "Work",
            program="noop",
            start_mode=StartMode.MANUAL,
            staff=StaffAssignment(roles=("clerk",)),
        )
    )
    engine.register_definition(defn)
    return engine


def offer_all(engine, count=ITEMS):
    for __ in range(count):
        engine.start_process("ManualStep", starter="u1")
    engine.run()


def test_claim_semantics_and_load_balance(benchmark):
    engine = build_engine()
    offer_all(engine)
    # Every item visible to every clerk before claiming:
    assert len(engine.worklist("u1")) == ITEMS
    assert len(engine.worklist("u4")) == ITEMS

    # Clerks claim round-robin; each claim removes the item everywhere.
    claimed = {user: 0 for user in USERS}
    index = 0
    while True:
        user = USERS[index % len(USERS)]
        items = engine.worklist(user)
        if not items:
            break
        engine.claim(items[0].item_id, user)
        claimed[user] += 1
        index += 1
    assert sum(claimed.values()) == ITEMS
    for user in USERS:
        assert engine.worklist(user) == []
    print_table(
        "ORG: items claimed per user (round-robin claimants)",
        ["user", "claimed"],
        [(u, claimed[u]) for u in USERS],
    )
    spread = max(claimed.values()) - min(claimed.values())
    assert spread <= 1  # perfectly balanced under round-robin

    def offer_claim_cycle():
        fresh = build_engine()
        offer_all(fresh, 50)
        for user in USERS:
            for item in fresh.worklist(user)[:5]:
                fresh.claim(item.item_id, user)

    benchmark(offer_claim_cycle)


def claim_backlog_round_robin(engine):
    """Drain every offered item, claiming round-robin across users."""
    claimed = 0
    index = 0
    while True:
        user = USERS[index % len(USERS)]
        items = engine.worklist(user)
        if not items:
            break
        engine.claim(items[0].item_id, user)
        claimed += 1
        index += 1
    return claimed


def test_claim_backlog_throughput(benchmark):
    """Large-N: offer a big backlog, then claim all of it round-robin."""

    def cycle():
        engine = build_engine()
        offer_all(engine, CLAIM_ITEMS)
        return claim_backlog_round_robin(engine)

    claimed = benchmark(cycle)
    assert claimed == CLAIM_ITEMS


def test_worklist_query_cost(benchmark):
    engine = build_engine()
    offer_all(engine)

    def query():
        return sum(len(engine.worklist(user)) for user in USERS)

    total = benchmark(query)
    assert total == ITEMS * len(USERS)


def test_claim_and_execute_throughput(benchmark):
    def run_batch():
        engine = build_engine()
        offer_all(engine, 30)
        done = 0
        for user in USERS:
            for item in list(engine.worklist(user)):
                if item.is_open:
                    engine.claim(item.item_id, user)
                    engine.start_item(item.item_id)
                    done += 1
        return done

    done = benchmark(run_batch)
    assert done == 30
