"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one artefact of the paper (see
DESIGN.md's per-experiment index).  Helpers here build the standard
setups; behavioural assertions run once outside the timed region, so
the timings measure the system, not the checks.
"""

from __future__ import annotations

from repro.tx import AbortScript, SimDatabase
from repro.tx.failures import FailurePolicy
from repro.wfms.engine import Engine
from repro.core.bindings import (
    register_flexible_programs,
    register_saga_programs,
    workflow_flexible_outcome,
    workflow_saga_outcome,
)
from repro.core.flexible import FlexibleSpec, NativeFlexibleExecutor
from repro.core.flexible_translator import translate_flexible
from repro.core.sagas import NativeSagaExecutor, SagaSpec, SagaStep
from repro.core.saga_translator import translate_saga
from repro.workloads.banking import fig3_bindings, fig3_spec
from repro.workloads.generator import saga_bindings


def linear_saga(n: int) -> SagaSpec:
    return SagaSpec("bench", [SagaStep("t%02d" % i) for i in range(1, n + 1)])


def abort_policy_at(spec: SagaSpec, position: int | None) -> dict:
    """Policies making step ``position`` (1-based) abort; None = none."""
    if position is None:
        return {}
    return {spec.steps[position - 1].name: AbortScript([1])}


def run_saga_native(spec: SagaSpec, policies: dict):
    db = SimDatabase()
    actions, comps = saga_bindings(spec, db, policies=dict(policies))
    return NativeSagaExecutor(spec, actions, comps).run(), db


def build_saga_engine(spec: SagaSpec, policies: dict):
    """Translate, bind and register; returns (engine, translation, db)."""
    db = SimDatabase()
    actions, comps = saga_bindings(spec, db, policies=dict(policies))
    translation = translate_saga(spec)
    engine = Engine()
    register_saga_programs(engine, translation, actions, comps)
    engine.register_definition(translation.process)
    return engine, translation, db


def run_saga_workflow(spec: SagaSpec, policies: dict):
    engine, translation, db = build_saga_engine(spec, policies)
    result = engine.run_process(translation.process_name)
    outcome = workflow_saga_outcome(engine, translation, result.instance_id)
    return outcome, db


def run_fig3_native(policies: dict[str, FailurePolicy]):
    db = SimDatabase()
    actions, comps = fig3_bindings(db, dict(policies))
    return NativeFlexibleExecutor(fig3_spec(), actions, comps).run(), db


def build_fig3_engine(policies: dict[str, FailurePolicy]):
    db = SimDatabase()
    actions, comps = fig3_bindings(db, dict(policies))
    translation = translate_flexible(fig3_spec())
    engine = Engine()
    register_flexible_programs(engine, translation, actions, comps)
    engine.register_definition(translation.process)
    return engine, translation, db


def run_fig3_workflow(policies: dict[str, FailurePolicy]):
    engine, translation, db = build_fig3_engine(policies)
    result = engine.run_process(translation.process_name)
    outcome = workflow_flexible_outcome(
        engine, translation, result.instance_id
    )
    return outcome, db


def print_table(title: str, headers: list[str], rows: list[tuple]) -> None:
    """Print a result table (visible with ``pytest -s`` and in the
    EXPERIMENTS.md regeneration script)."""
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    line = "  ".join("%-*s" % (w, h) for w, h in zip(widths, headers))
    print("\n" + title)
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join("%-*s" % (w, str(c)) for w, c in zip(widths, row)))
