"""DIST — distributed workflow over persistent messages (extension,
after Exotica/FMQM [AAE+95]).

Measures remote-subprocess round-trip cost through the message bus and
verifies the crash-safety contract: a worker crash between receiving a
request and acknowledging it neither loses nor duplicates work.
"""

import pytest

from repro.wfms.distributed import run_cluster
from repro.wfms.messaging import MessageBus

from repro.workloads.distributed_demo import (
    configure_requester,
    configure_worker,
    make_requester,
    make_worker,
)

from _helpers import print_table


def test_remote_round_trip(benchmark):
    bus = MessageBus()
    worker = make_worker(bus)
    front = make_requester(bus)

    def one_call():
        iid = front.engine.start_process("Front", {"N": 21})
        run_cluster([front, worker], watch=[(front, iid)])
        return front.engine.output(iid)["Result"]

    result = benchmark(one_call)
    assert result == 43


def test_throughput_many_requests(benchmark):
    def batch():
        bus = MessageBus()
        worker = make_worker(bus)
        front = make_requester(bus)
        ids = [
            front.engine.start_process("Front", {"N": n})
            for n in range(10)
        ]
        run_cluster([front, worker], watch=[(front, i) for i in ids])
        return [front.engine.output(i)["Result"] for i in ids]

    results = benchmark(batch)
    assert results == [n * 2 + 1 for n in range(10)]


def test_crash_safety_summary(benchmark, tmp_path):
    rows = []
    # requester crash
    bus = MessageBus()
    worker = make_worker(bus)
    front = make_requester(bus, journal_path=str(tmp_path / "f.journal"))
    iid = front.engine.start_process("Front", {"N": 7})
    front.engine.step()
    front.crash()
    front.rebuild(configure_requester)
    rounds = run_cluster([front, worker], watch=[(front, iid)])
    rows.append(
        ("requester crash mid-call", front.engine.output(iid)["Result"], rounds)
    )
    # worker crash with unacked request
    bus2 = MessageBus()
    worker2 = make_worker(bus2, journal_path=str(tmp_path / "w.journal"))
    front2 = make_requester(bus2)
    iid2 = front2.engine.start_process("Front", {"N": 4})
    front2.engine.step()
    bus2.receive("node:worker")  # in flight, never acked
    worker2.crash()
    worker2.rebuild(configure_worker)
    rounds2 = run_cluster([front2, worker2], watch=[(front2, iid2)])
    rows.append(
        ("worker crash, unacked request", front2.engine.output(iid2)["Result"], rounds2)
    )
    print_table(
        "DIST: crash safety (result must be exact, no loss/duplication)",
        ["scenario", "result", "rounds to converge"],
        rows,
    )
    assert rows[0][1] == 15 and rows[1][1] == 9

    bus3 = MessageBus()
    worker3 = make_worker(bus3)
    front3 = make_requester(bus3)

    def ok_path():
        iid3 = front3.engine.start_process("Front", {"N": 1})
        run_cluster([front3, worker3], watch=[(front3, iid3)])

    benchmark(ok_path)
