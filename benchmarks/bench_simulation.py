"""SIM — process simulation (§3.3 lists *simulation* among workflow
features transaction models lack).

Uses the simulator to answer the designer's questions about the FIG1
order process before running anything: expected makespan, tail
latency, and how completion rate degrades with per-step failure
probability — then cross-checks a deterministic prediction against an
actual engine execution.
"""

import pytest

from repro.wfms.engine import Engine
from repro.wfms.simulate import ActivityProfile, simulate
from repro.workloads.orders import (
    build_order_process,
    order_organization,
    register_order_programs,
)

from _helpers import print_table

PROFILES = {
    "Approve": ActivityProfile(duration=5.0),
    "CheckInventory": ActivityProfile(duration=2.0),
    "CheckCredit": ActivityProfile(duration=3.0),
    "ShipOrder": ActivityProfile(duration=8.0),
    "Bill": ActivityProfile(duration=1.0),
    "Reject": ActivityProfile(duration=1.0),
}

#: Deterministic if-then-else routing of a 100-unit approved order:
#: the order is approved, in stock, credit-worthy, shipped normally.
BRANCHES = {
    ("Approve", "CheckInventory"): 1.0,
    ("Approve", "CheckCredit"): 1.0,
    ("Approve", "Reject"): 0.0,
    ("CheckInventory", "ShipOrder"): 1.0,
    ("CheckCredit", "ShipOrder"): 1.0,
    ("ShipOrder", "Bill"): 1.0,
    ("CheckCredit", "Bill"): 0.0,
}


def test_makespan_prediction(benchmark):
    definition = build_order_process(manual_approval=False)
    report = simulate(definition, PROFILES, runs=200, seed=1, branch_probabilities=BRANCHES)
    # Deterministic critical path: Approve(5) + max(Inv 2, Credit 3)
    # + Ship(8) + Bill(1) = 17 (Reject is dead-path, costs nothing).
    assert report.mean_makespan == pytest.approx(17.0)
    rows = [
        ("mean", "%.1f" % report.mean_makespan),
        ("p50", "%.1f" % report.percentile_makespan(0.5)),
        ("p95", "%.1f" % report.percentile_makespan(0.95)),
        ("completion rate", "%.2f" % report.completion_rate),
    ]
    print_table("SIM: order process, reliable steps", ["metric", "value"], rows)
    benchmark(lambda: simulate(definition, PROFILES, runs=100, seed=1, branch_probabilities=BRANCHES))


def test_completion_rate_vs_failure(benchmark):
    definition = build_order_process(manual_approval=False)
    rows = []
    rates = []
    for p_fail in (0.0, 0.05, 0.1, 0.2):
        profiles = dict(PROFILES)
        profiles["ShipOrder"] = ActivityProfile(
            duration=8.0, success_probability=1.0 - p_fail
        )
        report = simulate(definition, profiles, runs=400, seed=3, branch_probabilities=BRANCHES)
        rows.append(
            (p_fail, "%.3f" % report.completion_rate,
             "%.1f" % report.mean_makespan)
        )
        rates.append(report.completion_rate)
    print_table(
        "SIM: completion rate vs shipping failure probability",
        ["p(ship fails)", "completion rate", "mean makespan"],
        rows,
    )
    assert rates == sorted(rates, reverse=True)  # monotone degradation

    definition2 = build_order_process(manual_approval=False)
    benchmark(lambda: simulate(definition2, PROFILES, runs=50, seed=3))


def test_simulation_agrees_with_engine_on_structure(benchmark):
    """The simulator's executed/dead split matches a real run."""
    definition = build_order_process(manual_approval=False)
    report = simulate(definition, PROFILES, runs=1, seed=0, branch_probabilities=BRANCHES)
    engine = Engine(organization=order_organization())
    register_order_programs(engine)
    engine.register_definition(definition)
    result = engine.run_process(
        "OrderFulfillment", {"Amount": 100, "Customer": "x"}, starter="sue"
    )
    executed_real = len(result.execution_order)
    dead_real = len(result.dead_activities)
    run = report.runs[0]
    assert run.executed == executed_real
    assert run.dead == dead_real
    benchmark(lambda: simulate(definition, PROFILES, runs=10, seed=0, branch_probabilities=BRANCHES))
