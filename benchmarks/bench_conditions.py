"""COND — condition evaluation throughput: compiled closures vs the
tree-walk interpreter.

The navigator evaluates a transition/exit condition on every activity
termination; this benchmark isolates that cost.  The closure-compiled
form (``Condition.compiled``) lowers the AST once, so per-evaluation
work is a chain of specialised calls instead of per-node dispatch.
"""

import time

import pytest

from repro.wfms.conditions import parse_condition

from _helpers import print_table

#: Expressions of increasing size, shaped like real transition/exit
#: conditions (return codes, state members, a little arithmetic).
EXPRESSIONS = [
    ("rc_check", "RC = 0"),
    ("guard", "RC = 0 AND State_2 = 1"),
    (
        "routing",
        "(RC = 0 AND Order.Total > 100) OR (Priority >= 2 AND NOT Expedite = 0)",
    ),
    (
        "arith",
        "Order.Total * 1.21 + Shipping - Discount > 250 AND RC <> 4",
    ),
]

VALUES = {
    "_RC": 0,
    "State_2": 1,
    "Order.Total": 240.0,
    "Priority": 3,
    "Expedite": 1,
    "Shipping": 12.5,
    "Discount": 30.0,
}

EVALS = 20_000


def run_interpreted(condition, resolver, n=EVALS):
    evaluate = condition.evaluate
    for __ in range(n):
        evaluate(resolver)


def run_compiled(condition, resolver, n=EVALS):
    evaluate = condition.compiled
    for __ in range(n):
        evaluate(resolver)


def measure(fn, condition, resolver) -> float:
    """evaluations/second, best of 3."""
    best = 0.0
    for __ in range(3):
        start = time.perf_counter()
        fn(condition, resolver)
        elapsed = time.perf_counter() - start
        best = max(best, EVALS / elapsed)
    return best


@pytest.mark.parametrize("label,source", EXPRESSIONS)
def test_interpreted_evaluation(benchmark, label, source):
    condition = parse_condition(source)
    resolver = VALUES.get
    assert condition.evaluate(resolver) in (True, False)
    benchmark(lambda: condition.evaluate(resolver))


@pytest.mark.parametrize("label,source", EXPRESSIONS)
def test_compiled_evaluation(benchmark, label, source):
    condition = parse_condition(source)
    compiled = condition.compiled
    assert compiled(VALUES.get) == condition.evaluate(VALUES.get)
    resolver = VALUES.get
    benchmark(lambda: compiled(resolver))


def test_compiled_vs_interpreted_table(benchmark):
    rows = []
    for label, source in EXPRESSIONS:
        condition = parse_condition(source)
        resolver = VALUES.get
        interpreted = measure(run_interpreted, condition, resolver)
        compiled = measure(run_compiled, condition, resolver)
        rows.append(
            (
                label,
                "%.0f" % interpreted,
                "%.0f" % compiled,
                "%.2fx" % (compiled / interpreted),
            )
        )
    print_table(
        "COND: evaluations/sec, interpreter vs compiled closures",
        ["expression", "interpreted/s", "compiled/s", "speedup"],
        rows,
    )
    condition = parse_condition(EXPRESSIONS[2][1])
    compiled = condition.compiled
    resolver = VALUES.get
    benchmark(lambda: compiled(resolver))
