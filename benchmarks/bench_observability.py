"""OBS — cost of the observability subsystem.

Two questions, one per test group:

* **Disabled** (the default): how close is an engine whose hot paths
  carry the instrumentation hooks to the pre-observability engine?
  The design goal is "one attribute read per guarded block" — the
  disabled throughput must stay within measurement noise of the
  baseline; ``compare.py`` gates exactly this number.
* **Enabled**: what does full instrumentation (metrics + spans +
  hooks) cost when switched on?  This is informational — enabled
  observability is allowed to cost — but the table keeps the factor
  honest.
"""

import time

import pytest

from repro.obs import NavigatorDispatched, Observability
from repro.wfms.engine import Engine
from repro.workloads.generator import DAG_PROGRAM, random_dag_process

from _helpers import print_table

#: Shape of the measured DAG workload.
SHAPE = (8, 8)
RUNS = 30


def engine_for(definition, observability=None):
    engine = Engine(observability=observability)
    engine.register_program(DAG_PROGRAM, lambda ctx: 0)
    engine.register_definition(definition)
    return engine


def observability_throughput(observability, runs=RUNS, subscribe=False):
    """activities/sec on the standard DAG with the given obs setting."""
    layers, width = SHAPE
    definition = random_dag_process(layers=layers, width=width, seed=42)
    engine = engine_for(definition, observability)
    if subscribe:
        engine.obs.hooks.subscribe(
            NavigatorDispatched, lambda event: None
        )
    engine.run_process(definition.name)  # warmup
    start = time.perf_counter()
    for __ in range(runs):
        assert engine.run_process(definition.name).finished
    elapsed = time.perf_counter() - start
    return layers * width * runs / elapsed


def test_overhead_table():
    """Disabled vs enabled throughput, with the overhead factors."""
    rows = []
    disabled = observability_throughput(None)
    variants = [
        ("disabled (default)", disabled),
        ("enabled, no subscribers", observability_throughput(True)),
        (
            "enabled + hook subscriber",
            observability_throughput(Observability(), subscribe=True),
        ),
    ]
    for name, value in variants:
        rows.append(
            (
                name,
                "%.0f" % value,
                "%.2fx" % (disabled / value),
            )
        )
    print_table(
        "OBS: observability overhead (8x8 DAG, activities/sec)",
        ["configuration", "activities/sec", "slowdown vs disabled"],
        rows,
    )
    # The enabled path records ~6 instruments + 2 spans per activity;
    # a factor beyond ~10x would mean instrumentation left the
    # constant-work regime (e.g. an accidental scan per event).
    enabled = variants[1][1]
    assert disabled / enabled < 10.0


def test_disabled_throughput(benchmark):
    layers, width = SHAPE
    definition = random_dag_process(layers=layers, width=width, seed=42)
    engine = engine_for(definition)
    result = benchmark(lambda: engine.run_process(definition.name))
    assert result.finished


def test_enabled_throughput(benchmark):
    layers, width = SHAPE
    definition = random_dag_process(layers=layers, width=width, seed=42)
    engine = engine_for(definition, observability=True)
    result = benchmark(lambda: engine.run_process(definition.name))
    assert result.finished
    assert engine.obs.tracer.spans(name="process %s" % definition.name)


def test_null_registry_is_cheap():
    """The null instruments must stay allocation-free no-ops."""
    from repro.obs.metrics import NULL_INSTRUMENT, NullRegistry

    registry = NullRegistry()
    counter = registry.counter("x", "")
    assert counter is NULL_INSTRUMENT
    assert counter.labels("a", "b") is counter
    start = time.perf_counter()
    for __ in range(100_000):
        counter.inc()
    elapsed = time.perf_counter() - start
    # 100k no-op increments in well under a second on any host.
    assert elapsed < 1.0
