"""SWEEP-LEN — saga length sweep (extension experiment).

Measures how translation and execution cost grow with saga length, and
checks workflow/native parity at every length and abort position.
Expected shape: both grow linearly in n; the workflow implementation
pays a constant factor over the native executor (it is a general
engine, not a bespoke runtime) while preserving behaviour exactly.
"""

import pytest

from repro.core.saga_translator import translate_saga
from repro.core.sagas import verify_saga_guarantee

from _helpers import (
    abort_policy_at,
    linear_saga,
    print_table,
    run_saga_native,
    run_saga_workflow,
)

LENGTHS = [2, 4, 8, 16, 32]


@pytest.mark.parametrize("n", LENGTHS)
def test_translate_cost_vs_length(benchmark, n):
    spec = linear_saga(n)
    translation = benchmark(lambda: translate_saga(spec))
    assert len(translation.forward_block.activities) == n


@pytest.mark.parametrize("n", LENGTHS)
@pytest.mark.parametrize("abort", ["none", "mid", "last"])
def test_workflow_execution_vs_length(benchmark, n, abort):
    spec = linear_saga(n)
    position = {"none": None, "mid": max(1, n // 2), "last": n}[abort]
    policies = abort_policy_at(spec, position)
    outcome, __ = benchmark(lambda: run_saga_workflow(spec, policies))
    assert verify_saga_guarantee(spec, outcome.executed, outcome.compensated)


@pytest.mark.parametrize("n", LENGTHS)
def test_native_execution_vs_length(benchmark, n):
    spec = linear_saga(n)
    outcome, __ = benchmark(lambda: run_saga_native(spec, {}))
    assert outcome.committed


def test_parity_table_across_lengths(benchmark):
    rows = []
    for n in LENGTHS:
        spec = linear_saga(n)
        for abort in (None, max(1, n // 2), n):
            policies = abort_policy_at(spec, abort)
            native, native_db = run_saga_native(spec, policies)
            workflow, wf_db = run_saga_workflow(spec, policies)
            agree = (
                native.executed == workflow.executed
                and native.compensated == workflow.compensated
                and native_db.snapshot() == wf_db.snapshot()
            )
            assert agree, (n, abort)
            rows.append(
                (
                    n,
                    abort if abort is not None else "-",
                    len(workflow.executed),
                    len(workflow.compensated),
                    "yes",
                )
            )
    print_table(
        "SWEEP-LEN: native vs workflow parity across lengths",
        ["n", "abort at", "executed", "compensated", "parity"],
        rows,
    )
    spec = linear_saga(8)
    benchmark(lambda: run_saga_workflow(spec, {}))
