"""REC — forward recovery (§3.3).

Crashes an engine after k of N activities, recovers into a fresh
engine, and measures the replay cost.  Expected shape: replay time and
journal size grow linearly with completed work; completed activities
are never re-executed; the pending activity is rescheduled from the
beginning (the paper's rule for non-failure-atomic activities).
"""

import os

import pytest

from repro import Activity, Engine, ProcessDefinition

from _helpers import print_table

N = 20


def build_engine(journal_path, counters):
    engine = Engine(journal_path=journal_path)

    def make(name):
        def program(ctx):
            counters[name] = counters.get(name, 0) + 1
            return 0

        return program

    defn = ProcessDefinition("Chain")
    previous = None
    for i in range(N):
        name = "a%02d" % i
        engine.register_program("p%s" % name, make(name))
        defn.add_activity(Activity(name, program="p%s" % name))
        if previous:
            defn.connect(previous, name, "RC = 0")
        previous = name
    engine.register_definition(defn)
    return engine


@pytest.mark.parametrize("completed", [1, 5, 10, 19])
def test_recovery_cost_vs_completed_work(benchmark, tmp_path, completed):
    counters: dict[str, int] = {}
    journal_path = str(tmp_path / "journal.jsonl")
    engine = build_engine(journal_path, counters)
    iid = engine.start_process("Chain")
    for __ in range(completed):
        engine.step()
    engine.crash()
    pre_crash = dict(counters)

    def recover_once():
        fresh = build_engine(journal_path, dict(pre_crash))
        replayed = fresh.recover()
        fresh.close()
        return replayed

    replayed = benchmark(recover_once)
    assert replayed == completed

    # Behavioural check, once: resume and finish without re-execution.
    final = build_engine(journal_path, counters)
    final.recover()
    final.run()
    assert final.instance_state(iid) == "finished"
    assert all(count == 1 for count in counters.values())


def test_journal_grows_linearly(tmp_path, benchmark):
    rows = []
    for completed in (1, 5, 10, 19):
        counters: dict[str, int] = {}
        journal_path = str(tmp_path / ("j%d.jsonl" % completed))
        engine = build_engine(journal_path, counters)
        engine.start_process("Chain")
        for __ in range(completed):
            engine.step()
        engine.close()
        size = os.path.getsize(journal_path)
        records = 1 + completed  # process start + completions
        rows.append((completed, records, size))
    print_table(
        "REC: journal size vs completed activities (N=20 chain)",
        ["completed", "records", "bytes"],
        rows,
    )
    sizes = [row[2] for row in rows]
    assert sizes == sorted(sizes)  # monotone growth
    # Roughly linear: the largest is within 25x the smallest for 19x work.
    assert sizes[-1] < sizes[0] * 25

    counters: dict[str, int] = {}
    journal_path = str(tmp_path / "bench.jsonl")

    def run_full_with_journal():
        engine = build_engine(journal_path, counters)
        iid = engine.start_process("Chain")
        engine.run()
        engine.close()
        os.unlink(journal_path)
        return iid

    benchmark(run_full_with_journal)


def test_journal_overhead(benchmark, tmp_path):
    """Cost of running *with* a journal (fsync per decision)."""
    counters: dict[str, int] = {}
    journal_path = str(tmp_path / "overhead.jsonl")

    def run_once():
        engine = build_engine(journal_path, counters)
        engine.start_process("Chain")
        engine.run()
        engine.close()
        os.unlink(journal_path)

    benchmark(run_once)


def test_crash_mid_activity_reschedules_from_beginning(benchmark, tmp_path):
    """§3.3: "the activity will be rescheduled to be executed from the
    beginning" when the WFMS was not notified of completion."""
    journal_path = str(tmp_path / "midcrash.jsonl")
    counters: dict[str, int] = {}
    engine = build_engine(journal_path, counters)
    iid = engine.start_process("Chain")
    engine.step()  # a00 completes and is journaled
    # Simulate the crash *between* program completion and journaling by
    # crashing now: a01 never ran, a00 is durable.
    engine.crash()

    fresh = build_engine(journal_path, counters)
    fresh.recover()
    fresh.run()
    assert fresh.instance_state(iid) == "finished"
    assert counters["a00"] == 1   # not re-executed
    assert counters["a01"] == 1   # executed exactly once, post-recovery

    def recover_only():
        engine2 = build_engine(journal_path, dict(counters))
        engine2.recover()
        engine2.close()

    benchmark(recover_only)
