"""FIG4 — Figure 3's flexible transaction *as a workflow process*
(the Figure 4 construction), behaviourally identical to FIG3's native
runs and structurally matching the figure.
"""

import pytest

from repro.wfms.model import ActivityKind
from repro.core.flexible_translator import translate_flexible
from repro.workloads.banking import fig3_spec

from _helpers import print_table, run_fig3_native, run_fig3_workflow
from bench_fig3_flexible_model import SCENARIOS


def test_fig4_structure(benchmark):
    """The translated process has Figure 4's shape."""
    translation = translate_flexible(fig3_spec())
    process = translation.process
    member_activities = [
        name for name in process.activities if name.startswith("t")
    ]
    comp_blocks = [
        name
        for name, a in process.activities.items()
        if a.kind is ActivityKind.BLOCK
    ]
    assert sorted(member_activities) == [
        "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8"
    ]
    assert comp_blocks  # failure handlers present
    print_table(
        "FIG4: translated process inventory",
        ["piece", "count", "names"],
        [
            ("member activities", len(member_activities),
             ",".join(sorted(member_activities))),
            ("compensation blocks", len(comp_blocks), ",".join(comp_blocks)),
            ("control connectors", len(process.control_connectors), ""),
            ("data connectors", len(process.data_connectors), ""),
        ],
    )
    benchmark(lambda: translate_flexible(fig3_spec()))


def test_fig4_matches_fig3_on_every_branch(benchmark):
    rows = []
    for label, policies, committed, path, compensated in SCENARIOS:
        native, native_db = run_fig3_native(dict(policies))
        workflow, wf_db = run_fig3_workflow(dict(policies))
        assert workflow.committed == native.committed == committed, label
        assert workflow.committed_path == native.committed_path == path
        assert workflow.compensated == native.compensated == compensated
        assert wf_db.snapshot() == native_db.snapshot(), label
        rows.append(
            (
                label,
                "commit" if workflow.committed else "abort",
                "->".join(workflow.committed_path) or "-",
                ",".join(workflow.compensated) or "-",
                "yes",
            )
        )
    print_table(
        "FIG4: workflow implementation vs native model (parity)",
        ["scenario", "outcome", "path", "compensated", "states match"],
        rows,
    )

    def preferred():
        outcome, __ = run_fig3_workflow({})
        return outcome

    outcome = benchmark(preferred)
    assert outcome.committed


@pytest.mark.parametrize(
    "label,policies",
    [(s[0], s[1]) for s in SCENARIOS],
    ids=[s[0].replace(" ", "_") for s in SCENARIOS],
)
def test_fig4_scenario_cost(benchmark, label, policies):
    outcome, __ = benchmark(lambda: run_fig3_workflow(dict(policies)))
    assert outcome is not None
