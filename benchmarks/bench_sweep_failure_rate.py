"""SWEEP-FAIL — failure-probability sweep (extension experiment).

Drives generated flexible transactions under increasing per-attempt
abort probability and reports the distribution of outcomes (preferred
path / fallback path / aborted) plus native/workflow agreement per
seed.  Expected shape: as p grows, commits shift from the preferred
path to the fallback and finally to aborts — while the two
implementations agree on *every* seed.
"""

import pytest

from repro.tx import SimDatabase
from repro.wfms.engine import Engine
from repro.core.bindings import (
    register_flexible_programs,
    workflow_flexible_outcome,
)
from repro.core.flexible import NativeFlexibleExecutor
from repro.core.flexible_translator import translate_flexible
from repro.workloads.generator import flexible_bindings, random_flexible_spec

from _helpers import print_table

PROBABILITIES = [0.0, 0.1, 0.3, 0.5]
SEEDS = range(20)


def run_native(spec, p, seed):
    db = SimDatabase()
    actions, comps = flexible_bindings(
        spec, db, abort_probability=p, seed=seed
    )
    return NativeFlexibleExecutor(spec, actions, comps).run(), db


def run_workflow(spec, p, seed):
    db = SimDatabase()
    actions, comps = flexible_bindings(
        spec, db, abort_probability=p, seed=seed
    )
    translation = translate_flexible(spec)
    engine = Engine()
    register_flexible_programs(engine, translation, actions, comps)
    engine.register_definition(translation.process)
    result = engine.run_process(translation.process_name)
    return (
        workflow_flexible_outcome(engine, translation, result.instance_id),
        db,
    )


def classify(spec, outcome):
    if not outcome.committed:
        return "aborted"
    if outcome.committed_path == spec.paths[0]:
        return "preferred"
    return "fallback"


def test_outcome_distribution_vs_failure_rate(benchmark):
    rows = []
    for p in PROBABILITIES:
        counts = {"preferred": 0, "fallback": 0, "aborted": 0}
        agreement = 0
        for seed in SEEDS:
            spec = random_flexible_spec(branches=2, seed=seed)
            native, native_db = run_native(spec, p, seed)
            workflow, wf_db = run_workflow(spec, p, seed)
            assert native.committed == workflow.committed, (p, seed)
            assert native.committed_path == workflow.committed_path
            assert native_db.snapshot() == wf_db.snapshot()
            agreement += 1
            counts[classify(spec, workflow)] += 1
        rows.append(
            (
                p,
                counts["preferred"],
                counts["fallback"],
                counts["aborted"],
                "%d/%d" % (agreement, len(SEEDS)),
            )
        )
    print_table(
        "SWEEP-FAIL: outcome distribution vs abort probability "
        "(20 seeds each)",
        ["p(abort)", "preferred path", "fallback path", "aborted", "parity"],
        rows,
    )
    # Shape: commits monotonically leave the preferred path as p grows.
    preferred = [row[1] for row in rows]
    assert preferred[0] == len(list(SEEDS))
    assert preferred[-1] <= preferred[0]

    spec = random_flexible_spec(branches=2, seed=0)
    benchmark(lambda: run_workflow(spec, 0.3, seed=3))


@pytest.mark.parametrize("p", PROBABILITIES)
def test_workflow_cost_vs_failure_rate(benchmark, p):
    spec = random_flexible_spec(branches=2, seed=1)
    outcome, __ = benchmark(lambda: run_workflow(spec, p, seed=7))
    assert outcome is not None
