"""JRNL — journal append throughput under the sync policies.

``always`` pays one fsync per record (the §3.3 per-decision durability
point); ``batch`` group-commits, amortising the fsync over
``batch_size`` records; ``never`` leaves durability to the OS.  The
spread between the first two is the price of the strict guarantee —
and what an engine relaxing it with ``journal_sync="batch"`` buys.
"""

import time

import pytest

from repro.wfms.journal import Journal

from _helpers import print_table

APPENDS = 2_000
BATCH_SIZE = 64


def sample_record(n: int) -> dict:
    return {
        "type": "activity_completed",
        "instance": "pi-%04d" % (n % 97),
        "activity": "a_%d" % (n % 9),
        "attempt": 1,
        "output": {"_RC": 0, "Total": 125.5},
        "forced": False,
        "user": "",
    }


RECORDS = [sample_record(n) for n in range(APPENDS)]


def append_all(journal: Journal) -> None:
    append = journal.append
    for record in RECORDS:
        append(record)
    journal.flush()


def journal_for(tmp_path, sync: str, index: int) -> Journal:
    return Journal(
        tmp_path / ("j_%s_%d.log" % (sync, index)),
        sync=sync,
        batch_size=BATCH_SIZE,
        batch_interval=3600.0,
    )


def measure(tmp_path, sync: str) -> float:
    """records/second appended (including the final flush), best of 3."""
    best = 0.0
    for attempt in range(3):
        journal = journal_for(tmp_path, sync, attempt)
        start = time.perf_counter()
        append_all(journal)
        elapsed = time.perf_counter() - start
        journal.close()
        best = max(best, APPENDS / elapsed)
    return best


@pytest.mark.parametrize("sync", ["always", "batch", "never"])
def test_append_throughput(benchmark, tmp_path, sync):
    journals = iter(range(1_000_000))

    def run():
        journal = journal_for(tmp_path, sync, next(journals))
        append_all(journal)
        journal.close()

    benchmark(run)


def test_sync_policy_table(benchmark, tmp_path):
    rows = []
    always = measure(tmp_path, "always")
    for sync in ("always", "batch", "never"):
        throughput = measure(tmp_path, sync) if sync != "always" else always
        rows.append(
            (sync, "%.0f" % throughput, "%.1fx" % (throughput / always))
        )
    print_table(
        "JRNL: journal appends/sec by sync policy (%d records, batch=%d)"
        % (APPENDS, BATCH_SIZE),
        ["sync", "appends/sec", "vs always"],
        rows,
    )
    journal = journal_for(tmp_path, "batch", 999)
    benchmark(lambda: journal.append(sample_record(0)))
    journal.close()
