"""FIG1 — the Figure 1 metamodel, exercised end to end.

Regenerates the paper's Figure 1 as behaviour: one process using every
metamodel element (program/block activities, control and data
connectors, AND/OR joins, exit-condition loop, dead-path elimination,
containers, organization, worklists) runs to completion, and the
benchmark reports how fast the navigator drives it.
"""

import pytest

from repro.wfms.engine import Engine
from repro.workloads.orders import (
    build_order_process,
    order_organization,
    register_order_programs,
)

from _helpers import print_table


def fresh_engine(manual=False):
    engine = Engine(organization=order_organization())
    register_order_programs(engine, pack_attempts=2)
    engine.register_definition(build_order_process(manual_approval=manual))
    return engine


def test_metamodel_elements_all_function(benchmark):
    """Every Figure 1 element behaves; timing covers one full order."""
    # Behavioural checks, once:
    engine = fresh_engine()
    result = engine.run_process(
        "OrderFulfillment", {"Amount": 400, "Customer": "acme"}, starter="sue"
    )
    assert result.finished
    states = engine.activity_states(result.instance_id)
    assert states["Reject"] == "dead"           # dead-path elimination
    assert result.output["Billed"] == 400       # data connectors
    child = [
        i for i in engine.navigator.instances()
        if i.parent_instance == result.instance_id
    ][0]
    assert engine.audit.attempts(child.instance_id, "Pack") == 2  # loop

    rejected = engine.run_process(
        "OrderFulfillment", {"Amount": 9000, "Customer": "acme"}, starter="sue"
    )
    assert rejected.output["Rejected"] == 1     # the other branch

    print_table(
        "FIG1: metamodel elements exercised by OrderFulfillment",
        ["element", "evidence"],
        [
            ("program activity", "Approve/CheckInventory/... executed"),
            ("block activity", "ShipOrder ran subprocess Shipping"),
            ("control connectors", "Approved=1 gated the checks"),
            ("data connectors", "Billed=400 reached the output container"),
            ("AND-join", "ShipOrder waited for both checks"),
            ("OR-join", "Bill fired from whichever branch ran"),
            ("exit-condition loop", "Pack ran 2 attempts"),
            ("dead-path elimination", "Reject marked dead"),
        ],
    )

    # Timed region: a fresh order through the whole process.
    engine2 = fresh_engine()

    def run_order():
        return engine2.run_process(
            "OrderFulfillment", {"Amount": 400, "Customer": "acme"},
            starter="sue",
        )

    outcome = benchmark(run_order)
    assert outcome.finished


def test_manual_worklist_path(benchmark):
    """The §3.3 user path: offer -> claim -> execute."""

    def run_manual():
        engine = fresh_engine(manual=True)
        iid = engine.start_process(
            "OrderFulfillment", {"Amount": 100, "Customer": "acme"},
            starter="sue",
        )
        engine.run()
        item = engine.worklist("al")[0]
        engine.claim(item.item_id, "al")
        engine.start_item(item.item_id)
        return engine.instance_state(iid)

    state = benchmark(run_manual)
    assert state == "finished"
