"""FIG2 — the saga → workflow translation (Figure 2).

Regenerates Figure 2 by construction and verifies the saga guarantee
`T1..Tn or T1..Tj;Cj..C1` at every abort position for the paper's
3-step saga and a sweep of lengths; timings cover translation and
execution of the translated process.
"""

import pytest

from repro.core.sagas import verify_saga_guarantee
from repro.core.saga_translator import translate_saga

from _helpers import (
    abort_policy_at,
    build_saga_engine,
    linear_saga,
    print_table,
    run_saga_workflow,
)


def test_fig2_guarantee_all_abort_positions(benchmark):
    """The paper's n=3 saga: exact behaviour at j = 0..3."""
    spec = linear_saga(3)
    rows = []
    for position in [None, 1, 2, 3]:
        outcome, db = run_saga_workflow(spec, abort_policy_at(spec, position))
        assert verify_saga_guarantee(spec, outcome.executed, outcome.compensated)
        rows.append(
            (
                "none" if position is None else "T%d" % position,
                "committed" if outcome.committed else "compensated",
                "->".join(outcome.executed) or "-",
                "->".join("C_" + c for c in outcome.compensated) or "-",
            )
        )
    print_table(
        "FIG2: translated 3-step saga under every abort position",
        ["abort at", "outcome", "executed", "compensations"],
        rows,
    )

    def run_commit_case():
        outcome, __ = run_saga_workflow(spec, {})
        return outcome

    outcome = benchmark(run_commit_case)
    assert outcome.committed


@pytest.mark.parametrize("n", [2, 4, 8])
def test_translation_cost_grows_linearly(benchmark, n):
    spec = linear_saga(n)
    translation = benchmark(lambda: translate_saga(spec))
    # Structure size is linear in n: n forward + n comp + NOP + 2 blocks.
    assert len(translation.forward_block.activities) == n
    assert len(translation.compensation_block.activities) == n + 1


@pytest.mark.parametrize("abort_position", [None, 1, "mid", "last"])
def test_execution_cost_per_abort_position(benchmark, abort_position):
    n = 6
    spec = linear_saga(n)
    position = {
        None: None, 1: 1, "mid": n // 2, "last": n
    }[abort_position]
    policies = abort_policy_at(spec, position)

    def run():
        outcome, __ = run_saga_workflow(spec, policies)
        return outcome

    outcome = benchmark(run)
    assert verify_saga_guarantee(spec, outcome.executed, outcome.compensated)


def test_compensation_count_equals_executed_count(benchmark):
    """Shape check: at abort position j, exactly j-1 steps executed and
    j-1 compensations ran, for every j (the paper's invariant)."""
    n = 8
    spec = linear_saga(n)
    rows = []
    for j in range(1, n + 1):
        outcome, __ = run_saga_workflow(spec, abort_policy_at(spec, j))
        assert len(outcome.executed) == j - 1
        assert len(outcome.compensated) == j - 1
        rows.append((j, len(outcome.executed), len(outcome.compensated)))
    print_table(
        "FIG2: executed vs compensated per abort position (n=8)",
        ["abort at", "steps executed", "compensations"],
        rows,
    )

    def full_sweep():
        for j in range(1, n + 1):
            run_saga_workflow(spec, abort_policy_at(spec, j))

    benchmark(full_sweep)
