"""Performance gate over the scheduling-core benchmarks.

Measures the large-N throughput scenarios of
:mod:`bench_engine_throughput` and :mod:`bench_worklist` and compares
them against the committed ``BENCH_baseline.json`` snapshot; exits
non-zero if any metric regresses more than the tolerance (default
20%), so a PR that quietly re-introduces an O(n) scan in the
scheduler or worklists fails loudly.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/compare.py             # gate
    PYTHONPATH=src python benchmarks/compare.py --update    # re-snapshot
    PYTHONPATH=src python benchmarks/compare.py --filter engine.sharded
                                             # gate one metric family

Timings are best-of-``REPEATS`` wall-clock throughput, which is noisy
across hosts — the snapshot is only meaningful against itself, hence
the generous tolerance.  ``--update`` re-measures on the current host
and rewrites the snapshot.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(
    0,
    os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    ),
)

BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_baseline.json",
)
DEFAULT_TOLERANCE = 0.20
REPEATS = 5


def _best_throughput(units: int, run, setup) -> float:
    """Best observed units/second over REPEATS runs (after one warmup)."""
    best = 0.0
    run(setup())  # warmup
    for __ in range(REPEATS):
        state = setup()
        start = time.perf_counter()
        run(state)
        elapsed = time.perf_counter() - start
        best = max(best, units / elapsed)
    return best


def measure_engine_large_dag() -> float:
    """activities/sec navigating one wide-and-deep (16x16) DAG."""
    from bench_engine_throughput import engine_for
    from repro.workloads.generator import random_dag_process

    layers, width = 16, 16
    definition = random_dag_process(layers=layers, width=width, seed=42)

    def setup():
        return engine_for(definition)

    def run(engine):
        assert engine.run_process(definition.name).finished

    return _best_throughput(layers * width, run, setup)


def measure_engine_concurrent() -> float:
    """activities/sec across the large-N concurrent-instance batch."""
    from bench_engine_throughput import (
        CONCURRENT_INSTANCES,
        CONCURRENT_SHAPE,
        concurrent_batch_setup,
        run_concurrent_batch,
    )

    layers, width = CONCURRENT_SHAPE
    units = layers * width * CONCURRENT_INSTANCES

    def setup():
        engine, definition = concurrent_batch_setup()
        return engine, definition

    def run(state):
        engine, definition = state
        run_concurrent_batch(engine, definition)

    return _best_throughput(units, run, setup)


def measure_worklist_offer() -> float:
    """work items offered (process starts) per second."""
    from bench_worklist import CLAIM_ITEMS, build_engine, offer_all

    def setup():
        return build_engine()

    def run(engine):
        offer_all(engine, CLAIM_ITEMS)

    return _best_throughput(CLAIM_ITEMS, run, setup)


def measure_worklist_claim() -> float:
    """claims/sec draining a large offered backlog round-robin."""
    from bench_worklist import (
        CLAIM_ITEMS,
        build_engine,
        claim_backlog_round_robin,
        offer_all,
    )

    def setup():
        engine = build_engine()
        offer_all(engine, CLAIM_ITEMS)
        return engine

    def run(engine):
        assert claim_backlog_round_robin(engine) == CLAIM_ITEMS

    return _best_throughput(CLAIM_ITEMS, run, setup)


def measure_conditions_compiled() -> float:
    """condition evaluations/sec through the compiled-closure path."""
    from bench_conditions import EVALS, EXPRESSIONS, VALUES, run_compiled
    from repro.wfms.conditions import parse_condition

    conditions = [parse_condition(source) for __, source in EXPRESSIONS]
    resolver = VALUES.get

    def setup():
        return conditions

    def run(state):
        for condition in state:
            run_compiled(condition, resolver)

    return _best_throughput(EVALS * len(conditions), run, setup)


def _measure_journal(sync: str) -> float:
    import shutil
    import tempfile
    from pathlib import Path

    from bench_journal import APPENDS, append_all, journal_for

    # Prefer tmpfs so the metric tracks the journal's per-append code
    # path (serialisation, buffering, syscall count) rather than the
    # host disk's fsync jitter, which can swing 2x run-to-run.
    base = "/dev/shm" if os.access("/dev/shm", os.W_OK) else None
    tmp = Path(tempfile.mkdtemp(prefix="bench_journal_", dir=base))
    counter = iter(range(1_000_000))
    passes = 5  # amortise timer jitter over a ~50ms run

    try:

        def setup():
            return journal_for(tmp, sync, next(counter))

        def run(journal):
            for __ in range(passes):
                append_all(journal)
            journal.close()

        return _best_throughput(APPENDS * passes, run, setup)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def measure_journal_always() -> float:
    """journal appends/sec with per-record fsync (the default)."""
    return _measure_journal("always")


def measure_journal_batch() -> float:
    """journal appends/sec under group commit (batch_size=64)."""
    return _measure_journal("batch")


def measure_observability_disabled() -> float:
    """activities/sec with observability *off* (the default).

    This is the zero-overhead-when-off gate: the engine's hot paths
    now carry instrumentation guards, and this metric regresses if a
    change makes the disabled path pay for them (anything beyond one
    attribute read per guarded block).
    """
    from bench_observability import RUNS, observability_throughput

    best = 0.0
    observability_throughput(None, runs=2)  # warmup
    for __ in range(REPEATS):
        best = max(best, observability_throughput(None, runs=RUNS))
    return best


def measure_resilience_disabled() -> float:
    """activities/sec with no fault injector and no policies.

    The resilience sites (program invocation, journal append/fsync,
    bus send, completion bookkeeping) each guard on an unset injector
    or an empty policy table; this metric regresses if a change makes
    the disabled path pay more than that one check.
    """
    from bench_resilience import RUNS, resilience_throughput

    best = 0.0
    resilience_throughput(runs=2)  # warmup
    for __ in range(REPEATS):
        best = max(best, resilience_throughput(runs=RUNS))
    return best


def measure_store_recovery_checkpointed() -> float:
    """checkpointed recoveries/sec over a 200-instance history.

    The durable store restores the latest snapshot and replays only
    the journal suffix past its covered offset, so this metric is flat
    in history length; it regresses if recovery falls back to scanning
    the full journal or the archive index load leaves the O(archived)
    regime.
    """
    import shutil
    import tempfile
    from pathlib import Path

    from bench_store import run_history, store_engine

    base = "/dev/shm" if os.access("/dev/shm", os.W_OK) else None
    tmp = Path(tempfile.mkdtemp(prefix="bench_store_", dir=base))
    try:
        directory = tmp / "store"
        engine = store_engine(directory)
        run_history(engine, 200)
        engine.crash()

        def setup():
            return directory

        def run(target):
            rebuilt = store_engine(target)
            rebuilt.recover()
            rebuilt.close()

        return _best_throughput(1, run, setup)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def measure_store_disabled() -> float:
    """activities/sec with no durable store configured (the default).

    The store hooks on the navigator hot path (checkpoint cadence
    check, archive-on-finish) must collapse to one attribute read when
    no store is attached; this metric regresses if a change makes the
    store-less path pay more than that.
    """
    from bench_store import store_disabled_throughput

    best = 0.0
    store_disabled_throughput(runs=2)  # warmup
    for __ in range(REPEATS):
        best = max(best, store_disabled_throughput())
    return best


def measure_engine_sharded() -> float:
    """activities/sec across the same large-N batch partitioned over
    4 in-process shards.

    Against ``engine.concurrent_200x3x3`` this measures what the
    sharded pump costs (or saves) on one core: the per-shard engines
    run smaller ready-heaps and instance tables, the cluster adds the
    round-robin scheduler on top.  Real-core scaling is the
    multiprocess sweep's job, not this metric's.
    """
    from bench_sharding import (
        SHARDED_INSTANCES,
        SHARDED_SHAPE,
        SHARDED_SHARDS,
        run_sharded_batch,
        sharded_setup,
    )

    layers, width = SHARDED_SHAPE
    units = layers * width * SHARDED_INSTANCES

    def setup():
        return sharded_setup(SHARDED_SHARDS)

    def run(state):
        sharded, definition = state
        run_sharded_batch(sharded, definition)

    return _best_throughput(units, run, setup)


def measure_sharded_scaling() -> float:
    """multiprocess speedup: 4-worker throughput over 1-worker.

    Entirely host-dependent — the workers are real processes, so the
    ratio tracks available cores (about 1.0 on a single-core host).
    The snapshot is only meaningful against the same host class, like
    every other metric here.
    """
    from bench_sharding import mp_throughput

    # Best-of-each before the ratio: pairing per-trial ratios lets one
    # slow denominator sample masquerade as speedup.
    tp1 = max(mp_throughput(1) for __ in range(3))
    tp4 = max(mp_throughput(4) for __ in range(3))
    return tp4 / tp1


def sweep_shard_scaling() -> dict[str, float]:
    """{worker count: activities/sec} for the committed scaling sweep."""
    from bench_sharding import mp_scaling_sweep

    return {
        str(workers): round(value, 1)
        for workers, value in mp_scaling_sweep().items()
    }


def measure_tx_scope_chain() -> float:
    """scope ops/sec over sequential scoped chains.

    The hot path of every cross-activity transaction scope: handle
    registry, logical-clock tick, strict-2PL acquisition and WAL
    logging per write, savepoint watermark, commit.  Regresses if the
    scope layer adds per-operation cost beyond the substrate's own.
    """
    from bench_tx_scope import scope_chain_throughput

    best = 0.0
    scope_chain_throughput(chains=20)  # warmup
    for __ in range(REPEATS):
        best = max(best, scope_chain_throughput())
    return best


def measure_scope_disabled() -> float:
    """activities/sec with no scope manager installed (the default).

    The navigator's only scope hook is a ``services.get("tx_scopes")``
    probe at root-instance finish; this metric regresses if scope
    support ever taxes scope-less workflows more than that one lookup.
    """
    from bench_tx_scope import scope_disabled_throughput

    best = 0.0
    scope_disabled_throughput(runs=2)  # warmup
    for __ in range(REPEATS):
        best = max(best, scope_disabled_throughput())
    return best


def measure_flow_step_replay() -> float:
    """journal replays/sec in the decorator front end's drive loop.

    Every workflow attempt re-runs the Python body and answers each
    already-journaled step from the journal map, so an n-step flow
    performs O(n^2) replays.  Regresses if replay ever grows beyond
    canonicalize + dict probe — the property that makes re-running the
    body from the top affordable.
    """
    from bench_flow import step_replay_throughput

    best = 0.0
    step_replay_throughput(flows=1)  # warmup
    for __ in range(REPEATS):
        best = max(best, step_replay_throughput())
    return best


def measure_flow_disabled() -> float:
    """activities/sec with no flow runtime installed (the default).

    Flows are opt-in: an engine that never calls ``install_flows`` has
    no flow service, program, or hook.  This metric regresses if the
    decorator front end ever taxes plain workflows.
    """
    from bench_flow import flow_disabled_dag_throughput

    best = 0.0
    flow_disabled_dag_throughput(runs=2)  # warmup
    for __ in range(REPEATS):
        best = max(best, flow_disabled_dag_throughput())
    return best


def measure_net_request_reply() -> float:
    """bus RPC round-trips/sec over a live loopback broker.

    The per-message floor of the socket transport: framing, one TCP
    round-trip, broker dispatch, for each of send/receive/ack.
    Regresses if the frame codec or the broker's dispatch path gains
    per-request cost.
    """
    from bench_net import request_reply_throughput

    best = 0.0
    for __ in range(3):
        best = max(best, request_reply_throughput())
    return best


def measure_net_durable_request_reply() -> float:
    """bus RPC round-trips/sec with the write-ahead bus log armed
    (``sync="batch"``).

    Every send/ack journals its effect before the reply frame goes
    out; this metric bounds the durability overhead against
    ``net.request_reply`` and regresses if the bus-log append path
    (record staging, serialization, segment writes) gains per-op cost.
    """
    from bench_net import durable_request_reply_throughput

    best = 0.0
    for __ in range(3):
        best = max(best, durable_request_reply_throughput())
    return best


def measure_net_open_loop_p99() -> float:
    """reciprocal p99 latency (1/sec) from the open-loop driver at a
    sustainable rate.

    Stored inverted so the gate's higher-is-better comparison holds: a
    fatter tail (bigger p99) is a smaller metric.  Regresses if broker
    queueing or scheduling adds tail latency in the healthy regime.
    """
    from bench_net import open_loop_p99_seconds

    best_p99 = min(open_loop_p99_seconds() for __ in range(3))
    return 1.0 / best_p99


METRICS = {
    "engine.dag_16x16.activities_per_sec": measure_engine_large_dag,
    "engine.concurrent_200x3x3.activities_per_sec": measure_engine_concurrent,
    "engine.sharded_200x3x3.activities_per_sec": measure_engine_sharded,
    "engine.sharded_scaling_4.speedup_x": measure_sharded_scaling,
    "worklist.offer_600.items_per_sec": measure_worklist_offer,
    "worklist.claim_600_round_robin.claims_per_sec": measure_worklist_claim,
    "conditions.compiled_mix.evals_per_sec": measure_conditions_compiled,
    "journal.append_always.records_per_sec": measure_journal_always,
    "journal.append_batch64.records_per_sec": measure_journal_batch,
    "observability.disabled_dag_8x8.activities_per_sec": (
        measure_observability_disabled
    ),
    "resilience.disabled_dag_8x8.activities_per_sec": (
        measure_resilience_disabled
    ),
    "store.recovery_checkpointed.recoveries_per_sec": (
        measure_store_recovery_checkpointed
    ),
    "store.disabled_dag_8x8.activities_per_sec": measure_store_disabled,
    "tx.scope_chain.ops_per_sec": measure_tx_scope_chain,
    "scope.disabled_dag_8x8.activities_per_sec": measure_scope_disabled,
    "flow.step_replay.ops_per_sec": measure_flow_step_replay,
    "flow.disabled_dag_8x8.activities_per_sec": measure_flow_disabled,
    "net.request_reply.roundtrips_per_sec": measure_net_request_reply,
    "net.durable_request_reply.roundtrips_per_sec": (
        measure_net_durable_request_reply
    ),
    "net.open_loop_p99.inv_sec": measure_net_open_loop_p99,
}


def measure_all(metrics: dict | None = None) -> dict[str, float]:
    results = {}
    for name, fn in (metrics or METRICS).items():
        # Ratio metrics (…_x) need more resolution than rates do.
        digits = 3 if name.endswith("_x") else 1
        results[name] = round(fn(), digits)
        print("measured  %-50s %12.1f" % (name, results[name]))
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="re-measure and rewrite %s" % os.path.basename(BASELINE_PATH),
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed fractional regression (default: snapshot's, else %.2f)"
        % DEFAULT_TOLERANCE,
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=3,
        help="with --update: measurement sweeps; the per-metric minimum "
        "is snapshotted so the baseline is a conservative floor "
        "(default: 3)",
    )
    parser.add_argument(
        "--json-out",
        metavar="FILE",
        help="also write this run's measurements (and the gate verdict) "
        "as JSON — CI uploads it as a workflow artifact",
    )
    parser.add_argument(
        "--filter",
        metavar="PREFIX",
        help="only measure/compare metrics whose name starts with PREFIX; "
        "with --update, unmatched metrics are carried over from the "
        "existing snapshot instead of being re-measured",
    )
    parser.add_argument(
        "--sweep",
        action="store_true",
        help="with --update: also record the multiprocess shard-scaling "
        "sweep (1/2/4 workers) under the snapshot's 'sweeps' key",
    )
    args = parser.parse_args(argv)

    selected = METRICS
    if args.filter:
        selected = {
            name: fn
            for name, fn in METRICS.items()
            if name.startswith(args.filter)
        }
        if not selected:
            parser.error("--filter %r matches no metric" % args.filter)

    def write_json_out(payload: dict) -> None:
        if args.json_out:
            with open(args.json_out, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print("wrote %s" % args.json_out)

    if args.update:
        existing: dict = {}
        if os.path.exists(BASELINE_PATH):
            with open(BASELINE_PATH, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
        # A filtered update re-measures only the selected metrics and
        # keeps the rest of the committed snapshot intact.
        metrics: dict[str, float] = (
            dict(existing.get("metrics", {})) if args.filter else {}
        )
        # The sweep measures first, while the host is still cold — a
        # multi-minute measurement tail runs hot enough to distort a
        # per-worker-count comparison.
        scaling_sweep = sweep_shard_scaling() if args.sweep else None
        fresh: dict[str, float] = {}
        for sweep in range(max(1, args.runs)):
            print("-- update sweep %d/%d" % (sweep + 1, max(1, args.runs)))
            for name, value in measure_all(selected).items():
                fresh[name] = min(fresh.get(name, value), value)
        metrics.update(fresh)
        snapshot = {
            "tolerance": args.tolerance
            or existing.get("tolerance", DEFAULT_TOLERANCE),
            "metrics": metrics,
        }
        if existing.get("sweeps"):
            snapshot["sweeps"] = existing["sweeps"]
        if scaling_sweep is not None:
            sweeps = dict(snapshot.get("sweeps", {}))
            sweeps["engine.sharded_mp.activities_per_sec_by_workers"] = (
                scaling_sweep
            )
            snapshot["sweeps"] = sweeps
        with open(BASELINE_PATH, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % BASELINE_PATH)
        write_json_out(snapshot)
        return 0

    if not os.path.exists(BASELINE_PATH):
        print("no baseline snapshot at %s; run with --update" % BASELINE_PATH)
        return 2
    with open(BASELINE_PATH, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)
    tolerance = (
        args.tolerance
        if args.tolerance is not None
        else snapshot.get("tolerance", DEFAULT_TOLERANCE)
    )

    current = measure_all(selected)
    failures = []
    compared = {
        name: baseline
        for name, baseline in snapshot["metrics"].items()
        if not args.filter or name.startswith(args.filter)
    }
    for name, baseline in sorted(compared.items()):
        now = current.get(name)
        if now is None:
            failures.append("%s: metric disappeared" % name)
            continue
        floor = baseline * (1.0 - tolerance)
        delta = (now - baseline) / baseline
        status = "ok" if now >= floor else "REGRESSED"
        if (
            name == "engine.sharded_scaling_4.speedup_x"
            and now < floor
            and (os.cpu_count() or 1) == 1
        ):
            # A 4-worker speedup needs 4 cores; on a single-core host
            # the ratio is ~1.0 by physics, not by regression.  Report
            # without gating rather than fail every laptop-CI run.
            print(
                "%-9s %-50s %12.1f vs %12.1f (single-core host, not gated)"
                % ("skipped", name, now, baseline)
            )
            continue
        print(
            "%-9s %-50s %12.1f vs %12.1f (%+6.1f%%)"
            % (status, name, now, baseline, 100.0 * delta)
        )
        if now < floor:
            failures.append(
                "%s: %.1f is %.1f%% below baseline %.1f (tolerance %.0f%%)"
                % (name, now, -100.0 * delta, baseline, 100.0 * tolerance)
            )
    for name in sorted(set(current) - set(compared)):
        # Measured but not yet snapshotted — report, never gate.
        print("%-9s %-50s %12.1f (no baseline)" % ("new", name, current[name]))
    write_json_out(
        {
            "baseline": snapshot["metrics"],
            "current": current,
            "tolerance": tolerance,
            "failures": failures,
        }
    )
    if failures:
        print("\nperformance gate FAILED:")
        for failure in failures:
            print("  - %s" % failure)
        return 1
    print("\nperformance gate passed (tolerance %.0f%%)" % (100.0 * tolerance))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
