"""APP-F — the appendix's flexible-transaction execution example.

Every branch the appendix narrates for Figure 4's process is asserted
against the audit trail of the translated process:

* T1 aborts → everything else terminated by dead-path elimination;
* T2 aborts → T1's compensation executes, the rest dies;
* T4 aborts → T3 "is executed until it successfully commits";
* T5/T6/T8 abort → the compensation block containing T5⁻¹, T6⁻¹ runs
  (driven by the data-connector-supplied return codes), then T7 runs
  until it commits.
"""

import pytest

from repro.tx import AbortScript, FailNTimes

from _helpers import build_fig3_engine, print_table
from repro.core.bindings import workflow_flexible_outcome


def run(policies):
    engine, translation, db = build_fig3_engine(dict(policies))
    result = engine.run_process(translation.process_name)
    outcome = workflow_flexible_outcome(
        engine, translation, result.instance_id
    )
    return engine, result, outcome


def test_t1_aborts_dead_path_terminates_all(benchmark):
    engine, result, outcome = run({"t1": AbortScript([1])})
    assert result.finished
    assert not outcome.committed
    dead = set(result.dead_activities)
    assert {"t2", "t3", "t4", "t7"} <= dead
    benchmark(lambda: run({"t1": AbortScript([1])}))


def test_t2_aborts_compensates_t1(benchmark):
    engine, result, outcome = run({"t2": AbortScript([1])})
    assert outcome.compensated == ["t1"]
    assert not outcome.committed
    order = engine.execution_order(result.instance_id)
    assert "Comp_t1" in order
    benchmark(lambda: run({"t2": AbortScript([1])}))


def test_t4_aborts_t3_retried_until_commit(benchmark):
    engine, result, outcome = run(
        {"t4": AbortScript([1]), "t3": FailNTimes(2)}
    )
    assert outcome.committed
    assert outcome.committed_path == ["t1", "t2", "t3"]
    assert engine.audit.attempts(result.instance_id, "t3") == 3
    benchmark(
        lambda: run({"t4": AbortScript([1]), "t3": FailNTimes(2)})
    )


@pytest.mark.parametrize("who", ["t5", "t6", "t8"])
def test_block_failure_compensates_then_t7(benchmark, who):
    engine, result, outcome = run(
        {who: AbortScript([1]), "t7": FailNTimes(1)}
    )
    assert outcome.committed
    assert outcome.committed_path == ["t1", "t2", "t4", "t7"]
    order = engine.execution_order(result.instance_id)
    # "Once the compensating block commits, T7 is executed until it
    # commits" — T7 runs after any compensation, and retried once here.
    assert order[-1] == "t7" or "t7" in order
    assert engine.audit.attempts(result.instance_id, "t7") == 2
    expected_comp = {"t5": [], "t6": ["t5"], "t8": ["t6", "t5"]}[who]
    assert outcome.compensated == expected_comp
    benchmark(lambda: run({who: AbortScript([1]), "t7": FailNTimes(1)}))


def test_appendix_summary_table(benchmark):
    rows = []
    cases = [
        ("t1 aborts", {"t1": AbortScript([1])}),
        ("t2 aborts", {"t2": AbortScript([1])}),
        ("t4 aborts", {"t4": AbortScript([1]), "t3": FailNTimes(1)}),
        ("t5 aborts", {"t5": AbortScript([1])}),
        ("t6 aborts", {"t6": AbortScript([1])}),
        ("t8 aborts", {"t8": AbortScript([1])}),
    ]
    for label, policies in cases:
        engine, result, outcome = run(policies)
        rows.append(
            (
                label,
                "commit" if outcome.committed else "abort",
                "->".join(outcome.committed_path) or "-",
                ",".join(outcome.compensated) or "-",
                len(result.dead_activities),
            )
        )
    print_table(
        "APP-F: appendix branches through the translated process",
        ["scenario", "outcome", "path", "compensated", "dead activities"],
        rows,
    )
    benchmark(lambda: run({}))
