"""FIG5 — the Exotica/FMTM pre-processor pipeline (Figure 5).

Regenerates the staged architecture: specification → format check →
FDL → import → semantic check → executable template → run-time
instance, reporting per-stage cost and how it scales with spec size.
"""

import pytest

from repro.tx import SimDatabase, Subtransaction
from repro.tx.subtransaction import write_value
from repro.wfms.engine import Engine
from repro.core.fmtm import FMTMPipeline, STAGES
from repro.core.saga_translator import translate_saga
from repro.core.speclang import format_saga_spec, parse_spec
from repro.core.bindings import register_saga_programs

from _helpers import linear_saga, print_table

FLEX_TEXT = """
MODEL FLEXIBLE 'fig3'
  SUBTRANSACTION 't1' COMPENSATABLE
  SUBTRANSACTION 't2' PIVOT
  SUBTRANSACTION 't3' RETRIABLE
  SUBTRANSACTION 't4' PIVOT
  SUBTRANSACTION 't5' COMPENSATABLE
  SUBTRANSACTION 't6' COMPENSATABLE
  SUBTRANSACTION 't7' RETRIABLE
  SUBTRANSACTION 't8' PIVOT
  PATH 't1' 't2' 't4' 't5' 't6' 't8'
  PATH 't1' 't2' 't4' 't7'
  PATH 't1' 't2' 't3'
END 'fig3'
"""


def saga_engine_for(spec):
    """Engine with all programs the translated saga will need."""
    engine = Engine()
    db = SimDatabase()
    translation = translate_saga(spec)
    actions = {
        s.name: Subtransaction(s.name, db, write_value(s.name, 1))
        for s in spec.steps
    }
    comps = {
        s.name: Subtransaction("c" + s.name, db, write_value(s.name, 0))
        for s in spec.steps
    }
    register_saga_programs(engine, translation, actions, comps)
    return engine


def test_fig5_stages_for_saga(benchmark):
    spec = linear_saga(4)
    text = format_saga_spec(spec)

    engine = saga_engine_for(spec)
    report = FMTMPipeline(engine).process_specification(text)
    assert tuple(report.stage_names()) == STAGES
    print_table(
        "FIG5: per-stage cost, 4-step saga specification",
        ["stage", "seconds", "artefact"],
        [
            (s.name, "%.6f" % s.seconds, s.detail or "-")
            for s in report.stages
        ],
    )

    def full_pipeline():
        fresh = saga_engine_for(spec)
        return FMTMPipeline(fresh).process_specification(text)

    result = benchmark(full_pipeline)
    assert result.process_name == "Saga_bench"


def test_fig5_flexible_specification(benchmark):
    from repro.workloads.banking import fig3_bindings, fig3_spec
    from repro.core.flexible_translator import translate_flexible
    from repro.core.bindings import register_flexible_programs

    def full_pipeline():
        engine = Engine()
        db = SimDatabase()
        translation = translate_flexible(fig3_spec())
        actions, comps = fig3_bindings(db)
        register_flexible_programs(engine, translation, actions, comps)
        return FMTMPipeline(engine).process_specification(FLEX_TEXT)

    report = benchmark(full_pipeline)
    assert report.process_name == "Flexible_fig3"


@pytest.mark.parametrize("n", [2, 4, 8, 16])
def test_fig5_pipeline_scales_with_spec_size(benchmark, n):
    spec = linear_saga(n)
    text = format_saga_spec(spec)

    def full_pipeline():
        engine = saga_engine_for(spec)
        return FMTMPipeline(engine).process_specification(text)

    report = benchmark(full_pipeline)
    # FDL size grows linearly with the number of steps.
    assert len(report.fdl_text) > n * 150


def test_fig5_template_reuse_is_cheap(benchmark):
    """Figure 5's point: the template is built once, instances are
    created from it many times."""
    spec = linear_saga(4)
    text = format_saga_spec(spec)
    engine = saga_engine_for(spec)
    pipeline = FMTMPipeline(engine)
    report = pipeline.process_specification(text)

    def create_and_run_instance():
        iid = pipeline.create_instance(report)
        engine.run()
        return engine.instance_state(iid)

    state = benchmark(create_and_run_instance)
    assert state == "finished"
