#!/usr/bin/env python3
"""Durable Python workflows — the decorator front end (DESIGN.md §16).

A plain Python function becomes a durable workflow: ``@step`` bodies
are journaled and run exactly once, ``@transaction`` steps write
through a savepointed transaction scope, and the ``@workflow`` body
re-runs from the top on every attempt with completed steps answered
from the journal. This tour runs a checkout flow, crashes the engine
mid-flow, resumes on a fresh engine over the same journal, and shows
that no step body re-executed.

Run with::

    python examples/durable_flow_tour.py
"""

import os
import tempfile

from repro.core.scoped import install_scope_service
from repro.flow import StepFailure, install_flows, step, transaction, workflow
from repro.tx import ScopeManager, SimDatabase
from repro.wfms import Engine

invocations: list = []


@step
def fetch(sku):
    invocations.append(("fetch", sku))
    return {"sku": sku, "price": 40 + len(sku)}


@step(name="taxed")
def with_tax(price):
    invocations.append(("tax", price))
    return price + price // 10


@transaction
def debit(scope, key, amount):
    invocations.append(("debit", key, amount))
    return scope.increment(key, -amount)


@step
def risky(total):
    invocations.append(("risky", total))
    raise RuntimeError("carrier rejected %d" % total)


@workflow
def checkout(flow, sku):
    item = fetch(sku)
    total = with_tax(item["price"])
    try:
        risky(total)  # fails; the failure itself is journaled
    except StepFailure as exc:
        surcharge = 1  # caught inline, flow continues
        assert exc.error_type == "RuntimeError"
    balance = debit("acct:main", total + surcharge)
    return {"sku": sku, "total": total + surcharge, "balance": balance}


def build_engine(journal_path, db):
    engine = Engine(journal_path=journal_path)
    install_scope_service(engine, ScopeManager(db))
    runtime = install_flows(engine, [checkout], seed=7)
    return engine, runtime


def main() -> None:
    journal_path = os.path.join(tempfile.mkdtemp(), "flows.journal")
    db = SimDatabase()
    print("journal:", journal_path)

    engine, runtime = build_engine(journal_path, db)
    uuid = runtime.start("checkout", "sku-1")
    print("started flow", uuid)
    for _ in range(3):
        engine.step()
    print("bodies so far:", [c[0] for c in invocations])

    print("\n*** machine failure mid-flow ***\n")
    engine.crash()

    engine, runtime = build_engine(journal_path, db)
    engine.recover()
    engine.run()

    result = runtime.result(uuid)
    assert result.ok, result.error
    print("result:       ", result.value)
    print("bodies total: ", [c[0] for c in invocations])
    print("replayed steps on resume:",
          runtime.counters["steps_replayed_resume"])
    assert len(invocations) == len(set(map(repr, invocations))), (
        "durable flows must never re-execute a journaled step body"
    )
    assert db.get("acct:main") == -result.value["total"]
    print("\nevery step body ran exactly once — the journal held.")


if __name__ == "__main__":
    main()
