#!/usr/bin/env python3
"""Quickstart: build and run a workflow process, then run a saga
through the Exotica/FMTM pipeline.

Run with::

    python examples/quickstart.py
"""

from repro import Activity, DataType, Engine, ProcessDefinition, VariableDecl
from repro.wfms.model import PROCESS_INPUT, PROCESS_OUTPUT
from repro.tx import SimDatabase, Subtransaction
from repro.tx.subtransaction import write_value
from repro.core.fmtm import FMTMPipeline
from repro.core.saga_translator import translate_saga
from repro.core.speclang import parse_spec
from repro.core.bindings import register_saga_programs, workflow_saga_outcome


def part_one_plain_workflow() -> None:
    """A two-step process with data flow and a conditional branch."""
    print("== Part 1: a plain workflow process ==")
    engine = Engine()

    def double(ctx):
        ctx.set_output("Out", ctx.get_input("In") * 2)
        return 0

    def report(ctx):
        print("   the doubled value is", ctx.get_input("Value"))
        return 0

    engine.register_program("double", double)
    engine.register_program("report", report)

    defn = ProcessDefinition(
        "Quickstart",
        input_spec=[VariableDecl("N", DataType.LONG)],
        output_spec=[VariableDecl("Result", DataType.LONG)],
    )
    defn.add_activity(
        Activity(
            "Double",
            program="double",
            input_spec=[VariableDecl("In", DataType.LONG)],
            output_spec=[VariableDecl("Out", DataType.LONG)],
        )
    )
    defn.add_activity(
        Activity(
            "Report",
            program="report",
            input_spec=[VariableDecl("Value", DataType.LONG)],
        )
    )
    defn.connect("Double", "Report", "RC = 0")
    defn.map_data(PROCESS_INPUT, "Double", [("N", "In")])
    defn.map_data("Double", "Report", [("Out", "Value")])
    defn.map_data("Double", PROCESS_OUTPUT, [("Out", "Result")])
    engine.register_definition(defn)

    result = engine.run_process("Quickstart", {"N": 21})
    print("   process state:", result.state)
    print("   execution order:", result.execution_order)
    print("   output container:", result.output)


def part_two_saga_via_fmtm() -> None:
    """The paper's pipeline: spec text -> FDL -> template -> instance."""
    print("== Part 2: a saga through Exotica/FMTM ==")
    specification = """
    MODEL SAGA 'order'
      STEP 'reserve'
      STEP 'charge'
      STEP 'ship'
    END 'order'
    """
    engine = Engine()
    db = SimDatabase("store")
    spec = parse_spec(specification)
    translation = translate_saga(spec)
    actions = {
        s.name: Subtransaction(s.name, db, write_value(s.name, 1))
        for s in spec.steps
    }
    compensations = {
        s.name: Subtransaction("undo_" + s.name, db, write_value(s.name, 0))
        for s in spec.steps
    }
    register_saga_programs(engine, translation, actions, compensations)

    pipeline = FMTMPipeline(engine)
    report = pipeline.process_specification(specification)
    print("   pipeline stages:")
    for stage in report.stages:
        print("     %-22s %.4fs" % (stage.name, stage.seconds))
    print("   generated FDL: %d characters" % len(report.fdl_text))

    instance = pipeline.create_instance(report)
    engine.run()
    outcome = workflow_saga_outcome(engine, report.translation, instance)
    print("   saga committed:", outcome.committed)
    print("   steps executed:", outcome.executed)
    print("   database state:", db.snapshot())


if __name__ == "__main__":
    part_one_plain_workflow()
    print()
    part_two_saga_via_fmtm()
