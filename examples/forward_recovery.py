#!/usr/bin/env python3
"""Forward recovery — §3.3.

"In most WFMSs the execution of a process is persistent in the sense
that forward recovery is always guaranteed ... the process execution
is resumed from the point where the failure occurred."

This example runs a five-step process, crashes the engine after two
steps, builds a fresh engine over the same journal and resumes: steps
already completed are *not* re-executed; pending work continues.

Run with::

    python examples/forward_recovery.py
"""

import os
import tempfile

from repro import Activity, Engine, ProcessDefinition

STEPS = ["Extract", "Validate", "Transform", "Load", "Report"]
invocations: dict[str, int] = {}


def build_engine(journal_path: str) -> Engine:
    engine = Engine(journal_path=journal_path)

    def make(step: str):
        def program(ctx) -> int:
            invocations[step] = invocations.get(step, 0) + 1
            return 0

        return program

    for step in STEPS:
        engine.register_program("run_%s" % step.lower(), make(step))
    defn = ProcessDefinition("Pipeline")
    for step in STEPS:
        defn.add_activity(Activity(step, program="run_%s" % step.lower()))
    for left, right in zip(STEPS, STEPS[1:]):
        defn.connect(left, right, "RC = 0")
    engine.register_definition(defn)
    return engine


def main() -> None:
    journal_path = os.path.join(tempfile.mkdtemp(), "pipeline.journal")
    print("journal:", journal_path)

    engine = build_engine(journal_path)
    instance = engine.start_process("Pipeline")
    engine.step()
    engine.step()
    print("before crash:", engine.activity_states(instance))
    print("invocations: ", invocations)

    print("\n*** machine failure ***\n")
    engine.crash()

    recovered = build_engine(journal_path)
    replayed = recovered.recover()
    print("replayed %d completed activities from the journal" % replayed)
    print("after recovery:", recovered.activity_states(instance))

    recovered.run()
    print("after resume:  ", recovered.activity_states(instance))
    print("invocations:   ", invocations)
    assert recovered.instance_state(instance) == "finished"
    assert all(count == 1 for count in invocations.values()), (
        "forward recovery must not re-execute completed activities"
    )
    print("\nevery step ran exactly once — forward recovery held.")


if __name__ == "__main__":
    main()
