#!/usr/bin/env python3
"""Travel booking as a saga — the paper's §4.1 (Figure 2) end-to-end.

Books a flight, a hotel and a car at three autonomous sites.  Run A
succeeds; run B hits a sold-out hotel and the workflow engine drives
the compensation block: the flight is cancelled, the data returns to a
consistent all-or-nothing state.

Run with::

    python examples/travel_saga.py
"""

from repro.wfms.engine import Engine
from repro.core.bindings import register_saga_programs, workflow_saga_outcome
from repro.core.saga_translator import translate_saga
from repro.core.sagas import verify_saga_guarantee
from repro.workloads.travel import TravelWorkload


def run(label: str, capacity: int, hotel_capacity: int | None = None) -> None:
    print("== %s ==" % label)
    workload = TravelWorkload.fresh(capacity=capacity)
    if hotel_capacity is not None:
        hotel = workload.mdb.site("hotel")
        with hotel.begin() as txn:
            txn.write("rooms", hotel_capacity)

    translation = translate_saga(workload.spec)
    engine = Engine()
    register_saga_programs(
        engine, translation, workload.actions, workload.compensations
    )
    engine.register_definition(translation.process)

    print("   before:", workload.bookings())
    result = engine.run_process(translation.process_name)
    outcome = workflow_saga_outcome(engine, translation, result.instance_id)

    print("   saga committed:", outcome.committed)
    print("   executed:      ", outcome.executed)
    print("   compensated:   ", outcome.compensated)
    print("   after:         ", workload.bookings())
    print("   reservations:  ", workload.reservation_flags())
    print("   consistent (all-or-nothing):", workload.is_consistent())
    assert workload.is_consistent()
    assert verify_saga_guarantee(
        workload.spec, outcome.executed, outcome.compensated
    )
    print("   subtransaction log:")
    for event in workload.recorder:
        print(
            "     %-18s attempt %d -> %s"
            % (event.name, event.attempt,
               "commit" if event.committed else "abort (%s)" % event.reason)
        )


if __name__ == "__main__":
    run("Run A: everything available", capacity=3)
    print()
    run("Run B: the hotel is sold out", capacity=3, hotel_capacity=0)
