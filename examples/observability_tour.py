#!/usr/bin/env python3
"""Tour of the observability subsystem (metrics, spans, hooks).

Runs the §4.1 travel saga on an engine with observability enabled and
forces the hotel to be sold out, so the trace shows both the forward
path and the compensation.  Along the way:

* **hooks** — a subscriber prints activity completions live;
* **spans** — the finished trace is rendered as a tree (the
  compensation activities appear inside the same process span);
* **metrics** — the Prometheus exposition text for the run;
* **snapshot** — the JSON snapshot is written and re-rendered through
  ``repro.tools.monitor``, exactly as an external process would.

Run with::

    python examples/observability_tour.py
"""

import os
import tempfile

from repro.core.bindings import register_saga_programs, workflow_saga_outcome
from repro.core.saga_translator import translate_saga
from repro.obs import ActivityCompleted, ProcessFinished
from repro.obs.export import span_tree_lines, to_prometheus_text, write_snapshot
from repro.tools.monitor import render_snapshot
from repro.wfms.engine import Engine
from repro.workloads.travel import TravelWorkload


def main() -> None:
    workload = TravelWorkload.fresh(capacity=3)
    hotel = workload.mdb.site("hotel")
    with hotel.begin() as txn:
        txn.write("rooms", 0)  # sold out -> the saga must compensate

    translation = translate_saga(workload.spec)
    engine = Engine(observability=True)
    register_saga_programs(
        engine, translation, workload.actions, workload.compensations
    )
    engine.register_definition(translation.process)

    print("== live hook events ==")

    @engine.obs.hooks.subscribe(ActivityCompleted)
    def on_completion(event: ActivityCompleted) -> None:
        print(
            "   completed %-22s attempt %d rc=%s (%s)"
            % (event.activity, event.attempt, event.return_code, event.outcome)
        )

    engine.obs.hooks.subscribe(
        ProcessFinished,
        lambda event: print("   process finished: %s" % event.instance_id),
    )

    result = engine.run_process(translation.process_name)
    outcome = workflow_saga_outcome(engine, translation, result.instance_id)
    print("   saga committed:", outcome.committed)
    print("   executed:      ", outcome.executed)
    print("   compensated:   ", outcome.compensated)
    assert not outcome.committed  # the hotel was sold out
    assert workload.is_consistent()

    print("\n== trace (span tree) ==")
    for line in span_tree_lines(engine.obs.tracer.export()):
        print("   " + line)

    print("\n== metrics (Prometheus text, counters only) ==")
    for line in to_prometheus_text(engine.obs.metrics).splitlines():
        if line.startswith("#") or "_bucket" in line or "_sum" in line:
            continue
        print("   " + line)

    print("\n== snapshot -> repro.tools.monitor ==")
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "snapshot.json")
        write_snapshot(engine, path)
        import json

        with open(path, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
    for line in render_snapshot(snapshot, max_spans=12):
        print("   " + line)


if __name__ == "__main__":
    main()
