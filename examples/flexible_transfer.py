#!/usr/bin/env python3
"""A multidatabase funds transfer as a flexible transaction — §4.2.

The transfer debits the customer's bank (compensatable), then credits
the beneficiary through the *fast* clearing house (a pivot that may
unilaterally reject) with the *slow* house as the retriable fallback,
and finally books a retriable audit record.

Three runs:

* A — the fast house accepts: preferred path commits.
* B — the fast house rejects: the engine switches to the slow house.
  The debit is shared between both paths, so nothing is compensated.
* C — insufficient funds: the debit itself aborts and dead-path
  elimination terminates the whole process with no effects.

Run with::

    python examples/flexible_transfer.py
"""

from repro.tx import AbortScript
from repro.wfms.engine import Engine
from repro.core.bindings import (
    register_flexible_programs,
    workflow_flexible_outcome,
)
from repro.core.flexible_translator import translate_flexible
from repro.workloads.banking import TransferWorkload


def run(label: str, *, balance: int = 500, fast_rejects: bool = False) -> None:
    print("== %s ==" % label)
    policies = {"credit_fast": AbortScript([1])} if fast_rejects else {}
    workload = TransferWorkload.fresh(
        balance=balance, amount=100, policies=policies
    )
    translation = translate_flexible(workload.spec)
    engine = Engine()
    register_flexible_programs(
        engine, translation, workload.actions, workload.compensations
    )
    engine.register_definition(translation.process)

    print("   before:", workload.balances())
    result = engine.run_process(translation.process_name)
    outcome = workflow_flexible_outcome(
        engine, translation, result.instance_id
    )
    print("   committed:", outcome.committed)
    print("   path:     ", outcome.committed_path)
    print("   undone:   ", outcome.compensated)
    print("   after:    ", workload.balances())
    print("   money conserved:", workload.money_conserved(balance))
    assert workload.money_conserved(balance)


if __name__ == "__main__":
    run("Run A: fast clearing house accepts")
    print()
    run("Run B: fast house rejects, slow house fallback", fast_rejects=True)
    print()
    run("Run C: insufficient funds, full abort", balance=50)
