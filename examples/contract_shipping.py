#!/usr/bin/env python3
"""A ConTract-style shipping contract — the FMTM extensibility claim.

§5: "we can extend the pre-processor to convert any advanced
transaction model specification into a correct FlowMark process
implementation."  This example feeds a third model — a ConTract-style
script with entry invariants — through the same pipeline used for
sagas and flexible transactions, then runs it for three different
contexts.

Run with::

    python examples/contract_shipping.py
"""

from repro.tx import AbortScript, SimDatabase, Subtransaction
from repro.tx.subtransaction import write_value
from repro.wfms.engine import Engine
from repro.core.contract import (
    register_contract_programs,
    translate_contract,
    workflow_contract_outcome,
)
from repro.core.fmtm import FMTMPipeline
from repro.core.speclang import parse_spec

SPECIFICATION = """
MODEL CONTRACT 'shipping'
  CONTEXT 'Weight'   LONG
  CONTEXT 'Priority' LONG
  STEP 'pick'
  STEP 'weigh'
  STEP 'book_freight' WHEN "Weight > 30" COMPENSATION 'cancel_freight'
  STEP 'book_courier' WHEN "Weight <= 30"
  STEP 'express_tag'  WHEN "Priority = 1"
  STEP 'dispatch'     WHEN "Weight > 0" CRITICAL
END 'shipping'
"""


def run(label, context, aborts=()):
    print("== %s (context %s) ==" % (label, context))
    spec = parse_spec(SPECIFICATION)
    database = SimDatabase("warehouse")
    actions = {
        s.name: Subtransaction(s.name, database, write_value(s.name, 1))
        for s in spec.steps
    }
    for name in aborts:
        actions[name].policy = AbortScript([1])
    compensations = {
        s.name: Subtransaction(
            "undo_" + s.name, database, write_value(s.name, 0)
        )
        for s in spec.steps
    }
    engine = Engine()
    translation = translate_contract(spec)
    register_contract_programs(engine, translation, actions, compensations)
    pipeline = FMTMPipeline(engine)
    report = pipeline.process_specification(SPECIFICATION)
    instance = engine.start_process(report.process_name, context)
    engine.run()
    outcome = workflow_contract_outcome(engine, report.translation, instance)
    print("   committed:  ", outcome.committed)
    print("   executed:   ", outcome.executed)
    print("   skipped:    ", outcome.skipped)
    print("   compensated:", outcome.compensated)
    print("   warehouse:  ", database.snapshot())
    print()


if __name__ == "__main__":
    run("heavy priority parcel", {"Weight": 80, "Priority": 1})
    run("light regular parcel", {"Weight": 5, "Priority": 0})
    run(
        "dispatch fails -> backward recovery",
        {"Weight": 80, "Priority": 0},
        aborts=("dispatch",),
    )
