#!/usr/bin/env python3
"""Distributed workflow over persistent messages (Exotica/FMQM style).

Two autonomous workflow nodes — a front office and a back-office
worker — cooperate through durable queues.  The front's process calls
the worker's process remotely; mid-call the worker crashes and is
rebuilt from its journal, and the persistent request message carries
the work through: the final result is exact, nothing is lost or run
twice.

Run with::

    python examples/distributed_cluster.py
"""

import os
import tempfile

from repro.wfms.distributed import run_cluster
from repro.wfms.messaging import MessageBus
from repro.workloads.distributed_demo import (
    configure_worker,
    make_requester,
    make_worker,
)


def main() -> None:
    bus = MessageBus()
    journal = os.path.join(tempfile.mkdtemp(), "worker.journal")
    worker = make_worker(bus, journal_path=journal)
    front = make_requester(bus)

    instance = front.engine.start_process("Front", {"N": 21})
    print("front started instance", instance, "(N = 21)")

    front.engine.step()  # the remote request is now on the bus
    print("request queued for the worker:",
          bus.depth("node:worker"), "message(s)")

    print("\n*** the worker machine fails ***")
    worker.crash()
    print("worker volatile state lost; the bus and journal survive")

    worker.rebuild(configure_worker)
    print("worker rebuilt from its journal; resuming the cluster\n")

    rounds = run_cluster([front, worker], watch=[(front, instance)])
    result = front.engine.output(instance)["Result"]
    print("converged in %d rounds" % rounds)
    print("result: 21 * 2 + 1 =", result)
    assert result == 43
    served = [
        i.instance_id
        for i in worker.engine.navigator.instances()
    ]
    print("worker served instances:", served, "(exactly one — no duplicates)")


if __name__ == "__main__":
    main()
