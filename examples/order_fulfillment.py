#!/usr/bin/env python3
"""Order fulfilment with users, roles and worklists — §3.3's "workflow
features not found in transaction models".

The approval step is *manual*: it appears on the worklist of every
person holding the ``approver`` role, vanishes from the others when
one of them claims it, escalates to the supervisor if left unclaimed,
and the rest of the process (parallel checks, a packing loop, a
shipping block, dead-path elimination of the rejection branch) runs
automatically once the human acts.

Run with::

    python examples/order_fulfillment.py
"""

from repro.wfms.engine import Engine
from repro.workloads.orders import (
    build_order_process,
    order_organization,
    register_order_programs,
)


def show_worklists(engine: Engine, users: list[str]) -> None:
    for user in users:
        items = engine.worklist(user)
        print(
            "   %-4s worklist: %s"
            % (user, [(i.activity, i.item_id) for i in items] or "empty")
        )


def main() -> None:
    engine = Engine(organization=order_organization())
    register_order_programs(engine, pack_attempts=3)
    engine.register_definition(build_order_process(manual_approval=True))

    instance = engine.start_process(
        "OrderFulfillment",
        {"Amount": 400, "Customer": "ACME"},
        starter="sue",
    )
    engine.run()
    print("order submitted; approval is a manual step:")
    show_worklists(engine, ["al", "amy", "pat"])

    print("\nnobody acts for 90 time units — the deadline passes:")
    notifications = engine.advance_clock(90.0)
    for note in notifications:
        print(
            "   escalation for %r sent to %s"
            % (note.activity, list(note.recipients))
        )

    print("\nAl claims the approval (it vanishes from Amy's list):")
    item = engine.worklist("al")[0]
    engine.claim(item.item_id, "al")
    show_worklists(engine, ["al", "amy"])

    print("\nAl executes the approval; the rest runs automatically:")
    engine.start_item(item.item_id)
    print("   process state:", engine.instance_state(instance))
    print("   activity states:", engine.activity_states(instance))
    print("   packing attempts (exit-condition loop):",
          _pack_attempts(engine, instance))
    print("   output:", engine.output(instance))


def _pack_attempts(engine: Engine, instance: str) -> int:
    for child in engine.navigator.instances():
        if child.parent_instance == instance:
            return engine.audit.attempts(child.instance_id, "Pack")
    return 0


if __name__ == "__main__":
    main()
